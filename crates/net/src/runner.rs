//! The protocol runner: owns one [`Protocol`] state machine per peer and
//! drives them from the network's event queue. Protocols never touch the
//! queue directly — they emit [`Action`]s through a [`Ctx`], which keeps
//! every protocol implementation deterministic and testable in isolation.
//!
//! Large networks are driven by the sharded engine (`crate::engine`):
//! peers are partitioned across a worker pool and advanced in conservative
//! time windows bounded by the latency floor. The partitioning is invisible
//! — `run_until` produces bit-identical results at any shard count.

use crate::network::{NetConfig, NetEvent, NetStats, Network};
use crate::{engine, NodeId};
use dcs_sim::{Rng, SimDuration, SimTime};

/// Deferred effects a protocol requests during a callback.
#[derive(Debug)]
pub enum Action<M> {
    /// Unicast `msg` (`size` bytes) to a peer.
    Send {
        /// Destination peer.
        to: NodeId,
        /// Payload.
        msg: M,
        /// Payload size in bytes (for bandwidth accounting).
        size: usize,
    },
    /// Arm a timer; `tag` comes back via [`Protocol::on_timer`]. There is no
    /// cancel action — protocols version their timers with epoch counters
    /// and ignore stale tags, which is simpler to reason about than
    /// cancellation races.
    Timer {
        /// Delay until the timer fires.
        delay: SimDuration,
        /// Opaque tag returned to the protocol.
        tag: u64,
    },
}

/// Per-callback context: identity, clock, neighbors, RNG, and the action
/// buffer.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    /// The peer being called.
    pub node: NodeId,
    /// Current simulated time.
    pub now: SimTime,
    /// Overlay neighbors of this peer.
    pub neighbors: &'a [NodeId],
    /// This peer's private RNG stream.
    pub rng: &'a mut Rng,
    actions: &'a mut Vec<Action<M>>,
}

impl<'a, M> Ctx<'a, M> {
    /// Builds a context outside a [`Runner`] — for unit-testing protocol
    /// handlers in isolation. Requested actions accumulate in `actions`
    /// for the caller to inspect or apply.
    pub fn new(
        node: NodeId,
        now: SimTime,
        neighbors: &'a [NodeId],
        rng: &'a mut Rng,
        actions: &'a mut Vec<Action<M>>,
    ) -> Self {
        Ctx {
            node,
            now,
            neighbors,
            rng,
            actions,
        }
    }
}

impl<M: Clone> Ctx<'_, M> {
    /// Unicasts to one peer.
    pub fn send(&mut self, to: NodeId, msg: M, size: usize) {
        self.actions.push(Action::Send { to, msg, size });
    }

    /// Sends to every overlay neighbor (flood-gossip fanout).
    pub fn broadcast(&mut self, msg: M, size: usize) {
        for &to in self.neighbors {
            self.actions.push(Action::Send {
                to,
                msg: msg.clone(),
                size,
            });
        }
    }

    /// Sends to every neighbor except `except` (typically the peer the
    /// message just came from).
    pub fn broadcast_except(&mut self, except: NodeId, msg: M, size: usize) {
        for &to in self.neighbors {
            if to != except {
                self.actions.push(Action::Send {
                    to,
                    msg: msg.clone(),
                    size,
                });
            }
        }
    }

    /// Arms a timer with an opaque tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.actions.push(Action::Timer { delay, tag });
    }
}

/// A per-peer protocol state machine.
pub trait Protocol {
    /// Message type exchanged between peers.
    type Msg: Clone;

    /// Called once at simulation start.
    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called when a message arrives.
    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called when a timer set through [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = (tag, ctx);
    }
}

/// Picks the default worker count: the `DCS_SIM_SHARDS` environment
/// variable if set, otherwise `min(cores, nodes / 128)` — small networks
/// are not worth fanning out.
fn default_shards(nodes: usize) -> usize {
    if let Ok(v) = std::env::var("DCS_SIM_SHARDS") {
        if let Ok(s) = v.trim().parse::<usize>() {
            return s.max(1);
        }
    }
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    cores.min((nodes / 128).max(1))
}

/// Drives `N` protocol instances over a [`Network`].
#[derive(Debug)]
pub struct Runner<P: Protocol> {
    pub(crate) net: Network<P::Msg>,
    pub(crate) nodes: Vec<P>,
    pub(crate) rngs: Vec<Rng>,
    started: bool,
    action_buf: Vec<Action<P::Msg>>,
    shards: usize,
    /// Cumulative events dispatched per engine shard, observability only
    /// (serve mirrors these into per-worker counters). Serial runs count
    /// in slot 0; the slot layout depends on the worker count, so this
    /// must never feed a digest.
    pub(crate) shard_dispatched: Vec<u64>,
}

impl<P: Protocol> Runner<P> {
    /// Builds the network and one protocol instance per peer.
    pub fn new(cfg: NetConfig, seed: u64, mut make: impl FnMut(NodeId) -> P) -> Self {
        let mut net = Network::new(cfg, seed);
        let n = net.node_count();
        let rngs = (0..n).map(|i| net.rng_mut().fork(i as u64)).collect();
        let nodes = (0..n).map(|i| make(NodeId(i))).collect();
        Runner {
            net,
            nodes,
            rngs,
            started: false,
            action_buf: Vec::new(),
            shards: default_shards(n),
            shard_dispatched: Vec::new(),
        }
    }

    /// Overrides the engine worker count (default: `DCS_SIM_SHARDS`, else
    /// core count capped by network size). Any value produces bit-identical
    /// results; `1` forces the serial path.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The configured engine worker count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The protocol instance for `id`.
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.0]
    }

    /// Mutable protocol access (to inject client transactions mid-run).
    pub fn node_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.nodes[id.0]
    }

    /// All protocol instances.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The underlying network.
    pub fn net(&self) -> &Network<P::Msg> {
        &self.net
    }

    /// Mutable access to the network (partitions, extra traffic).
    pub fn net_mut(&mut self) -> &mut Network<P::Msg> {
        &mut self.net
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// Dispatches one callback with zero per-event allocation: the
    /// neighbor list is borrowed from the topology (never cloned) and the
    /// action buffer is reused across dispatches.
    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg>),
    {
        let Runner {
            net,
            nodes,
            rngs,
            action_buf,
            ..
        } = self;
        {
            let mut ctx = Ctx {
                node,
                now: net.now(),
                neighbors: net.neighbors(node),
                rng: &mut rngs[node.0],
                actions: action_buf,
            };
            f(&mut nodes[node.0], &mut ctx);
        }
        for action in action_buf.drain(..) {
            match action {
                Action::Send { to, msg, size } => net.send(node, to, msg, size),
                Action::Timer { delay, tag } => {
                    net.set_timer(node, delay, tag);
                }
            }
        }
    }

    /// Invokes `f` on one protocol instance with a live [`Ctx`], outside
    /// the event loop, and applies the requested actions — the hook fault
    /// drivers use to run crash/recovery callbacks at a scripted instant.
    pub fn with_ctx<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut P, &mut Ctx<'_, P::Msg>),
    {
        self.dispatch(node, f);
    }

    fn start_if_needed(&mut self) {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.dispatch(NodeId(i), |p, ctx| p.on_start(ctx));
            }
        }
    }

    /// The serial event loop — used below the sharding threshold and
    /// whenever the latency floor gives the engine zero lookahead.
    fn drive_serial(&mut self, deadline: SimTime) -> u64 {
        let mut processed = 0;
        while let Some((_, event)) = self.net.pop(Some(deadline)) {
            processed += 1;
            match event {
                NetEvent::Deliver { from, to, msg } => {
                    self.dispatch(to, |p, ctx| p.on_message(from, msg, ctx));
                }
                NetEvent::Timer { node, tag } => {
                    self.dispatch(node, |p, ctx| p.on_timer(tag, ctx));
                }
            }
        }
        self.note_dispatched(0, processed);
        processed
    }

    /// Accumulates `count` dispatched events against shard `slot`.
    pub(crate) fn note_dispatched(&mut self, slot: usize, count: u64) {
        if self.shard_dispatched.len() <= slot {
            self.shard_dispatched.resize(slot + 1, 0);
        }
        self.shard_dispatched[slot] += count;
    }

    /// Cumulative events dispatched per engine shard across this runner's
    /// lifetime — the raw material for per-worker events/s metrics. Slot 0
    /// absorbs serial-path dispatches; empty before the first drive.
    pub fn shard_event_counts(&self) -> &[u64] {
        &self.shard_dispatched
    }

    fn drive(&mut self, deadline: SimTime) -> u64
    where
        P: Send,
        P::Msg: Send,
    {
        self.start_if_needed();
        let effective = self.shards.min(self.nodes.len().max(1));
        if effective <= 1 || self.net.lookahead() == SimDuration::ZERO {
            self.drive_serial(deadline)
        } else {
            engine::run_sharded(self, deadline, effective)
        }
    }

    /// Runs until the event queue drains or `deadline` passes. Returns the
    /// number of events processed. Bit-identical at any shard count.
    pub fn run_until(&mut self, deadline: SimTime) -> u64
    where
        P: Send,
        P::Msg: Send,
    {
        self.drive(deadline)
    }

    /// Runs until the queue fully drains (protocols must quiesce).
    pub fn run_to_quiescence(&mut self) -> u64
    where
        P: Send,
        P::Msg: Send,
    {
        self.drive(SimTime::from_micros(u64::MAX))
    }

    /// Network statistics.
    pub fn stats(&self) -> NetStats {
        self.net.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;
    use crate::topology::Topology;
    use dcs_crypto::sha256;

    /// Flood gossip: node 0 originates one rumor; everyone forwards on
    /// first sight.
    struct Rumor {
        gossip: crate::Gossiper,
        heard_at: Option<SimTime>,
        origin: bool,
    }

    impl Protocol for Rumor {
        type Msg = dcs_crypto::Hash256;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if self.origin {
                let id = sha256(b"rumor");
                self.gossip.first_sight(id);
                self.heard_at = Some(ctx.now);
                ctx.broadcast(id, 32);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
            if self.gossip.first_sight(msg) {
                self.heard_at = Some(ctx.now);
                ctx.broadcast_except(from, msg, 32);
            }
        }
    }

    fn gossip_config(nodes: usize) -> NetConfig {
        NetConfig {
            nodes,
            topology: Topology::KRegular { k: 4 },
            latency: LatencyModel::Constant(SimDuration::from_millis(50)),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: None,
        }
    }

    #[test]
    fn rumor_reaches_every_node() {
        let mut runner = Runner::new(gossip_config(40), 11, |id| Rumor {
            gossip: crate::Gossiper::new(),
            heard_at: None,
            origin: id == NodeId(0),
        });
        runner.run_to_quiescence();
        assert!(runner.nodes().iter().all(|n| n.heard_at.is_some()));
        // Propagation takes at least one hop and at most diameter hops.
        let max_at = runner
            .nodes()
            .iter()
            .map(|n| n.heard_at.unwrap())
            .max()
            .unwrap();
        assert!(max_at.as_millis() >= 50);
        assert!(max_at.as_millis() <= 50 * 40);
    }

    #[test]
    fn rumor_blocked_by_partition_then_heals() {
        let mut runner = Runner::new(gossip_config(20), 13, |id| Rumor {
            gossip: crate::Gossiper::new(),
            heard_at: None,
            origin: id == NodeId(0),
        });
        // Split 0..10 | 10..20.
        let groups: Vec<u32> = (0..20).map(|i| u32::from(i >= 10)).collect();
        runner.net_mut().set_partition(groups);
        runner.run_to_quiescence();
        let heard: usize = runner
            .nodes()
            .iter()
            .filter(|n| n.heard_at.is_some())
            .count();
        assert!(heard < 20, "partition must block someone (heard {heard})");
        assert!(runner.stats().partitioned > 0);

        // Heal and re-gossip from a node that heard it.
        runner.net_mut().heal_partition();
        let heard_node = NodeId(
            (0..20)
                .find(|&i| runner.node(NodeId(i)).heard_at.is_some())
                .unwrap(),
        );
        let id = sha256(b"rumor");
        // Manually reflood from that node.
        let neighbors: Vec<NodeId> = runner.net().neighbors(heard_node).to_vec();
        for to in neighbors {
            runner.net_mut().send(heard_node, to, id, 32);
        }
        runner.run_to_quiescence();
        assert!(runner.nodes().iter().all(|n| n.heard_at.is_some()));
    }

    #[test]
    fn timers_dispatch_to_protocols() {
        struct Ticker {
            ticks: u32,
        }
        impl Protocol for Ticker {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.set_timer(SimDuration::from_millis(10), 1);
            }
            fn on_message(&mut self, _: NodeId, _: (), _: &mut Ctx<'_, ()>) {}
            fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, ()>) {
                assert_eq!(tag, 1);
                self.ticks += 1;
                if self.ticks < 5 {
                    ctx.set_timer(SimDuration::from_millis(10), 1);
                }
            }
        }
        let mut runner = Runner::new(gossip_config(3), 1, |_| Ticker { ticks: 0 });
        runner.run_to_quiescence();
        assert!(runner.nodes().iter().all(|n| n.ticks == 5));
        assert_eq!(runner.now().as_millis(), 50);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut runner = Runner::new(gossip_config(30), 17, |id| Rumor {
            gossip: crate::Gossiper::new(),
            heard_at: None,
            origin: id == NodeId(0),
        });
        let early = SimTime::from_micros(60_000); // one hop only
        runner.run_until(early);
        assert!(runner.now() <= early);
        let heard: usize = runner
            .nodes()
            .iter()
            .filter(|n| n.heard_at.is_some())
            .count();
        assert!(
            heard > 1 && heard < 30,
            "partial propagation, heard {heard}"
        );
    }

    fn gossip_outcome(shards: usize, latency: LatencyModel) -> (u64, Vec<u64>, NetStats, SimTime) {
        let mut cfg = gossip_config(48);
        cfg.latency = latency;
        let mut runner = Runner::new(cfg, 11, |id| Rumor {
            gossip: crate::Gossiper::new(),
            heard_at: None,
            origin: id == NodeId(0),
        });
        runner.set_shards(shards);
        assert_eq!(runner.shards(), shards.max(1));
        let processed = runner.run_to_quiescence();
        let heard = runner
            .nodes()
            .iter()
            .map(|n| n.heard_at.unwrap().as_micros())
            .collect();
        (processed, heard, runner.stats(), runner.now())
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let serial = gossip_outcome(1, LatencyModel::Constant(SimDuration::from_millis(50)));
        for shards in [2, 3, 8] {
            let sharded =
                gossip_outcome(shards, LatencyModel::Constant(SimDuration::from_millis(50)));
            assert_eq!(serial, sharded, "shards={shards} diverged");
        }
    }

    #[test]
    fn sharded_run_matches_serial_under_lognormal_latency() {
        // Long-tailed latency exercises the clamped lookahead floor and
        // uneven window population.
        let serial = gossip_outcome(1, LatencyModel::wan());
        for shards in [2, 8] {
            assert_eq!(
                serial,
                gossip_outcome(shards, LatencyModel::wan()),
                "shards={shards} diverged"
            );
        }
    }

    #[test]
    fn deadline_windows_are_respected_when_sharded() {
        let run = |shards: usize| {
            let mut runner = Runner::new(gossip_config(30), 17, |id| Rumor {
                gossip: crate::Gossiper::new(),
                heard_at: None,
                origin: id == NodeId(0),
            });
            runner.set_shards(shards);
            // Drive in many small increments that cut windows short.
            let mut processed = 0;
            for step in 1..=8 {
                processed += runner.run_until(SimTime::from_micros(step * 60_000));
                assert!(runner.now() <= SimTime::from_micros(step * 60_000));
            }
            processed += runner.run_to_quiescence();
            let heard: Vec<u64> = runner
                .nodes()
                .iter()
                .map(|n| n.heard_at.unwrap().as_micros())
                .collect();
            (processed, heard)
        };
        assert_eq!(run(1), run(4));
    }
}
