//! The sharded parallel event engine: conservative-window PDES over the
//! deterministic queue.
//!
//! Peers are partitioned into contiguous shards, each owning a private
//! event queue. A coordinator repeatedly picks the globally earliest
//! pending time `lo` and grants every shard the window `[lo, lo + L − 1µs]`
//! (clipped at the caller's deadline), where `L` is the fabric's latency
//! floor ([`crate::LatencyModel::min_latency`]). Any message generated at
//! time `t ≥ lo` delivers no earlier than `t + L`, strictly after the
//! window — so shards advance through a window without observing each
//! other, and cross-shard deliveries are exchanged at the barrier for the
//! *next* window.
//!
//! Determinism does not depend on the window schedule at all; it comes from
//! three per-node properties (see DESIGN.md §13): events are totally
//! ordered by `(time, source, source-sequence)` — a key assigned by the
//! *sender*, identical under any partitioning; every random draw comes from
//! the sending node's private [`dcs_sim::Rng::stream`]; and every trace
//! record lands in a per-node tracer. A shard processes exactly the
//! destination-restricted subsequence of the serial run, so every peer
//! observes the same messages, times, draws, and traces bit-for-bit.

use crate::network::{event_dest, route_send, NetEvent, NetStats, SharedNet};
use crate::runner::{Action, Ctx, Protocol, Runner};
use dcs_sim::{EventKey, Rng, SimTime, Simulation};
use dcs_trace::{TraceEvent, Tracer};
use std::sync::mpsc::{channel, Receiver, Sender};

/// One scheduled event in transit between shards.
type Item<M> = (SimTime, EventKey, NetEvent<M>);

/// Coordinator → worker.
enum Cmd<M> {
    /// Advance through `[previous grant, hi]`, after absorbing `inbox`.
    Window { hi: SimTime, inbox: Vec<Item<M>> },
    /// Run is over; return your state.
    Finish,
}

/// Worker → coordinator, one per window grant.
struct Rep<M> {
    shard: usize,
    /// Earliest locally pending event after the window, if any.
    next: Option<SimTime>,
    /// Deliveries destined for other shards, generated this window.
    outbox: Vec<Item<M>>,
}

/// One worker's slice of the simulation: a contiguous range of peers
/// (`base ..`), their protocol state, RNG streams, tracers, and a private
/// event queue.
struct Shard<'a, P: Protocol> {
    id: usize,
    base: usize,
    chunk: usize,
    queue: Simulation<NetEvent<P::Msg>>,
    nodes: &'a mut [P],
    rngs: &'a mut [Rng],
    link_rngs: &'a mut [Rng],
    src_seqs: &'a mut [u64],
    net_tracers: &'a mut [Tracer],
    disp_tracers: &'a mut [Tracer],
    shared: &'a SharedNet<'a>,
    stats: NetStats,
    dispatched: u64,
    action_buf: Vec<Action<P::Msg>>,
    outbox: Vec<Item<P::Msg>>,
}

impl<P: Protocol> Shard<'_, P> {
    /// Absorbs the barrier inbox, then dispatches every local event with
    /// time ≤ `hi` — the same pop/suppress/trace/dispatch sequence as the
    /// serial loop, restricted to this shard's peers.
    fn run_window(&mut self, hi: SimTime, inbox: Vec<Item<P::Msg>>) -> Rep<P::Msg> {
        for (t, k, ev) in inbox {
            self.queue.schedule_at_keyed(t, k, ev);
        }
        while let Some((at, key, event)) = self.queue.next_keyed(Some(hi)) {
            let dest = event_dest(&event);
            let li = dest.0 - self.base;
            if !self.shared.alive[dest.0] {
                match event {
                    NetEvent::Deliver { .. } => self.stats.suppressed_deliveries += 1,
                    NetEvent::Timer { .. } => self.stats.suppressed_timers += 1,
                }
                continue;
            }
            if let NetEvent::Deliver { from, .. } = &event {
                self.stats.delivered += 1;
                self.net_tracers[li].emit_for(
                    at.as_micros(),
                    dest.0 as u32,
                    TraceEvent::MsgDelivered {
                        from: from.0 as u32,
                    },
                );
            }
            self.disp_tracers[li].emit_for(
                at.as_micros(),
                dest.0 as u32,
                TraceEvent::EngineDispatch {
                    src: key.src,
                    seq: key.seq,
                },
            );
            self.dispatched += 1;
            let Shard {
                id,
                chunk,
                queue,
                nodes,
                rngs,
                link_rngs,
                src_seqs,
                net_tracers,
                shared,
                stats,
                action_buf,
                outbox,
                ..
            } = self;
            {
                let mut ctx = Ctx::new(
                    dest,
                    at,
                    &shared.adjacency[dest.0],
                    &mut rngs[li],
                    action_buf,
                );
                match event {
                    NetEvent::Deliver { from, msg, .. } => {
                        nodes[li].on_message(from, msg, &mut ctx)
                    }
                    NetEvent::Timer { tag, .. } => nodes[li].on_timer(tag, &mut ctx),
                }
            }
            for action in action_buf.drain(..) {
                match action {
                    Action::Send { to, msg, size } => {
                        let (my, ch) = (*id, *chunk);
                        route_send(
                            shared,
                            stats,
                            &mut net_tracers[li],
                            &mut link_rngs[li],
                            &mut src_seqs[li],
                            at,
                            dest,
                            to,
                            msg,
                            size,
                            |t, k, e| {
                                if event_dest(&e).0 / ch == my {
                                    queue.schedule_at_keyed(t, k, e);
                                } else {
                                    outbox.push((t, k, e));
                                }
                            },
                        );
                    }
                    Action::Timer { delay, tag } => {
                        let seq = src_seqs[li];
                        src_seqs[li] += 1;
                        queue.schedule_at_keyed(
                            at + delay,
                            EventKey::new(dest.0 as u32, seq),
                            NetEvent::Timer { node: dest, tag },
                        );
                    }
                }
            }
        }
        Rep {
            shard: self.id,
            next: self.queue.peek_time(),
            outbox: std::mem::take(&mut self.outbox),
        }
    }
}

/// A worker thread's whole life: serve window grants until told to finish,
/// then hand back the state the coordinator must merge.
fn worker<P: Protocol>(
    mut shard: Shard<'_, P>,
    rx: Receiver<Cmd<P::Msg>>,
    tx: Sender<Rep<P::Msg>>,
) -> (Simulation<NetEvent<P::Msg>>, NetStats, u64) {
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Window { hi, inbox } => {
                let rep = shard.run_window(hi, inbox);
                if tx.send(rep).is_err() {
                    break;
                }
            }
            Cmd::Finish => break,
        }
    }
    (shard.queue, shard.stats, shard.dispatched)
}

/// Runs the network sharded `shards` ways until the queue drains past
/// `deadline`. Returns the number of events dispatched. The caller
/// guarantees `shards ≥ 2`, a non-zero lookahead, and that `on_start` has
/// already run.
pub(crate) fn run_sharded<P>(runner: &mut Runner<P>, deadline: SimTime, shards: usize) -> u64
where
    P: Protocol + Send,
    P::Msg: Send,
{
    let lookahead = runner.net.lookahead();
    let n = runner.nodes.len();
    let chunk = n.div_ceil(shards);
    let s = n.div_ceil(chunk);

    let nodes = &mut runner.nodes;
    let rngs = &mut runner.rngs;
    let parts = runner.net.parts();
    let sim = parts.sim;
    let shared = parts.shared;

    // Explode the global queue into per-shard queues by destination.
    let start_now = sim.now();
    let mut pending: Vec<Vec<Item<P::Msg>>> = (0..s).map(|_| Vec::new()).collect();
    for (t, k, ev) in sim.drain() {
        pending[event_dest(&ev).0 / chunk].push((t, k, ev));
    }
    let mut queues: Vec<Simulation<NetEvent<P::Msg>>> = Vec::with_capacity(s);
    let mut next: Vec<Option<SimTime>> = Vec::with_capacity(s);
    for evs in pending {
        let mut q = Simulation::new();
        q.advance_to(start_now);
        for (t, k, ev) in evs {
            q.schedule_at_keyed(t, k, ev);
        }
        next.push(q.peek_time());
        queues.push(q);
    }

    let mut shard_structs = Vec::with_capacity(s);
    {
        let mut queues_it = queues.into_iter();
        let mut nodes_ch = nodes.chunks_mut(chunk);
        let mut rngs_ch = rngs.chunks_mut(chunk);
        let mut link_ch = parts.link_rngs.chunks_mut(chunk);
        let mut seq_ch = parts.src_seqs.chunks_mut(chunk);
        let mut net_tr_ch = parts.net_tracers.chunks_mut(chunk);
        let mut disp_tr_ch = parts.disp_tracers.chunks_mut(chunk);
        for id in 0..s {
            shard_structs.push(Shard {
                id,
                base: id * chunk,
                chunk,
                queue: queues_it.next().expect("one queue per shard"),
                nodes: nodes_ch.next().expect("one node chunk per shard"),
                rngs: rngs_ch.next().expect("one rng chunk per shard"),
                link_rngs: link_ch.next().expect("one link chunk per shard"),
                src_seqs: seq_ch.next().expect("one seq chunk per shard"),
                net_tracers: net_tr_ch.next().expect("one tracer chunk per shard"),
                disp_tracers: disp_tr_ch.next().expect("one tracer chunk per shard"),
                shared: &shared,
                stats: NetStats::default(),
                dispatched: 0,
                action_buf: Vec::new(),
                outbox: Vec::new(),
            });
        }
    }

    // lint-allow(thread-spawn): audited worker pool — scoped threads,
    // deterministic barrier protocol, no shared mutable state.
    let (outs, leftovers) = std::thread::scope(|scope| {
        let (rep_tx, rep_rx) = channel::<Rep<P::Msg>>();
        let mut cmd_txs: Vec<Sender<Cmd<P::Msg>>> = Vec::with_capacity(s);
        let mut handles = Vec::with_capacity(s);
        for shard in shard_structs {
            let (tx, rx) = channel();
            cmd_txs.push(tx);
            let rep = rep_tx.clone();
            handles.push(scope.spawn(move || worker(shard, rx, rep)));
        }
        drop(rep_tx);

        // Cross-shard deliveries parked at the barrier, per destination
        // shard.
        let mut inboxes: Vec<Vec<Item<P::Msg>>> = (0..s).map(|_| Vec::new()).collect();
        loop {
            let mut lo: Option<SimTime> = None;
            let mut fold = |t: SimTime| lo = Some(lo.map_or(t, |l| l.min(t)));
            for t in next.iter().flatten() {
                fold(*t);
            }
            for (t, _, _) in inboxes.iter().flatten() {
                fold(*t);
            }
            let Some(lo) = lo else { break };
            if lo > deadline {
                break;
            }
            let hi = SimTime::from_micros(
                lo.as_micros()
                    .saturating_add(lookahead.as_micros().saturating_sub(1))
                    .min(deadline.as_micros()),
            );
            for (i, tx) in cmd_txs.iter().enumerate() {
                tx.send(Cmd::Window {
                    hi,
                    inbox: std::mem::take(&mut inboxes[i]),
                })
                .expect("worker hung up");
            }
            for _ in 0..s {
                let rep = rep_rx.recv().expect("worker hung up");
                next[rep.shard] = rep.next;
                for item in rep.outbox {
                    inboxes[event_dest(&item.2).0 / chunk].push(item);
                }
            }
        }
        for tx in &cmd_txs {
            let _ = tx.send(Cmd::Finish);
        }
        let outs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("worker thread panicked"))
            .collect();
        (outs, inboxes)
    });

    // Fold the shards back into the global simulation: queues, counters,
    // and any cross-shard deliveries past the deadline.
    let mut total = 0;
    let mut per_shard = Vec::with_capacity(outs.len());
    for (queue, st, dispatched) in outs {
        sim.merge_from(queue);
        parts.stats.absorb(st);
        total += dispatched;
        per_shard.push(dispatched);
    }
    for (t, k, ev) in leftovers.into_iter().flatten() {
        sim.schedule_at_keyed(t, k, ev);
    }
    for (slot, dispatched) in per_shard.into_iter().enumerate() {
        runner.note_dispatched(slot, dispatched);
    }
    total
}
