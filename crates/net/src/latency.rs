//! Link latency models. Real block propagation measurements show long-tailed
//! delays, so the log-normal model is the default in experiments; constant
//! and uniform models isolate effects in ablations.

use dcs_sim::{Rng, SimDuration};
use serde::{Deserialize, Serialize};

/// How long a message takes to traverse one overlay link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every hop takes exactly this long.
    Constant(SimDuration),
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Minimum latency.
        lo: SimDuration,
        /// Maximum latency.
        hi: SimDuration,
    },
    /// Log-normal with the given median and shape; long-tailed like real
    /// WAN measurements.
    LogNormal {
        /// Median latency.
        median: SimDuration,
        /// Shape parameter (0.5 is a reasonable WAN tail).
        sigma: f64,
    },
}

impl LatencyModel {
    /// A typical WAN profile: median 80 ms, long-tailed.
    pub fn wan() -> Self {
        LatencyModel::LogNormal {
            median: SimDuration::from_millis(80),
            sigma: 0.5,
        }
    }

    /// A LAN/datacenter profile: median 1 ms, short tail.
    pub fn lan() -> Self {
        LatencyModel::LogNormal {
            median: SimDuration::from_millis(1),
            sigma: 0.2,
        }
    }

    /// Draws one latency sample. Samples never fall below
    /// [`LatencyModel::min_latency`]: the log-normal model clamps its
    /// extreme low tail (below `median · e^{-3σ}`, about 0.13% of draws) to
    /// the floor, which gives the sharded engine a usable conservative
    /// lookahead without visibly changing the distribution.
    pub fn sample(&self, rng: &mut Rng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimDuration::from_micros(rng.range(lo.as_micros(), hi.as_micros()))
                }
            }
            LatencyModel::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(rng.lognormal(median.as_secs_f64(), sigma))
                    .max(self.min_latency())
            }
        }
    }

    /// The guaranteed minimum of [`LatencyModel::sample`] — the conservative
    /// lookahead of the sharded engine: no message sent at time `t` can be
    /// delivered before `t + min_latency()`. Zero (e.g. a zero-constant
    /// link) forces the engine serial.
    pub fn min_latency(&self) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, .. } => lo,
            LatencyModel::LogNormal { median, sigma } => {
                SimDuration::from_secs_f64(median.as_secs_f64() * (-3.0 * sigma.abs()).exp())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(5));
        let mut rng = Rng::seed_from(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(5));
        }
    }

    #[test]
    fn uniform_within_bounds() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        let m = LatencyModel::Uniform { lo, hi };
        let mut rng = Rng::seed_from(2);
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!(s >= lo && s < hi, "{s}");
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let lo = SimDuration::from_millis(10);
        let m = LatencyModel::Uniform { lo, hi: lo };
        assert_eq!(m.sample(&mut Rng::seed_from(3)), lo);
    }

    #[test]
    fn min_latency_bounds_every_sample() {
        let models = [
            LatencyModel::Constant(SimDuration::from_millis(5)),
            LatencyModel::Uniform {
                lo: SimDuration::from_millis(10),
                hi: SimDuration::from_millis(20),
            },
            LatencyModel::wan(),
            LatencyModel::lan(),
        ];
        let mut rng = Rng::seed_from(9);
        for m in models {
            let floor = m.min_latency();
            assert!(floor > SimDuration::ZERO, "{m:?} must have a usable floor");
            for _ in 0..2000 {
                assert!(m.sample(&mut rng) >= floor, "{m:?} sampled under its floor");
            }
        }
    }

    #[test]
    fn lognormal_median_approximately_right() {
        let m = LatencyModel::LogNormal {
            median: SimDuration::from_millis(80),
            sigma: 0.5,
        };
        let mut rng = Rng::seed_from(4);
        let mut samples: Vec<u64> = (0..4001).map(|_| m.sample(&mut rng).as_micros()).collect();
        samples.sort_unstable();
        let median = samples[samples.len() / 2] as f64 / 1000.0;
        assert!((median - 80.0).abs() < 8.0, "median {median} ms");
    }
}
