//! The message fabric: point-to-point sends over the overlay with sampled
//! latency, probabilistic loss, partitions, bandwidth accounting, and
//! injectable faults (node crashes, link flaps, duplication, corruption),
//! all scheduled on the deterministic event queue.
//!
//! Shard-count invariance: every per-message random draw comes from the
//! *sending* node's private link stream (derived by [`Rng::stream`] from
//! the root seed), every scheduled event is keyed by the sender's own
//! `(node, sequence)` counter, and every trace record lands in the emitting
//! node's private tracer. None of that state is shared across nodes, so
//! partitioning nodes across engine shards cannot change what any of them
//! observes.

use crate::latency::LatencyModel;
use crate::topology::{self, Topology};
use crate::NodeId;
use dcs_sim::{EventId, EventKey, Rng, SimDuration, SimTime, Simulation};
use dcs_trace::{TraceConfig, TraceEvent, Tracer};
use std::collections::BTreeSet;

/// The [`Rng::stream`] domain for per-node link sampling streams.
const STREAM_LINK: u64 = 0x4c49_4e4b; // "LINK"

/// Network construction parameters.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Number of peers.
    pub nodes: usize,
    /// Overlay shape.
    pub topology: Topology,
    /// Per-hop latency model.
    pub latency: LatencyModel,
    /// Probability each message is silently lost.
    pub drop_probability: f64,
    /// If set, add `size / bandwidth` serialization delay per message.
    pub bandwidth_bytes_per_sec: Option<u64>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            nodes: 16,
            topology: Topology::KRegular { k: 4 },
            latency: LatencyModel::wan(),
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: None,
        }
    }
}

/// Counters the experiments report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to the fabric.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages lost to `drop_probability`.
    pub dropped: u64,
    /// Messages blocked by a partition.
    pub partitioned: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Messages lost to a downed link (link-flap fault).
    pub link_dropped: u64,
    /// Extra deliveries scheduled by the duplication fault.
    pub duplicated: u64,
    /// Messages corrupted in flight and discarded at the checksum.
    pub corrupted: u64,
    /// Node crash events applied.
    pub crashes: u64,
    /// Node restart events applied.
    pub restarts: u64,
    /// Deliveries consumed silently because the destination was crashed.
    pub suppressed_deliveries: u64,
    /// Timers consumed silently because their node was crashed.
    pub suppressed_timers: u64,
    /// Schedules whose requested instant was in the past and got clamped
    /// to "now" (see [`dcs_sim::Simulation::clamped`]).
    pub clamped_events: u64,
}

impl NetStats {
    /// Adds every counter of `other` into `self` (shard merge).
    pub(crate) fn absorb(&mut self, other: NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.partitioned += other.partitioned;
        self.bytes_sent += other.bytes_sent;
        self.link_dropped += other.link_dropped;
        self.duplicated += other.duplicated;
        self.corrupted += other.corrupted;
        self.crashes += other.crashes;
        self.restarts += other.restarts;
        self.suppressed_deliveries += other.suppressed_deliveries;
        self.suppressed_timers += other.suppressed_timers;
        self.clamped_events += other.clamped_events;
    }
}

/// Internal queue events.
#[derive(Debug)]
pub(crate) enum NetEvent<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, tag: u64 },
}

/// The node an event is dispatched to (delivery destination / timer owner).
pub(crate) fn event_dest<M>(ev: &NetEvent<M>) -> NodeId {
    match ev {
        NetEvent::Deliver { to, .. } => *to,
        NetEvent::Timer { node, .. } => *node,
    }
}

/// The read-only fabric state a send consults: topology, link models, and
/// fault switches. During a sharded run this is shared (immutably) by every
/// worker — faults only mutate it between `run_until` calls, never inside
/// one.
#[derive(Debug)]
pub(crate) struct SharedNet<'a> {
    pub adjacency: &'a [Vec<NodeId>],
    pub latency: LatencyModel,
    pub bandwidth: Option<u64>,
    pub drop_probability: f64,
    pub duplicate_probability: f64,
    pub corrupt_probability: f64,
    pub groups: &'a [u32],
    pub alive: &'a [bool],
    pub down_links: &'a BTreeSet<(usize, usize)>,
}

impl SharedNet<'_> {
    fn delivery_delay(&self, size: usize, rng: &mut Rng) -> SimDuration {
        let mut delay = self.latency.sample(rng);
        if let Some(bw) = self.bandwidth {
            let ser = SimDuration::from_secs_f64(size as f64 / bw as f64);
            delay = delay + ser;
        }
        delay
    }
}

/// A split view of a [`Network`]: the shared read-only state alongside the
/// per-node mutable columns and the event queue, borrowed disjointly so the
/// sharded engine can chunk the columns across workers.
pub(crate) struct NetParts<'a, M> {
    pub shared: SharedNet<'a>,
    pub sim: &'a mut Simulation<NetEvent<M>>,
    pub stats: &'a mut NetStats,
    pub link_rngs: &'a mut [Rng],
    pub src_seqs: &'a mut [u64],
    pub net_tracers: &'a mut [Tracer],
    pub disp_tracers: &'a mut [Tracer],
}

/// Routes one send: accounting, fault gates (partition, downed link, drop,
/// corruption, duplication), latency sampling, and the delivery callback
/// for whatever is scheduled. This single path is used verbatim by the
/// serial loop and by every engine worker, so the two execute bit-identical
/// per-send logic: same draw order from the sender's `link_rng`, same key
/// assignment from the sender's `src_seq` counter, same trace emissions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn route_send<M: Clone>(
    shared: &SharedNet<'_>,
    stats: &mut NetStats,
    tracer: &mut Tracer,
    link_rng: &mut Rng,
    src_seq: &mut u64,
    now: SimTime,
    from: NodeId,
    to: NodeId,
    msg: M,
    size: usize,
    mut deliver: impl FnMut(SimTime, EventKey, NetEvent<M>),
) {
    stats.sent += 1;
    stats.bytes_sent += size as u64;
    let now_us = now.as_micros();
    tracer.emit_for(
        now_us,
        from.0 as u32,
        TraceEvent::MsgSent {
            to: to.0 as u32,
            bytes: size.min(u32::MAX as usize) as u32,
        },
    );
    if shared.groups[from.0] != shared.groups[to.0] {
        stats.partitioned += 1;
        tracer.emit_for(
            now_us,
            from.0 as u32,
            TraceEvent::MsgPartitioned { to: to.0 as u32 },
        );
        return;
    }
    if shared.down_links.contains(&link_key(from, to)) {
        stats.link_dropped += 1;
        tracer.emit_for(
            now_us,
            from.0 as u32,
            TraceEvent::MsgDropped { to: to.0 as u32 },
        );
        return;
    }
    if shared.drop_probability > 0.0 && link_rng.chance(shared.drop_probability) {
        stats.dropped += 1;
        tracer.emit_for(
            now_us,
            from.0 as u32,
            TraceEvent::MsgDropped { to: to.0 as u32 },
        );
        return;
    }
    if shared.corrupt_probability > 0.0 && link_rng.chance(shared.corrupt_probability) {
        stats.corrupted += 1;
        tracer.emit_for(
            now_us,
            from.0 as u32,
            TraceEvent::MsgCorrupted { to: to.0 as u32 },
        );
        return;
    }
    if shared.duplicate_probability > 0.0 && link_rng.chance(shared.duplicate_probability) {
        stats.duplicated += 1;
        tracer.emit_for(
            now_us,
            from.0 as u32,
            TraceEvent::MsgDuplicated { to: to.0 as u32 },
        );
        let delay = shared.delivery_delay(size, link_rng);
        let seq = *src_seq;
        *src_seq += 1;
        deliver(
            now + delay,
            EventKey::new(from.0 as u32, seq),
            NetEvent::Deliver {
                from,
                to,
                msg: msg.clone(),
            },
        );
    }
    let delay = shared.delivery_delay(size, link_rng);
    let seq = *src_seq;
    *src_seq += 1;
    deliver(
        now + delay,
        EventKey::new(from.0 as u32, seq),
        NetEvent::Deliver { from, to, msg },
    );
}

/// The simulated network: overlay + event queue.
#[derive(Debug)]
pub struct Network<M> {
    pub(crate) sim: Simulation<NetEvent<M>>,
    adjacency: Vec<Vec<NodeId>>,
    latency: LatencyModel,
    drop_probability: f64,
    bandwidth: Option<u64>,
    groups: Vec<u32>,
    alive: Vec<bool>,
    down_links: BTreeSet<(usize, usize)>,
    duplicate_probability: f64,
    corrupt_probability: f64,
    rng: Rng,
    link_rngs: Vec<Rng>,
    src_seqs: Vec<u64>,
    net_tracers: Vec<Tracer>,
    disp_tracers: Vec<Tracer>,
    stats: NetStats,
}

/// Normalized undirected link key.
fn link_key(a: NodeId, b: NodeId) -> (usize, usize) {
    if a.0 <= b.0 {
        (a.0, b.0)
    } else {
        (b.0, a.0)
    }
}

impl<M> Network<M> {
    /// Builds the network; the overlay wiring is derived from `seed`, and
    /// each node's private link-sampling stream is split off the same seed.
    pub fn new(cfg: NetConfig, seed: u64) -> Self {
        let mut rng = Rng::seed_from(seed);
        let adjacency = topology::build(cfg.topology, cfg.nodes, &mut rng);
        let link_rngs = (0..cfg.nodes)
            .map(|i| Rng::stream(seed, STREAM_LINK, i as u64))
            .collect();
        Network {
            sim: Simulation::new(),
            adjacency,
            latency: cfg.latency,
            drop_probability: cfg.drop_probability,
            bandwidth: cfg.bandwidth_bytes_per_sec,
            groups: vec![0; cfg.nodes],
            alive: vec![true; cfg.nodes],
            down_links: BTreeSet::new(),
            duplicate_probability: 0.0,
            corrupt_probability: 0.0,
            rng,
            link_rngs,
            src_seqs: vec![0; cfg.nodes],
            net_tracers: vec![Tracer::disabled(); cfg.nodes],
            disp_tracers: vec![Tracer::disabled(); cfg.nodes],
            stats: NetStats::default(),
        }
    }

    /// Installs (or, with [`TraceConfig::off`], uninstalls) per-node fabric
    /// and dispatch tracers under `cfg`. Fabric events are recorded in the
    /// emitting node's own tracer; dispatch events in the dispatched node's
    /// — which is what keeps trace digests identical across engine shard
    /// counts.
    pub fn set_tracing(&mut self, cfg: &TraceConfig) {
        let n = self.node_count();
        self.net_tracers = (0..n).map(|i| Tracer::new(i as u32, cfg)).collect();
        self.disp_tracers = (0..n).map(|i| Tracer::new(i as u32, cfg)).collect();
    }

    /// The per-node fabric tracers (message send/deliver/drop events),
    /// indexed by node.
    pub fn node_tracers(&self) -> &[Tracer] {
        &self.net_tracers
    }

    /// The per-node dispatch tracers (one
    /// [`TraceEvent::EngineDispatch`] per dispatched event), indexed by
    /// node.
    pub fn dispatch_tracers(&self) -> &[Tracer] {
        &self.disp_tracers
    }

    /// Emits an application-level event (e.g. a workload submission) into
    /// `node`'s fabric tracer.
    pub fn emit_app(&mut self, at_us: u64, node: NodeId, event: TraceEvent) {
        self.net_tracers[node.0].emit_for(at_us, node.0 as u32, event);
    }

    /// Number of peers.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// The overlay neighbors of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Number of events currently pending in the fabric queue.
    ///
    /// Observability only: the value depends on drive interleaving and
    /// must never feed a digest or branch on the deterministic path.
    pub fn queue_depth(&self) -> usize {
        self.sim.pending()
    }

    /// High-water mark of the pending-event queue since construction.
    pub fn queue_high_water(&self) -> usize {
        self.sim.pending_high_water()
    }

    /// Fabric statistics so far.
    pub fn stats(&self) -> NetStats {
        let mut s = self.stats;
        s.clamped_events += self.sim.clamped();
        s
    }

    /// Borrow the fabric RNG (nodes fork child RNGs from it).
    pub fn rng_mut(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// The engine's conservative lookahead: no message sent at `t` can be
    /// delivered before `t + lookahead()`.
    pub(crate) fn lookahead(&self) -> SimDuration {
        self.latency.min_latency()
    }

    /// Splits the network into its shared read-only state, per-node
    /// columns, and event queue (see [`NetParts`]).
    pub(crate) fn parts(&mut self) -> NetParts<'_, M> {
        NetParts {
            shared: SharedNet {
                adjacency: &self.adjacency,
                latency: self.latency,
                bandwidth: self.bandwidth,
                drop_probability: self.drop_probability,
                duplicate_probability: self.duplicate_probability,
                corrupt_probability: self.corrupt_probability,
                groups: &self.groups,
                alive: &self.alive,
                down_links: &self.down_links,
            },
            sim: &mut self.sim,
            stats: &mut self.stats,
            link_rngs: &mut self.link_rngs,
            src_seqs: &mut self.src_seqs,
            net_tracers: &mut self.net_tracers,
            disp_tracers: &mut self.disp_tracers,
        }
    }

    /// Splits the network: nodes keep messages only within their group.
    /// `groups[i]` is node `i`'s side. Panics if the length mismatches.
    pub fn set_partition(&mut self, groups: Vec<u32>) {
        assert_eq!(groups.len(), self.node_count(), "one group per node");
        self.groups = groups;
    }

    /// Heals all partitions.
    pub fn heal_partition(&mut self) {
        self.groups = vec![0; self.node_count()];
    }

    /// Fail-stops `node`: its queued and future deliveries and timers are
    /// consumed silently (counted in [`NetStats`]) until
    /// [`Network::restart`]. Idempotent. Outbound sends are not blocked
    /// here — a crashed protocol is never dispatched, so it cannot send.
    pub fn crash(&mut self, node: NodeId) {
        if !self.alive[node.0] {
            return;
        }
        self.alive[node.0] = false;
        self.stats.crashes += 1;
        self.net_tracers[node.0].emit_for(
            self.sim.now().as_micros(),
            node.0 as u32,
            TraceEvent::NodeCrashed,
        );
    }

    /// Brings a crashed node back: deliveries and timers scheduled from now
    /// on (including in-flight messages that arrive after this instant)
    /// reach it again. Idempotent.
    pub fn restart(&mut self, node: NodeId) {
        if self.alive[node.0] {
            return;
        }
        self.alive[node.0] = true;
        self.stats.restarts += 1;
        self.net_tracers[node.0].emit_for(
            self.sim.now().as_micros(),
            node.0 as u32,
            TraceEvent::NodeRestarted,
        );
    }

    /// Whether `node` is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.0]
    }

    /// Takes the undirected link `a`–`b` down: sends in either direction
    /// are dropped (counted as `link_dropped`, traced as drops).
    pub fn set_link_down(&mut self, a: NodeId, b: NodeId) {
        self.down_links.insert(link_key(a, b));
    }

    /// Restores the undirected link `a`–`b`.
    pub fn set_link_up(&mut self, a: NodeId, b: NodeId) {
        self.down_links.remove(&link_key(a, b));
    }

    /// Whether the undirected link `a`–`b` is currently down.
    pub fn is_link_down(&self, a: NodeId, b: NodeId) -> bool {
        self.down_links.contains(&link_key(a, b))
    }

    /// Sets the probability that a sent message is delivered twice (the
    /// copy takes an independently sampled latency). Zero disables the
    /// fault and restores bit-identical behavior to a fault-free run.
    pub fn set_duplication(&mut self, p: f64) {
        self.duplicate_probability = p;
    }

    /// Sets the probability that a sent message is corrupted in flight.
    /// Corrupted messages are discarded at the receiver's checksum, so the
    /// fault manifests as loss that is counted and traced separately.
    pub fn set_corruption(&mut self, p: f64) {
        self.corrupt_probability = p;
    }

    /// Injects a message to `node` at an absolute time, bypassing topology,
    /// loss, and latency — how simulated *clients* (who are not overlay
    /// peers) deliver transactions to their point-of-contact peer. The
    /// message appears to come from the node itself, and is accounted and
    /// traced like a send so client traffic shows up in the same books.
    pub fn inject(&mut self, at: SimTime, node: NodeId, msg: M, size: usize) {
        self.stats.sent += 1;
        self.stats.bytes_sent += size as u64;
        self.net_tracers[node.0].emit_for(
            at.as_micros(),
            node.0 as u32,
            TraceEvent::MsgSent {
                to: node.0 as u32,
                bytes: size.min(u32::MAX as usize) as u32,
            },
        );
        let seq = self.src_seqs[node.0];
        self.src_seqs[node.0] += 1;
        self.sim.schedule_at_keyed(
            at,
            EventKey::new(node.0 as u32, seq),
            NetEvent::Deliver {
                from: node,
                to: node,
                msg,
            },
        );
    }

    /// Schedules a timer for `node`; the tag is returned to the protocol.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) -> EventId {
        let seq = self.src_seqs[node.0];
        self.src_seqs[node.0] += 1;
        let at = self.sim.now() + delay;
        self.sim.schedule_at_keyed(
            at,
            EventKey::new(node.0 as u32, seq),
            NetEvent::Timer { node, tag },
        )
    }

    /// Cancels a pending timer. The handle is only valid until the next
    /// `run_until`-style drive (the engine may re-slot pending events);
    /// stale handles are inert no-ops.
    pub fn cancel_timer(&mut self, id: EventId) {
        self.sim.cancel(id);
    }

    pub(crate) fn pop(&mut self, deadline: Option<SimTime>) -> Option<(SimTime, NetEvent<M>)> {
        loop {
            let (at, key, event) = self.sim.next_keyed(deadline)?;
            let dest = event_dest(&event);
            if !self.alive[dest.0] {
                // A crashed node's inbound traffic and timers vanish: they
                // are consumed (sim time still advances deterministically)
                // but never dispatched.
                match event {
                    NetEvent::Deliver { .. } => self.stats.suppressed_deliveries += 1,
                    NetEvent::Timer { .. } => self.stats.suppressed_timers += 1,
                }
                continue;
            }
            if let NetEvent::Deliver { from, .. } = &event {
                self.stats.delivered += 1;
                self.net_tracers[dest.0].emit_for(
                    at.as_micros(),
                    dest.0 as u32,
                    TraceEvent::MsgDelivered {
                        from: from.0 as u32,
                    },
                );
            }
            self.disp_tracers[dest.0].emit_for(
                at.as_micros(),
                dest.0 as u32,
                TraceEvent::EngineDispatch {
                    src: key.src,
                    seq: key.seq,
                },
            );
            return Some((at, event));
        }
    }
}

impl<M: Clone> Network<M> {
    /// Sends `msg` of `size` bytes from `from` to `to`, subject to loss,
    /// partitions, downed links, and the corruption/duplication faults.
    /// Delivery is scheduled after sampled latency (plus serialization
    /// delay when bandwidth is modeled).
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M, size: usize) {
        let now = self.sim.now();
        let NetParts {
            shared,
            sim,
            stats,
            link_rngs,
            src_seqs,
            net_tracers,
            ..
        } = self.parts();
        route_send(
            &shared,
            stats,
            &mut net_tracers[from.0],
            &mut link_rngs[from.0],
            &mut src_seqs[from.0],
            now,
            from,
            to,
            msg,
            size,
            |t, k, ev| {
                sim.schedule_at_keyed(t, k, ev);
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Network<&'static str> {
        Network::new(
            NetConfig {
                nodes: 4,
                topology: Topology::Complete,
                latency: LatencyModel::Constant(SimDuration::from_millis(10)),
                drop_probability: 0.0,
                bandwidth_bytes_per_sec: None,
            },
            1,
        )
    }

    #[test]
    fn send_delivers_after_latency() {
        let mut net = tiny();
        net.send(NodeId(0), NodeId(1), "hi", 100);
        let (t, ev) = net.pop(None).unwrap();
        assert_eq!(t.as_millis(), 10);
        match ev {
            NetEvent::Deliver { from, to, msg } => {
                assert_eq!((from, to, msg), (NodeId(0), NodeId(1), "hi"));
            }
            _ => panic!("expected delivery"),
        }
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().bytes_sent, 100);
    }

    #[test]
    fn partition_blocks_cross_group_traffic() {
        let mut net = tiny();
        net.set_partition(vec![0, 0, 1, 1]);
        net.send(NodeId(0), NodeId(2), "blocked", 10);
        net.send(NodeId(0), NodeId(1), "ok", 10);
        assert_eq!(net.stats().partitioned, 1);
        let (_, ev) = net.pop(None).unwrap();
        assert!(matches!(ev, NetEvent::Deliver { msg: "ok", .. }));
        assert!(net.pop(None).is_none());

        net.heal_partition();
        net.send(NodeId(0), NodeId(2), "now ok", 10);
        assert!(net.pop(None).is_some());
    }

    #[test]
    fn drops_are_probabilistic_and_counted() {
        let mut net = Network::<u32>::new(
            NetConfig {
                nodes: 2,
                topology: Topology::Complete,
                latency: LatencyModel::Constant(SimDuration::ZERO),
                drop_probability: 0.5,
                bandwidth_bytes_per_sec: None,
            },
            7,
        );
        for i in 0..1000 {
            net.send(NodeId(0), NodeId(1), i, 1);
        }
        let dropped = net.stats().dropped;
        assert!(dropped > 350 && dropped < 650, "dropped {dropped}");
    }

    #[test]
    fn bandwidth_adds_serialization_delay() {
        let mut net = Network::<&'static str>::new(
            NetConfig {
                nodes: 2,
                topology: Topology::Complete,
                latency: LatencyModel::Constant(SimDuration::from_millis(10)),
                drop_probability: 0.0,
                bandwidth_bytes_per_sec: Some(1_000_000), // 1 MB/s
            },
            1,
        );
        // 500 KB message → 0.5 s serialization + 10 ms latency.
        net.send(NodeId(0), NodeId(1), "big", 500_000);
        let (t, _) = net.pop(None).unwrap();
        assert_eq!(t.as_millis(), 510);
    }

    #[test]
    fn tracer_records_send_partition_and_delivery() {
        let mut net = tiny();
        net.set_tracing(&TraceConfig::full());
        net.set_partition(vec![0, 0, 1, 1]);
        net.send(NodeId(0), NodeId(2), "blocked", 5);
        net.send(NodeId(0), NodeId(1), "ok", 7);
        while net.pop(None).is_some() {}
        // The sender's fabric tracer sees its sends and the partition drop.
        let sender: Vec<_> = net.node_tracers()[0].records().map(|r| r.event).collect();
        assert_eq!(
            sender,
            vec![
                TraceEvent::MsgSent { to: 2, bytes: 5 },
                TraceEvent::MsgPartitioned { to: 2 },
                TraceEvent::MsgSent { to: 1, bytes: 7 },
            ]
        );
        // Deliveries are attributed to the receiver at delivery time, in
        // the receiver's own tracer.
        let recv: Vec<_> = net.node_tracers()[1].records().copied().collect();
        assert_eq!(recv.len(), 1);
        assert_eq!(recv[0].event, TraceEvent::MsgDelivered { from: 0 });
        assert_eq!(recv[0].node, 1);
        assert_eq!(recv[0].at_us, 10_000);
    }

    #[test]
    fn dispatch_tracer_records_source_keys() {
        let mut net = tiny();
        net.set_tracing(&TraceConfig::full());
        net.send(NodeId(0), NodeId(1), "a", 1);
        net.send(NodeId(2), NodeId(1), "b", 1);
        while net.pop(None).is_some() {}
        let disp: Vec<_> = net.dispatch_tracers()[1]
            .records()
            .map(|r| r.event)
            .collect();
        assert_eq!(
            disp,
            vec![
                TraceEvent::EngineDispatch { src: 0, seq: 0 },
                TraceEvent::EngineDispatch { src: 2, seq: 0 },
            ]
        );
        assert!(net.dispatch_tracers()[0].records().next().is_none());
    }

    #[test]
    fn inject_accounts_bytes_and_traces_like_send() {
        let mut net = tiny();
        net.set_tracing(&TraceConfig::full());
        let at = SimTime::ZERO + SimDuration::from_millis(25);
        net.inject(at, NodeId(1), "tx", 64);
        assert_eq!(net.stats().sent, 1);
        assert_eq!(net.stats().bytes_sent, 64, "inject accounts payload bytes");
        let first = *net.node_tracers()[1].records().next().unwrap();
        assert_eq!(first.at_us, 25_000);
        assert_eq!(first.node, 1, "attributed to the point-of-contact peer");
        assert_eq!(first.event, TraceEvent::MsgSent { to: 1, bytes: 64 });
        let (t, _) = net.pop(None).unwrap();
        assert_eq!(t, at);
        assert_eq!(net.stats().delivered, 1);
    }

    #[test]
    fn crashed_node_suppresses_deliveries_and_timers_until_restart() {
        let mut net = tiny();
        net.send(NodeId(0), NodeId(1), "pre", 1);
        net.set_timer(NodeId(1), SimDuration::from_millis(5), 9);
        net.crash(NodeId(1));
        assert!(!net.is_alive(NodeId(1)));
        net.crash(NodeId(1)); // idempotent
        assert!(net.pop(None).is_none(), "both events suppressed");
        assert_eq!(net.stats().crashes, 1);
        assert_eq!(net.stats().suppressed_deliveries, 1);
        assert_eq!(net.stats().suppressed_timers, 1);

        net.restart(NodeId(1));
        assert!(net.is_alive(NodeId(1)));
        net.send(NodeId(0), NodeId(1), "post", 1);
        let (_, ev) = net.pop(None).unwrap();
        assert!(matches!(ev, NetEvent::Deliver { msg: "post", .. }));
        assert_eq!(net.stats().restarts, 1);
    }

    #[test]
    fn in_flight_message_reaches_node_restarted_before_delivery() {
        let mut net = tiny();
        net.crash(NodeId(2));
        // 10 ms constant latency; the node is back up at delivery time.
        net.send(NodeId(0), NodeId(2), "inflight", 1);
        net.restart(NodeId(2));
        let (_, ev) = net.pop(None).unwrap();
        assert!(matches!(
            ev,
            NetEvent::Deliver {
                msg: "inflight",
                ..
            }
        ));
        assert_eq!(net.stats().suppressed_deliveries, 0);
    }

    #[test]
    fn downed_link_drops_both_directions_until_up() {
        let mut net = tiny();
        net.set_link_down(NodeId(0), NodeId(1));
        assert!(net.is_link_down(NodeId(1), NodeId(0)));
        net.send(NodeId(0), NodeId(1), "a", 1);
        net.send(NodeId(1), NodeId(0), "b", 1);
        net.send(NodeId(0), NodeId(2), "c", 1);
        assert_eq!(net.stats().link_dropped, 2);
        let (_, ev) = net.pop(None).unwrap();
        assert!(matches!(ev, NetEvent::Deliver { msg: "c", .. }));
        assert!(net.pop(None).is_none());

        net.set_link_up(NodeId(0), NodeId(1));
        net.send(NodeId(0), NodeId(1), "again", 1);
        assert!(net.pop(None).is_some());
    }

    #[test]
    fn duplication_delivers_extra_copies() {
        let mut net = tiny();
        net.set_duplication(1.0);
        net.send(NodeId(0), NodeId(1), "twice", 1);
        assert_eq!(net.stats().duplicated, 1);
        assert!(net.pop(None).is_some());
        assert!(net.pop(None).is_some());
        assert!(net.pop(None).is_none());
        assert_eq!(net.stats().delivered, 2);
    }

    #[test]
    fn corruption_discards_and_counts() {
        let mut net = tiny();
        net.set_corruption(1.0);
        net.send(NodeId(0), NodeId(1), "garbled", 1);
        assert_eq!(net.stats().corrupted, 1);
        assert!(net.pop(None).is_none());
        net.set_corruption(0.0);
        net.send(NodeId(0), NodeId(1), "clean", 1);
        assert!(net.pop(None).is_some());
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut net = tiny();
        let id = net.set_timer(NodeId(2), SimDuration::from_millis(5), 77);
        net.set_timer(NodeId(3), SimDuration::from_millis(6), 88);
        net.cancel_timer(id);
        let (_, ev) = net.pop(None).unwrap();
        assert!(matches!(
            ev,
            NetEvent::Timer {
                node: NodeId(3),
                tag: 88
            }
        ));
        assert!(net.pop(None).is_none());
    }

    #[test]
    fn per_node_link_streams_are_send_order_independent() {
        // Node 0's draw sequence must not depend on when *other* nodes
        // send — the property that makes sharding invisible.
        let run = |interleave: bool| {
            let mut net = Network::<u32>::new(
                NetConfig {
                    nodes: 4,
                    topology: Topology::Complete,
                    latency: LatencyModel::wan(),
                    drop_probability: 0.0,
                    bandwidth_bytes_per_sec: None,
                },
                99,
            );
            if interleave {
                net.send(NodeId(3), NodeId(2), 7, 1);
            }
            net.send(NodeId(0), NodeId(1), 1, 1);
            let mut times = Vec::new();
            while let Some((t, ev)) = net.pop(None) {
                if let NetEvent::Deliver {
                    from: NodeId(0), ..
                } = ev
                {
                    times.push(t);
                }
            }
            times
        };
        assert_eq!(run(false), run(true));
    }
}
