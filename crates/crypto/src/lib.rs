//! Cryptographic primitives for the `dcs-ledger` platform, implemented from
//! scratch: SHA-256, Merkle trees with inclusion proofs, Winternitz one-time
//! signatures extended to many-time keys via Merkle trees, and a canonical
//! binary codec used for all hashing and wire encodings.
//!
//! The paper (§2.2) grounds ledger immutability in hash chaining and Merkle
//! trees; this crate provides those building blocks with real cryptographic
//! structure (FIPS 180-4 SHA-256, hash-based signatures secure under standard
//! hash assumptions) so every higher layer hashes and signs real bytes.
//!
//! # Examples
//!
//! ```
//! use dcs_crypto::{sha256, Hash256, MerkleTree};
//!
//! let leaves: Vec<Hash256> = (0..4u8).map(|i| sha256(&[i])).collect();
//! let tree = MerkleTree::from_leaves(leaves.clone());
//! let proof = tree.prove(2).unwrap();
//! assert!(proof.verify(&leaves[2], &tree.root()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod codec;
pub mod hash;
pub mod merkle;
pub mod sha256;
pub mod sig;

pub use batch::{PipelineStats, SigCache, SigCacheStats, VerifyItem, VerifyPipeline, VerifyPool};
pub use codec::{Decode, Encode, Reader};
pub use hash::{Address, Hash256};
pub use merkle::{merkle_root, merkle_root_with, MerkleProof, MerkleTree};
pub use sha256::{sha256, sha256_concat, MultiHasher, Sha256};
pub use sig::{KeyPair, PublicKey, Signature};

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A byte stream could not be decoded into the requested type.
    Decode(codec::DecodeError),
    /// A signature failed verification against the given key and message.
    BadSignature,
    /// A one-time key index was reused or is out of range.
    KeyExhausted {
        /// The index that was requested.
        index: u32,
        /// The number of one-time keys the pair was generated with.
        capacity: u32,
    },
    /// A Merkle proof did not connect the leaf to the root.
    BadProof,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::Decode(e) => write!(f, "decode error: {e}"),
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::KeyExhausted { index, capacity } => {
                write!(f, "one-time key index {index} out of capacity {capacity}")
            }
            CryptoError::BadProof => write!(f, "merkle proof verification failed"),
        }
    }
}

impl std::error::Error for CryptoError {}

impl From<codec::DecodeError> for CryptoError {
    fn from(e: codec::DecodeError) -> Self {
        CryptoError::Decode(e)
    }
}
