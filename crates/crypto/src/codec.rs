//! A canonical, deterministic binary codec.
//!
//! Everything that is hashed or signed in the platform is first encoded with
//! this codec, guaranteeing one unique byte representation per value (serde
//! formats do not promise this). Integers are little-endian fixed width;
//! variable-length sequences are prefixed with a `u32` length.
//!
//! # Examples
//!
//! ```
//! use dcs_crypto::codec::{decode_all, Encode};
//!
//! let v: Vec<u64> = vec![1, 2, 3];
//! let bytes = v.encoded();
//! assert_eq!(decode_all::<Vec<u64>>(&bytes).unwrap(), v);
//! ```

/// Error returned when decoding malformed or truncated bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    UnexpectedEnd,
    /// A length prefix exceeded the remaining input (or a sanity bound).
    BadLength(u64),
    /// An enum discriminant byte was not recognized.
    BadTag(u8),
    /// Bytes were left over after `decode_all` finished.
    TrailingBytes(usize),
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadLength(n) => write!(f, "length prefix {n} exceeds input"),
            DecodeError::BadTag(t) => write!(f, "unrecognized tag byte {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string field"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Types with a canonical binary encoding.
pub trait Encode {
    /// Appends the canonical encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Convenience: encodes into a fresh buffer.
    fn encoded(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }
}

/// Types decodable from the canonical binary encoding.
pub trait Decode: Sized {
    /// Reads one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the input is truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

/// Decodes exactly one value, rejecting trailing bytes.
///
/// # Errors
///
/// Fails if the value is malformed or the input has leftover bytes.
pub fn decode_all<T: Decode>(bytes: &[u8]) -> Result<T, DecodeError> {
    let mut r = Reader::new(bytes);
    let v = T::decode(&mut r)?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

/// A cursor over a byte slice used by [`Decode`] implementations.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `bytes` starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consumes and returns `n` bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::UnexpectedEnd);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consumes `N` bytes into a fixed array.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnexpectedEnd`] if fewer than `N` bytes remain.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }
}

macro_rules! impl_codec_int {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                let n = core::mem::size_of::<$t>();
                let s = r.take(n)?;
                Ok(<$t>::from_le_bytes(s.try_into().expect("exact size")))
            }
        }
    )*};
}

impl_codec_int!(u8, u16, u32, u64, u128, i64);

impl Encode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    (len as u32).encode(out);
}

fn decode_len(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
    let len = u32::decode(r)? as usize;
    if len > r.remaining() {
        // Each element is at least one byte, so any honest length fits.
        return Err(DecodeError::BadLength(len as u64));
    }
    Ok(len)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        encode_len(self.len(), out);
        out.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let len = decode_len(r)?;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<const N: usize> Encode for [u8; N] {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self);
    }
}

impl<const N: usize> Decode for [u8; N] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        r.take_array::<N>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_round_trips() {
        let mut out = Vec::new();
        0xdead_beefu32.encode(&mut out);
        7u8.encode(&mut out);
        u64::MAX.encode(&mut out);
        (-42i64).encode(&mut out);
        let mut r = Reader::new(&out);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xdead_beef);
        assert_eq!(u8::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut r).unwrap(), -42);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn vec_and_string_round_trip() {
        let v = vec!["alpha".to_string(), "".to_string(), "γδ".to_string()];
        assert_eq!(decode_all::<Vec<String>>(&v.encoded()).unwrap(), v);
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u64> = Some(9);
        let none: Option<u64> = None;
        assert_eq!(decode_all::<Option<u64>>(&some.encoded()).unwrap(), some);
        assert_eq!(decode_all::<Option<u64>>(&none.encoded()).unwrap(), none);
    }

    #[test]
    fn truncated_input_fails() {
        let bytes = 1234u64.encoded();
        let mut r = Reader::new(&bytes[..7]);
        assert_eq!(u64::decode(&mut r), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 5u8.encoded();
        bytes.push(0);
        assert_eq!(decode_all::<u8>(&bytes), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Claims 2^31 elements with a 4-byte body: must fail fast, not OOM.
        let mut bytes = Vec::new();
        (1u32 << 31).encode(&mut bytes);
        bytes.extend_from_slice(&[0, 0, 0, 0]);
        assert!(matches!(
            decode_all::<Vec<u8>>(&bytes),
            Err(DecodeError::BadLength(_))
        ));
    }

    #[test]
    fn bad_bool_tag_rejected() {
        assert_eq!(decode_all::<bool>(&[2]), Err(DecodeError::BadTag(2)));
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        assert_eq!(v.encoded(), v.encoded());
    }
}
