//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! Verified against the NIST test vectors in this module's tests. The
//! streaming [`Sha256`] context supports incremental hashing; [`sha256`] is
//! the one-shot convenience.

use crate::hash::Hash256;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 context.
///
/// # Examples
///
/// ```
/// use dcs_crypto::Sha256;
///
/// let mut ctx = Sha256::new();
/// ctx.update(b"hello ");
/// ctx.update(b"world");
/// let digest = ctx.finalize();
/// assert_eq!(digest, dcs_crypto::sha256(b"hello world"));
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh context with the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Consumes the context and returns the 32-byte digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual write of the length to avoid it counting toward total_len.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        Hash256::from_bytes(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Examples
///
/// ```
/// let d = dcs_crypto::sha256(b"abc");
/// assert_eq!(
///     d.to_string(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(data);
    ctx.finalize()
}

/// SHA-256 of the concatenation of two byte strings, without allocating.
///
/// Used pervasively for Merkle node hashing: `sha256_concat(left, right)`.
pub fn sha256_concat(a: &[u8], b: &[u8]) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(a);
    ctx.update(b);
    ctx.finalize()
}

/// Interleaved `L`-lane SHA-256 compression: `L` independent message streams
/// each advance one 64-byte block per call.
///
/// The state is kept *transposed* — `states[word][lane]` — so every round
/// operation is an element-wise loop over the lanes that the compiler can
/// keep in SIMD registers (4 lanes per SSE2 vector, 8 per AVX2). Each lane
/// runs exactly the FIPS 180-4 math of [`Sha256`]'s scalar `compress`; the
/// lanes only widen the data path, so per-lane digests are bit-identical to
/// the scalar implementation.
// Index loops are deliberate: every lane loop must stay a plain counted
// `for` over `0..L` for the auto-vectorizer to see the element-wise shape.
#[allow(clippy::needless_range_loop)]
fn compress_wide<const L: usize>(states: &mut [[u32; L]; 8], blocks: &[[u8; 64]; L]) {
    let mut w = [[0u32; L]; 64];
    for i in 0..16 {
        let o = 4 * i;
        for l in 0..L {
            w[i][l] = u32::from_be_bytes([
                blocks[l][o],
                blocks[l][o + 1],
                blocks[l][o + 2],
                blocks[l][o + 3],
            ]);
        }
    }
    for i in 16..64 {
        for l in 0..L {
            let w15 = w[i - 15][l];
            let w2 = w[i - 2][l];
            let s0 = w15.rotate_right(7) ^ w15.rotate_right(18) ^ (w15 >> 3);
            let s1 = w2.rotate_right(17) ^ w2.rotate_right(19) ^ (w2 >> 10);
            w[i][l] = w[i - 16][l]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7][l])
                .wrapping_add(s1);
        }
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *states;
    for i in 0..64 {
        let mut t1 = [0u32; L];
        let mut t2 = [0u32; L];
        for l in 0..L {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..L {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..L {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }
    let rounds = [a, b, c, d, e, f, g, h];
    for (word, round) in states.iter_mut().zip(rounds) {
        for l in 0..L {
            word[l] = word[l].wrapping_add(round[l]);
        }
    }
}

/// Number of 64-byte blocks a `len`-byte message occupies after FIPS 180-4
/// padding (`0x80`, zeros, 8-byte bit length).
fn padded_blocks(len: usize) -> usize {
    (len + 9).div_ceil(64)
}

/// Materializes block `block` of the padded form of `msg` into `buf`.
fn fill_block(msg: &[u8], block: usize, buf: &mut [u8; 64]) {
    let n = msg.len();
    let start = block * 64;
    if start + 64 <= n {
        buf.copy_from_slice(&msg[start..start + 64]);
        return;
    }
    buf.fill(0);
    if start < n {
        let take = n - start;
        buf[..take].copy_from_slice(&msg[start..]);
        buf[take] = 0x80;
    } else if start == n {
        buf[0] = 0x80;
    }
    // start > n: the 0x80 terminator landed in an earlier block; zeros only.
    if block + 1 == padded_blocks(n) {
        let bits = (n as u64).wrapping_mul(8);
        buf[56..].copy_from_slice(&bits.to_be_bytes());
    }
}

/// Sentinel for an idle lane in the ragged scheduler.
const IDLE: usize = usize::MAX;

/// Hashes every message in `msgs` with `L` lanes in flight: lanes advance one
/// block per wide compression and are refilled with the next pending message
/// as soon as their current one finishes, so ragged length mixes stay close
/// to full occupancy. Digests land in `out[i]` for `msgs[i]`.
fn hash_ragged<const L: usize>(msgs: &[&[u8]], out: &mut [Hash256]) {
    let mut next = 0usize;
    let mut lane_msg = [IDLE; L];
    let mut lane_block = [0usize; L];
    let mut states = [[0u32; L]; 8];
    let mut blocks = [[0u8; 64]; L];
    let mut active = 0usize;
    loop {
        for l in 0..L {
            if lane_msg[l] == IDLE && next < msgs.len() {
                lane_msg[l] = next;
                lane_block[l] = 0;
                for (word, h0) in states.iter_mut().zip(H0) {
                    word[l] = h0;
                }
                next += 1;
                active += 1;
            }
        }
        if active == 0 {
            break;
        }
        for l in 0..L {
            if lane_msg[l] != IDLE {
                fill_block(msgs[lane_msg[l]], lane_block[l], &mut blocks[l]);
            }
        }
        compress_wide(&mut states, &blocks);
        for l in 0..L {
            let m = lane_msg[l];
            if m == IDLE {
                continue;
            }
            lane_block[l] += 1;
            if lane_block[l] == padded_blocks(msgs[m].len()) {
                let mut bytes = [0u8; 32];
                for (w, word) in states.iter().enumerate() {
                    bytes[4 * w..4 * w + 4].copy_from_slice(&word[l].to_be_bytes());
                }
                out[m] = Hash256::from_bytes(bytes);
                lane_msg[l] = IDLE;
                active -= 1;
            }
        }
    }
}

/// Batch SHA-256 over many independent messages using interleaved 4- or
/// 8-lane compression.
///
/// The scalar [`Sha256`] is bound by its serial dependency chain; hashing
/// `L` independent messages in lockstep exposes `L`-way instruction-level
/// parallelism (and auto-vectorizes), which speeds up exactly the workloads
/// the commit path is made of — transaction ids, Merkle levels, signature
/// cache keys. Every digest is **bit-identical** to [`sha256`].
///
/// # Examples
///
/// ```
/// use dcs_crypto::{sha256, MultiHasher};
///
/// let msgs: Vec<Vec<u8>> = (0u8..20).map(|i| vec![i; i as usize * 7]).collect();
/// let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
/// let digests = MultiHasher::wide().hash_many(&refs);
/// for (msg, d) in msgs.iter().zip(&digests) {
///     assert_eq!(*d, sha256(msg));
/// }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MultiHasher {
    lanes: usize,
}

impl Default for MultiHasher {
    fn default() -> Self {
        Self::wide()
    }
}

impl MultiHasher {
    /// A hasher using up to `lanes` interleaved lanes (clamped to `1..=8`;
    /// widths other than 4 and 8 fall back to the next narrower path).
    pub fn new(lanes: usize) -> Self {
        MultiHasher {
            lanes: lanes.clamp(1, 8),
        }
    }

    /// The widest supported hasher (8 lanes).
    pub fn wide() -> Self {
        Self::new(8)
    }

    /// The configured lane count.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Hashes every message, returning digests in input order.
    pub fn hash_many(&self, msgs: &[&[u8]]) -> Vec<Hash256> {
        let mut out = vec![Hash256::ZERO; msgs.len()];
        self.hash_many_into(msgs, &mut out);
        out
    }

    /// [`MultiHasher::hash_many`] into a caller-provided slice
    /// (`out.len() == msgs.len()`).
    pub fn hash_many_into(&self, msgs: &[&[u8]], out: &mut [Hash256]) {
        assert_eq!(msgs.len(), out.len(), "one output slot per message");
        if self.lanes >= 8 && msgs.len() >= 8 {
            hash_ragged::<8>(msgs, out);
        } else if self.lanes >= 4 && msgs.len() >= 4 {
            hash_ragged::<4>(msgs, out);
        } else {
            for (msg, slot) in msgs.iter().zip(out) {
                *slot = sha256(msg);
            }
        }
    }

    /// Hashes each adjacent `(left, right)` pair of `level` — which must have
    /// even length — as `sha256(prefix ‖ left ‖ right)`, appending the parent
    /// digests to `out` in order. This is the Merkle level step; the 65-byte
    /// messages all share one two-block shape, so the lanes stay fully
    /// occupied.
    pub fn hash_pairs_into(&self, prefix: u8, level: &[Hash256], out: &mut Vec<Hash256>) {
        debug_assert_eq!(level.len() % 2, 0, "levels are padded before hashing");
        let pairs = level.len() / 2;
        let base = out.len();
        out.resize(base + pairs, Hash256::ZERO);
        let mut msgs: Vec<[u8; 65]> = vec![[0u8; 65]; pairs];
        for (pair, msg) in level.chunks_exact(2).zip(msgs.iter_mut()) {
            msg[0] = prefix;
            msg[1..33].copy_from_slice(pair[0].as_ref());
            msg[33..65].copy_from_slice(pair[1].as_ref());
        }
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        self.hash_many_into(&refs, &mut out[base..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(h: Hash256) -> String {
        h.to_string()
    }

    #[test]
    fn nist_empty() {
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn nist_abc() {
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn nist_448_bits() {
        assert_eq!(
            hex(sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn nist_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(sha256(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn nist_million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(sha256(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_oneshot_at_all_split_points() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let expect = sha256(&data);
        for split in 0..data.len() {
            let mut ctx = Sha256::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn concat_matches_manual_concat() {
        let a = b"hello";
        let b = b"world";
        let mut joined = a.to_vec();
        joined.extend_from_slice(b);
        assert_eq!(sha256_concat(a, b), sha256(&joined));
    }

    #[test]
    fn boundary_lengths() {
        // Lengths around the 55/56/64 padding boundaries must round-trip the
        // streaming implementation identically to one-shot.
        for len in [54usize, 55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let mut ctx = Sha256::new();
            for b in &data {
                ctx.update(&[*b]);
            }
            assert_eq!(ctx.finalize(), sha256(&data), "len {len}");
        }
    }

    /// Deterministic pseudo-random message of length `len` (no RNG in tests).
    fn msg(len: usize, salt: u8) -> Vec<u8> {
        (0..len)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
            .collect()
    }

    #[test]
    fn multihasher_matches_scalar_for_uniform_lengths() {
        // Every padding-boundary length, at batch sizes straddling the lane
        // widths, in both 4- and 8-lane configurations.
        for len in [
            0usize, 1, 31, 54, 55, 56, 57, 63, 64, 65, 119, 120, 128, 200,
        ] {
            for count in [1usize, 3, 4, 5, 7, 8, 9, 16, 33] {
                let data: Vec<Vec<u8>> = (0..count).map(|i| msg(len, i as u8)).collect();
                let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
                for lanes in [1, 4, 8] {
                    let got = MultiHasher::new(lanes).hash_many(&refs);
                    for (m, d) in data.iter().zip(&got) {
                        assert_eq!(*d, sha256(m), "len={len} count={count} lanes={lanes}");
                    }
                }
            }
        }
    }

    #[test]
    fn multihasher_matches_scalar_for_ragged_lengths() {
        // Ragged mixes force mid-flight lane refills.
        let data: Vec<Vec<u8>> = (0..57usize).map(|i| msg((i * 37) % 301, i as u8)).collect();
        let refs: Vec<&[u8]> = data.iter().map(Vec::as_slice).collect();
        for lanes in [4, 8] {
            let got = MultiHasher::new(lanes).hash_many(&refs);
            for (i, (m, d)) in data.iter().zip(&got).enumerate() {
                assert_eq!(*d, sha256(m), "i={i} lanes={lanes}");
            }
        }
    }

    #[test]
    fn multihasher_pairs_match_pairwise_concat() {
        for pairs in [1usize, 2, 3, 4, 7, 8, 9, 50] {
            let level: Vec<Hash256> = (0..pairs * 2).map(|i| sha256(&msg(40, i as u8))).collect();
            let mut got = Vec::new();
            MultiHasher::wide().hash_pairs_into(0x01, &level, &mut got);
            assert_eq!(got.len(), pairs);
            for (pair, d) in level.chunks_exact(2).zip(&got) {
                let mut joined = vec![0x01u8];
                joined.extend_from_slice(pair[0].as_ref());
                joined.extend_from_slice(pair[1].as_ref());
                assert_eq!(*d, sha256(&joined), "pairs={pairs}");
            }
        }
    }

    #[test]
    fn multihasher_lane_count_clamps() {
        assert_eq!(MultiHasher::new(0).lanes(), 1);
        assert_eq!(MultiHasher::new(100).lanes(), 8);
        assert_eq!(MultiHasher::wide().lanes(), 8);
    }
}
