//! Parallel verification executor and cross-layer signature cache.
//!
//! Hash-based signature verification is the dominant cost of block
//! validation: each WOTS+Merkle check recomputes hundreds of SHA-256 chain
//! steps. The checks are pure functions of `(public key, message,
//! signature)`, so they parallelize perfectly and their results can be
//! memoized. This module provides both levers:
//!
//! * [`VerifyPool`] — a scoped worker pool (no persistent threads, no
//!   channels) mapping a pure function over a slice in deterministic input
//!   order. A pool with one thread runs the exact serial code path.
//! * [`SigCache`] — a bounded, sharded map from a binding digest of
//!   `(pubkey_root ‖ msg ‖ sig_index ‖ sig_digest)` to the verification
//!   verdict, with hit/miss counters. Because the key commits to the
//!   signature bytes themselves, a tampered signature can never hit a stale
//!   `true` entry.
//! * [`VerifyPipeline`] — the two combined: batch verification that consults
//!   the cache first, verifies only the misses on the pool, and backfills
//!   the cache. Higher layers (mempool admission, block prevalidation)
//!   share one pipeline so work done at admission is not repeated at block
//!   connect.
//!
//! Results are bit-identical regardless of thread count: the pool only ever
//! evaluates pure functions and reassembles outputs in input order.

use crate::codec::Encode;
use crate::hash::Hash256;
use crate::sha256::Sha256;
use crate::sig::{PublicKey, Signature};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A borrowed verification task: `(public key, message digest, signature)`.
pub type VerifyItem<'a> = (&'a PublicKey, &'a Hash256, &'a Signature);

// ---------------------------------------------------------------------------
// VerifyPool
// ---------------------------------------------------------------------------

/// A scoped worker pool for data-parallel pure computations.
///
/// The pool holds no threads between calls: each [`VerifyPool::map`] spawns
/// scoped workers over contiguous chunks and joins them before returning, so
/// borrowed inputs need no `'static` bound and a panic in a worker
/// propagates to the caller. With `threads == 1` the input is mapped on the
/// calling thread — the exact serial code path, byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyPool {
    threads: usize,
}

impl VerifyPool {
    /// Creates a pool with the given worker count. `0` selects the
    /// machine's available parallelism (falling back to 1 if unknown).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            threads
        };
        VerifyPool { threads }
    }

    /// A single-threaded pool: every operation runs on the calling thread.
    pub const fn serial() -> Self {
        VerifyPool { threads: 1 }
    }

    /// The number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, preserving input order in the output.
    ///
    /// With more than one thread and more than one item, the slice is split
    /// into per-worker contiguous chunks evaluated concurrently; otherwise
    /// the map runs inline. `f` must be pure for the parallel and serial
    /// paths to agree (all uses in this workspace are hash computations).
    pub fn map<T, O, F>(&self, items: &[T], f: F) -> Vec<O>
    where
        T: Sync,
        O: Send,
        F: Fn(&T) -> O + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(self.threads);
        let f = &f;
        let mut out = Vec::with_capacity(items.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<O>>()))
                .collect();
            for handle in handles {
                out.extend(handle.join().expect("verification worker panicked"));
            }
        });
        out
    }

    /// Verifies a batch of signatures, returning one verdict per item in
    /// input order. Semantically identical to calling
    /// [`PublicKey::verify`] in a loop.
    pub fn verify_batch(&self, items: &[(PublicKey, Hash256, Signature)]) -> Vec<bool> {
        self.map(items, |(pk, msg, sig)| pk.verify(msg, sig))
    }

    /// Borrowed-input variant of [`VerifyPool::verify_batch`].
    pub fn verify_batch_refs(&self, items: &[VerifyItem<'_>]) -> Vec<bool> {
        self.map(items, |(pk, msg, sig)| pk.verify(msg, sig))
    }
}

impl Default for VerifyPool {
    fn default() -> Self {
        VerifyPool::serial()
    }
}

// ---------------------------------------------------------------------------
// SigCache
// ---------------------------------------------------------------------------

/// Domain prefix for cache keys, distinct from every other hash domain in
/// the workspace (Merkle interior nodes use `0x01`).
const CACHE_KEY_PREFIX: u8 = 0x5A;

/// Number of independently locked shards. A power of two so shard selection
/// is a mask on the (uniform) key digest.
const SHARD_COUNT: usize = 16;

/// One shard: verdicts plus FIFO insertion order for eviction.
#[derive(Default)]
struct Shard {
    verdicts: HashMap<Hash256, bool>,
    order: VecDeque<Hash256>,
}

/// A bounded, sharded signature-verification cache.
///
/// Keys bind the public key root, the message digest, the one-time key
/// index, and a digest of the full encoded signature, so two distinct
/// signatures — even for the same key and message — can never collide on an
/// entry. Lookups and insertions take one shard lock; counters are lock-free
/// atomics. Eviction is FIFO per shard once a shard reaches
/// `capacity / SHARD_COUNT` entries.
pub struct SigCache {
    shards: Vec<Mutex<Shard>>,
    shard_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl SigCache {
    /// Creates a cache bounded to roughly `capacity` entries (rounded up to
    /// a multiple of the shard count; minimum one entry per shard).
    pub fn new(capacity: usize) -> Self {
        SigCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            shard_capacity: capacity.div_ceil(SHARD_COUNT).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The binding digest for one verification task:
    /// `sha256(0x5A ‖ pubkey_root ‖ msg ‖ sig_index ‖ sha256(sig_bytes))`.
    pub fn key(pk: &PublicKey, msg: &Hash256, sig: &Signature) -> Hash256 {
        let sig_digest = crate::sha256(&sig.encoded());
        let mut ctx = Sha256::new();
        ctx.update(&[CACHE_KEY_PREFIX]);
        ctx.update(pk.root().as_ref());
        ctx.update(msg.as_ref());
        ctx.update(&sig.index().to_le_bytes());
        ctx.update(sig_digest.as_ref());
        ctx.finalize()
    }

    fn shard(&self, key: &Hash256) -> &Mutex<Shard> {
        &self.shards[key.as_ref()[0] as usize % SHARD_COUNT]
    }

    /// Looks up a cached verdict, counting a hit or a miss.
    pub fn get(&self, key: &Hash256) -> Option<bool> {
        let verdict = self.shard(key).lock().verdicts.get(key).copied();
        match verdict {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        verdict
    }

    /// Records a verdict, evicting the oldest entry in the shard if full.
    pub fn insert(&self, key: Hash256, valid: bool) {
        let mut shard = self.shard(&key).lock();
        if shard.verdicts.insert(key, valid).is_none() {
            shard.order.push_back(key);
            self.insertions.fetch_add(1, Ordering::Relaxed);
            while shard.order.len() > self.shard_capacity {
                let oldest = shard.order.pop_front().expect("order tracks entries");
                shard.verdicts.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Current number of cached verdicts across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().verdicts.len()).sum()
    }

    /// Whether the cache holds no verdicts.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of entries the cache will hold.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * SHARD_COUNT
    }

    /// A snapshot of the counters and occupancy.
    pub fn stats(&self) -> SigCacheStats {
        SigCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            capacity: self.capacity() as u64,
        }
    }
}

impl std::fmt::Debug for SigCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SigCache")
            .field("stats", &self.stats())
            .finish()
    }
}

/// Counter snapshot for a [`SigCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a real verification.
    pub misses: u64,
    /// Verdicts stored (re-insertions of a present key do not count).
    pub insertions: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Verdicts currently held.
    pub entries: u64,
    /// Maximum verdicts held.
    pub capacity: u64,
}

impl SigCacheStats {
    /// Fraction of lookups answered from the cache, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for SigCacheStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_rate={:.1}% entries={}/{} evictions={}",
            self.hits,
            self.misses,
            self.hit_rate() * 100.0,
            self.entries,
            self.capacity,
            self.evictions,
        )
    }
}

// ---------------------------------------------------------------------------
// VerifyPipeline
// ---------------------------------------------------------------------------

/// A [`VerifyPool`] plus an optional shared [`SigCache`]: the full
/// verification pipeline handed across layers.
///
/// Batch verification consults the cache first, verifies only the misses in
/// parallel, and backfills the cache, so a transaction verified at mempool
/// admission costs one cache lookup at block connect. Cloning is cheap and
/// shares the cache and counters.
#[derive(Debug, Clone, Default)]
pub struct VerifyPipeline {
    pool: VerifyPool,
    cache: Option<Arc<SigCache>>,
    batches: Arc<AtomicU64>,
    batch_items: Arc<AtomicU64>,
}

impl VerifyPipeline {
    /// A pipeline with `threads` workers and a cache bounded to
    /// `cache_capacity` verdicts. A capacity of `0` disables the cache.
    pub fn new(threads: usize, cache_capacity: usize) -> Self {
        let cache = if cache_capacity == 0 {
            None
        } else {
            Some(Arc::new(SigCache::new(cache_capacity)))
        };
        VerifyPipeline {
            pool: VerifyPool::new(threads),
            cache,
            batches: Arc::new(AtomicU64::new(0)),
            batch_items: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A single-threaded, cache-less pipeline — behaviour and cost identical
    /// to looping over [`PublicKey::verify`].
    pub fn serial() -> Self {
        VerifyPipeline::default()
    }

    /// A pipeline sharing an externally owned cache.
    pub fn with_cache(threads: usize, cache: Arc<SigCache>) -> Self {
        VerifyPipeline {
            pool: VerifyPool::new(threads),
            cache: Some(cache),
            batches: Arc::new(AtomicU64::new(0)),
            batch_items: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The worker pool.
    pub fn pool(&self) -> &VerifyPool {
        &self.pool
    }

    /// The shared signature cache, if one is configured.
    pub fn cache(&self) -> Option<&Arc<SigCache>> {
        self.cache.as_ref()
    }

    /// Verifies one signature through the cache (warming it on a miss).
    pub fn verify_one(&self, pk: &PublicKey, msg: &Hash256, sig: &Signature) -> bool {
        match &self.cache {
            None => pk.verify(msg, sig),
            Some(cache) => {
                let key = SigCache::key(pk, msg, sig);
                if let Some(verdict) = cache.get(&key) {
                    return verdict;
                }
                let verdict = pk.verify(msg, sig);
                cache.insert(key, verdict);
                verdict
            }
        }
    }

    /// Verifies a batch through cache + pool, returning verdicts in input
    /// order. Identical output to the serial loop for any thread count.
    pub fn verify_batch_refs(&self, items: &[VerifyItem<'_>]) -> Vec<bool> {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_items
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        let Some(cache) = &self.cache else {
            return self.pool.verify_batch_refs(items);
        };
        let keys: Vec<Hash256> = items
            .iter()
            .map(|(pk, msg, sig)| SigCache::key(pk, msg, sig))
            .collect();
        let mut verdicts: Vec<Option<bool>> = keys.iter().map(|k| cache.get(k)).collect();
        let pending: Vec<usize> = (0..items.len())
            .filter(|&i| verdicts[i].is_none())
            .collect();
        let fresh = self.pool.map(&pending, |&i| {
            let (pk, msg, sig) = items[i];
            pk.verify(msg, sig)
        });
        for (&i, verdict) in pending.iter().zip(fresh) {
            cache.insert(keys[i], verdict);
            verdicts[i] = Some(verdict);
        }
        verdicts
            .into_iter()
            .map(|v| v.expect("every index resolved"))
            .collect()
    }

    /// Owned-input variant of [`VerifyPipeline::verify_batch_refs`].
    pub fn verify_batch(&self, items: &[(PublicKey, Hash256, Signature)]) -> Vec<bool> {
        let refs: Vec<VerifyItem<'_>> = items.iter().map(|(pk, msg, sig)| (pk, msg, sig)).collect();
        self.verify_batch_refs(&refs)
    }

    /// A snapshot of pipeline activity and cache counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            threads: self.pool.threads(),
            batches: self.batches.load(Ordering::Relaxed),
            batch_items: self.batch_items.load(Ordering::Relaxed),
            cache: self.cache.as_ref().map(|c| c.stats()),
        }
    }
}

/// Activity snapshot for a [`VerifyPipeline`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PipelineStats {
    /// Worker threads in the pool.
    pub threads: usize,
    /// Batches submitted through the pipeline.
    pub batches: u64,
    /// Total items across all batches.
    pub batch_items: u64,
    /// Cache counters, when a cache is configured.
    pub cache: Option<SigCacheStats>,
}

impl std::fmt::Display for PipelineStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "threads={} batches={} items={}",
            self.threads, self.batches, self.batch_items
        )?;
        if let Some(cache) = &self.cache {
            write!(f, " cache[{cache}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;
    use crate::sig::KeyPair;

    fn seed(tag: u8) -> [u8; 32] {
        let mut s = [0u8; 32];
        s[0] = tag;
        s
    }

    /// `n` verification tasks; every third signature is forged by signing a
    /// different message.
    fn tasks(n: usize) -> Vec<(PublicKey, Hash256, Signature)> {
        let mut kp = KeyPair::generate(seed(7), 4);
        let pk = kp.public_key();
        (0..n)
            .map(|i| {
                let msg = sha256(&[i as u8, 0xAB]);
                let signed = if i % 3 == 2 {
                    sha256(b"some other message")
                } else {
                    msg
                };
                let sig = kp.sign(&signed).expect("capacity 16");
                (pk, msg, sig)
            })
            .collect()
    }

    #[test]
    fn pool_map_preserves_order_any_thread_count() {
        let items: Vec<u32> = (0..103).collect();
        let serial: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = VerifyPool::new(threads);
            assert_eq!(
                pool.map(&items, |&x| u64::from(x) * 3 + 1),
                serial,
                "threads={threads}"
            );
        }
    }

    #[test]
    fn verify_batch_matches_serial_loop() {
        let tasks = tasks(9);
        let expected: Vec<bool> = tasks
            .iter()
            .map(|(pk, msg, sig)| pk.verify(msg, sig))
            .collect();
        assert!(expected.contains(&true) && expected.contains(&false));
        for threads in [1, 2, 8] {
            assert_eq!(VerifyPool::new(threads).verify_batch(&tasks), expected);
        }
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        assert!(VerifyPool::new(0).threads() >= 1);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let cache = SigCache::new(64);
        let tasks = tasks(3);
        let keys: Vec<Hash256> = tasks
            .iter()
            .map(|(pk, m, s)| SigCache::key(pk, m, s))
            .collect();
        for k in &keys {
            assert_eq!(cache.get(k), None);
        }
        cache.insert(keys[0], true);
        cache.insert(keys[1], false);
        assert_eq!(cache.get(&keys[0]), Some(true));
        assert_eq!(cache.get(&keys[1]), Some(false));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (2, 3, 2));
    }

    #[test]
    fn cache_hit_never_masks_a_forgery() {
        // Warm the cache with a *valid* (key, msg, sig) verdict, then tamper
        // with the signature: the tampered signature must MISS the cache (its
        // key commits to the signature bytes) and verify to false.
        let pipeline = VerifyPipeline::new(1, 1024);
        let mut kp = KeyPair::generate(seed(3), 2);
        let pk = kp.public_key();
        let msg = sha256(b"pay 5 to mallory");
        let sig = kp.sign(&msg).expect("fresh key");
        assert!(pipeline.verify_one(&pk, &msg, &sig));

        // Same key, same message, different (forged) signature bytes: a
        // signature produced for a different message replayed against `msg`.
        let forged = kp.sign(&sha256(b"pay 5 to alice")).expect("capacity 4");
        assert_ne!(
            SigCache::key(&pk, &msg, &sig),
            SigCache::key(&pk, &msg, &forged)
        );
        let before = pipeline.cache().expect("cache configured").stats();
        assert!(!pipeline.verify_one(&pk, &msg, &forged));
        let after = pipeline.cache().expect("cache configured").stats();
        assert_eq!(
            after.hits, before.hits,
            "forged signature must not hit the cache"
        );
        assert_eq!(after.misses, before.misses + 1);

        // And the genuine signature still hits with its cached true verdict.
        assert!(pipeline.verify_one(&pk, &msg, &sig));
        assert_eq!(
            pipeline.cache().expect("cache configured").stats().hits,
            after.hits + 1
        );
    }

    #[test]
    fn cache_is_bounded_and_evicts_fifo() {
        let cache = SigCache::new(16); // 1 entry per shard
        assert_eq!(cache.capacity(), 16);
        for i in 0..200u32 {
            let mut ctx = Sha256::new();
            ctx.update(&i.to_le_bytes());
            cache.insert(ctx.finalize(), true);
        }
        assert!(cache.len() <= 16, "len {} over capacity", cache.len());
        assert!(cache.stats().evictions > 0);
    }

    #[test]
    fn pipeline_batch_matches_serial_and_caches() {
        let tasks = tasks(12);
        let expected: Vec<bool> = tasks
            .iter()
            .map(|(pk, msg, sig)| pk.verify(msg, sig))
            .collect();
        for threads in [1, 2, 8] {
            let pipeline = VerifyPipeline::new(threads, 4096);
            assert_eq!(
                pipeline.verify_batch(&tasks),
                expected,
                "cold, threads={threads}"
            );
            assert_eq!(
                pipeline.verify_batch(&tasks),
                expected,
                "warm, threads={threads}"
            );
            let stats = pipeline.stats();
            let cache = stats.cache.expect("cache configured");
            assert_eq!(cache.hits, tasks.len() as u64, "second pass all hits");
            assert_eq!(cache.misses, tasks.len() as u64, "first pass all misses");
            assert_eq!(stats.batches, 2);
            assert_eq!(stats.batch_items, 2 * tasks.len() as u64);
        }
    }

    #[test]
    fn pipeline_without_cache_still_verifies() {
        let tasks = tasks(6);
        let expected: Vec<bool> = tasks
            .iter()
            .map(|(pk, msg, sig)| pk.verify(msg, sig))
            .collect();
        let pipeline = VerifyPipeline::new(2, 0);
        assert!(pipeline.cache().is_none());
        assert_eq!(pipeline.verify_batch(&tasks), expected);
    }

    #[test]
    fn stats_display_is_readable() {
        let pipeline = VerifyPipeline::new(2, 32);
        let tasks = tasks(3);
        pipeline.verify_batch(&tasks);
        let text = pipeline.stats().to_string();
        assert!(text.contains("threads=2"), "{text}");
        assert!(text.contains("cache["), "{text}");
    }
}
