//! Merkle trees and inclusion proofs.
//!
//! Block bodies commit to their transactions through a Merkle root (paper
//! §2.2, Fig. 2), enabling the Simple Payment Verification protocol for
//! lightweight clients: a client holding only block headers can verify that a
//! transaction is included given an `O(log n)` [`MerkleProof`].
//!
//! Interior nodes are domain-separated from leaves (prefix byte `0x01`) so a
//! leaf value can never be reinterpreted as an interior node (second-preimage
//! hardening). Odd levels duplicate the last node, as in Bitcoin.

use crate::batch::VerifyPool;
use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::hash::Hash256;
use crate::sha256::{MultiHasher, Sha256};
use serde::{Deserialize, Serialize};

const NODE_PREFIX: u8 = 0x01;

/// Minimum number of parent nodes in a level before hashing it is worth
/// fanning out to the pool; below this the spawn/join overhead dominates.
const PARALLEL_PAIR_THRESHOLD: usize = 128;

/// Hashes two child digests into their parent node.
pub fn merkle_node(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(&[NODE_PREFIX]);
    ctx.update(left.as_ref());
    ctx.update(right.as_ref());
    ctx.finalize()
}

/// Pads an odd level by duplicating its last node (Bitcoin style).
fn pad_level(level: &mut Vec<Hash256>) {
    if level.len() % 2 == 1 {
        level.push(*level.last().expect("non-empty level"));
    }
}

/// Hashes one (already padded) level into its parents, fanning the pairs out
/// to `pool` when the level is large enough to amortize the spawn cost.
/// Both paths go through the multi-lane hasher — each worker of the pooled
/// path lanes its own chunk — and every parent digest is bit-identical to a
/// serial `merkle_node` fold for any thread or lane count.
fn hash_level(level: &[Hash256], pool: &VerifyPool) -> Vec<Hash256> {
    debug_assert_eq!(level.len() % 2, 0, "levels are padded before hashing");
    if pool.threads() > 1 && level.len() / 2 >= PARALLEL_PAIR_THRESHOLD {
        let pairs: Vec<&[Hash256]> = level.chunks_exact(2).collect();
        pool.map(&pairs, |pair| merkle_node(&pair[0], &pair[1]))
    } else {
        let mut out = Vec::new();
        MultiHasher::wide().hash_pairs_into(NODE_PREFIX, level, &mut out);
        out
    }
}

/// Computes just the root of a list of leaf digests without materializing the
/// tree. The root of an empty list is [`Hash256::ZERO`].
pub fn merkle_root(leaves: &[Hash256]) -> Hash256 {
    merkle_root_with(leaves, &VerifyPool::serial())
}

/// [`merkle_root`] with level hashing fanned out to `pool` for large levels.
/// Bit-identical to the serial result for any thread count.
pub fn merkle_root_with(leaves: &[Hash256], pool: &VerifyPool) -> Hash256 {
    if leaves.is_empty() {
        return Hash256::ZERO;
    }
    let mut level: Vec<Hash256> = leaves.to_vec();
    while level.len() > 1 {
        pad_level(&mut level);
        level = hash_level(&level, pool);
    }
    level[0]
}

/// A fully materialized Merkle tree supporting proof generation.
///
/// # Examples
///
/// ```
/// use dcs_crypto::{sha256, MerkleTree};
///
/// let leaves: Vec<_> = (0u8..5).map(|i| sha256(&[i])).collect();
/// let tree = MerkleTree::from_leaves(leaves.clone());
/// for (i, leaf) in leaves.iter().enumerate() {
///     let proof = tree.prove(i).unwrap();
///     assert!(proof.verify(leaf, &tree.root()));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MerkleTree {
    // levels[0] is the (padded) leaf level; the last level is the root.
    levels: Vec<Vec<Hash256>>,
    leaf_count: usize,
}

impl MerkleTree {
    /// Builds a tree over the given leaf digests.
    pub fn from_leaves(leaves: Vec<Hash256>) -> Self {
        Self::from_leaves_with(leaves, &VerifyPool::serial())
    }

    /// [`MerkleTree::from_leaves`] with level hashing fanned out to `pool`
    /// for large levels. The resulting tree (every level, root, and proof)
    /// is bit-identical to the serial build for any thread count.
    pub fn from_leaves_with(leaves: Vec<Hash256>, pool: &VerifyPool) -> Self {
        let leaf_count = leaves.len();
        if leaves.is_empty() {
            return MerkleTree {
                levels: vec![vec![Hash256::ZERO]],
                leaf_count,
            };
        }
        let mut levels = vec![leaves];
        while levels.last().expect("at least one level").len() > 1 {
            let prev = levels.last_mut().expect("at least one level");
            pad_level(prev);
            let next = hash_level(prev, pool);
            levels.push(next);
        }
        MerkleTree { levels, leaf_count }
    }

    /// The root digest committing to all leaves.
    pub fn root(&self) -> Hash256 {
        self.levels.last().expect("at least one level")[0]
    }

    /// The number of leaves the tree was built over (before padding).
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None` if the
    /// index is out of range.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count {
            return None;
        }
        let mut siblings = Vec::new();
        let mut i = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = if i.is_multiple_of(2) {
                // Padded levels always have the right sibling present.
                level.get(i + 1).copied().unwrap_or(level[i])
            } else {
                level[i - 1]
            };
            siblings.push(sibling);
            i /= 2;
        }
        Some(MerkleProof {
            index: index as u64,
            siblings,
        })
    }
}

/// An `O(log n)` proof that a leaf is included under a Merkle root.
///
/// This is the object a light client downloads instead of a full block
/// (paper §2.2: "fast lookups of transaction inclusion for lightweight
/// clients").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    index: u64,
    siblings: Vec<Hash256>,
}

impl MerkleProof {
    /// The leaf position this proof speaks for.
    pub fn index(&self) -> u64 {
        self.index
    }

    /// The sibling digests from leaf level to just below the root.
    pub fn siblings(&self) -> &[Hash256] {
        &self.siblings
    }

    /// Size of the proof in bytes when encoded (used by experiment E10 to
    /// compare SPV download cost against full blocks).
    pub fn encoded_len(&self) -> usize {
        self.encoded().len()
    }

    /// Checks that `leaf` hashes up to `root` along this proof's path.
    pub fn verify(&self, leaf: &Hash256, root: &Hash256) -> bool {
        let mut acc = *leaf;
        let mut i = self.index;
        for sibling in &self.siblings {
            acc = if i.is_multiple_of(2) {
                merkle_node(&acc, sibling)
            } else {
                merkle_node(sibling, &acc)
            };
            i /= 2;
        }
        acc == *root
    }
}

impl Encode for MerkleProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.siblings.encode(out);
    }
}

impl Decode for MerkleProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MerkleProof {
            index: u64::decode(r)?,
            siblings: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n).map(|i| sha256(&(i as u64).to_be_bytes())).collect()
    }

    #[test]
    fn empty_tree_has_zero_root() {
        assert_eq!(merkle_root(&[]), Hash256::ZERO);
        let t = MerkleTree::from_leaves(vec![]);
        assert_eq!(t.root(), Hash256::ZERO);
        assert!(t.prove(0).is_none());
    }

    #[test]
    fn single_leaf_root_is_leaf() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), l[0]);
    }

    #[test]
    fn tree_root_matches_streaming_root() {
        for n in 1..=33 {
            let l = leaves(n);
            assert_eq!(
                MerkleTree::from_leaves(l.clone()).root(),
                merkle_root(&l),
                "n={n}"
            );
        }
    }

    #[test]
    fn proofs_verify_for_all_indices_and_sizes() {
        for n in 1..=17 {
            let l = leaves(n);
            let t = MerkleTree::from_leaves(l.clone());
            for (i, leaf) in l.iter().enumerate() {
                let p = t.prove(i).expect("index in range");
                assert!(p.verify(leaf, &t.root()), "n={n} i={i}");
            }
            assert!(t.prove(n).is_none());
        }
    }

    #[test]
    fn proof_rejects_wrong_leaf_and_wrong_root() {
        let l = leaves(8);
        let t = MerkleTree::from_leaves(l.clone());
        let p = t.prove(3).unwrap();
        assert!(!p.verify(&l[4], &t.root()));
        assert!(!p.verify(&l[3], &sha256(b"not the root")));
    }

    #[test]
    fn proof_rejects_tampered_sibling() {
        let l = leaves(8);
        let t = MerkleTree::from_leaves(l.clone());
        let mut p = t.prove(2).unwrap();
        p.siblings[1] = sha256(b"tampered");
        assert!(!p.verify(&l[2], &t.root()));
    }

    #[test]
    fn domain_separation_differs_from_plain_concat() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(
            merkle_node(&a, &b),
            crate::sha256_concat(a.as_ref(), b.as_ref())
        );
    }

    #[test]
    fn order_matters() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_ne!(merkle_node(&a, &b), merkle_node(&b, &a));
    }

    #[test]
    fn parallel_build_is_bit_identical_to_serial() {
        // Sizes straddling PARALLEL_PAIR_THRESHOLD, including odd counts.
        for n in [1usize, 2, 7, 255, 256, 257, 300, 513, 1000] {
            let l = leaves(n);
            let serial = MerkleTree::from_leaves(l.clone());
            for threads in [2, 4, 8] {
                let pool = VerifyPool::new(threads);
                assert_eq!(
                    merkle_root_with(&l, &pool),
                    serial.root(),
                    "n={n} t={threads}"
                );
                let par = MerkleTree::from_leaves_with(l.clone(), &pool);
                assert_eq!(par.root(), serial.root(), "n={n} t={threads}");
                assert_eq!(par.leaf_count(), serial.leaf_count());
                // Proofs from the parallel tree verify against the serial root.
                for i in [0, n / 2, n - 1] {
                    let p = par.prove(i).expect("index in range");
                    assert!(p.verify(&l[i], &serial.root()), "n={n} t={threads} i={i}");
                }
            }
        }
    }

    #[test]
    fn proof_codec_round_trip() {
        let l = leaves(10);
        let t = MerkleTree::from_leaves(l);
        let p = t.prove(7).unwrap();
        let decoded = crate::codec::decode_all::<MerkleProof>(&p.encoded()).unwrap();
        assert_eq!(decoded, p);
    }
}
