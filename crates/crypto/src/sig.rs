//! Hash-based digital signatures: Winternitz one-time signatures (WOTS)
//! composed into many-time keys with a Merkle tree (an XMSS-style scheme).
//!
//! The platform needs real signatures so transaction authenticity is
//! cryptographically enforced, but the approved dependency set has no
//! elliptic-curve crate — so we build signatures from the one primitive we
//! already trust: SHA-256. WOTS+Merkle is the classical construction
//! (Merkle 1979) and is secure assuming SHA-256 is one-way.
//!
//! A [`KeyPair`] generated with height `h` can produce `2^h` signatures; each
//! [`Signature`] carries the one-time key index, the WOTS chain values, and
//! the Merkle authentication path back to the [`PublicKey`] root.
//!
//! # Examples
//!
//! ```
//! use dcs_crypto::{sha256, KeyPair};
//!
//! let mut kp = KeyPair::generate([7u8; 32], 2); // 4 one-time keys
//! let msg = sha256(b"pay bob 10");
//! let sig = kp.sign(&msg).unwrap();
//! assert!(kp.public_key().verify(&msg, &sig));
//! ```

use crate::codec::{Decode, DecodeError, Encode, Reader};
use crate::hash::{Address, Hash256};
use crate::sha256::Sha256;
use crate::CryptoError;
use serde::{Deserialize, Serialize};

/// Winternitz parameter: digits are 4 bits, chains have length 16.
const W_BITS: u32 = 4;
const W: u32 = 1 << W_BITS;
/// 256-bit digests yield 64 message digits.
const LEN1: usize = 64;
/// Checksum max is 64 * 15 = 960 < 16^3, so 3 checksum digits.
const LEN2: usize = 3;
/// Total chains per one-time key.
const LEN: usize = LEN1 + LEN2;

fn prf(seed: &[u8; 32], tag: &[u8], a: u32, b: u32) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(seed);
    ctx.update(tag);
    ctx.update(&a.to_le_bytes());
    ctx.update(&b.to_le_bytes());
    ctx.finalize()
}

/// Applies the WOTS chain function `steps` times.
fn chain(mut x: Hash256, steps: u32) -> Hash256 {
    for _ in 0..steps {
        let mut ctx = Sha256::new();
        ctx.update(&[0x03]); // domain separation from merkle/leaf hashing
        ctx.update(x.as_ref());
        x = ctx.finalize();
    }
    x
}

/// Splits a digest into the 67 base-16 digits (64 message + 3 checksum).
fn digits(msg: &Hash256) -> [u8; LEN] {
    let mut out = [0u8; LEN];
    for (i, byte) in msg.as_bytes().iter().enumerate() {
        out[2 * i] = byte >> 4;
        out[2 * i + 1] = byte & 0x0f;
    }
    let checksum: u32 = out[..LEN1].iter().map(|&d| W - 1 - u32::from(d)).sum();
    out[LEN1] = ((checksum >> 8) & 0x0f) as u8;
    out[LEN1 + 1] = ((checksum >> 4) & 0x0f) as u8;
    out[LEN1 + 2] = (checksum & 0x0f) as u8;
    out
}

/// Hashes a full WOTS public key (67 chain ends) into one leaf digest.
fn compress_ots_pk(ends: &[Hash256; LEN]) -> Hash256 {
    let mut ctx = Sha256::new();
    ctx.update(&[0x04]);
    for e in ends.iter() {
        ctx.update(e.as_ref());
    }
    ctx.finalize()
}

/// The verifying half of a [`KeyPair`]: the Merkle root over all one-time
/// public keys, plus the tree height.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    root: Hash256,
    height: u8,
}

impl PublicKey {
    /// The Merkle root committing to every one-time key.
    pub fn root(&self) -> Hash256 {
        self.root
    }

    /// The ledger address derived from this key.
    pub fn address(&self) -> Address {
        Address::from_hash(&self.root)
    }

    /// Verifies `sig` over the message digest `msg`.
    ///
    /// Returns `false` for any forgery: wrong message, reused-but-altered
    /// index, tampered chain values, or a bad authentication path.
    pub fn verify(&self, msg: &Hash256, sig: &Signature) -> bool {
        if sig.auth_path.len() != self.height as usize {
            return false;
        }
        if u64::from(sig.index) >= (1u64 << self.height) {
            return false;
        }
        let d = digits(msg);
        let mut ends = [Hash256::ZERO; LEN];
        for i in 0..LEN {
            ends[i] = chain(sig.chain_values[i], W - 1 - u32::from(d[i]));
        }
        let mut acc = compress_ots_pk(&ends);
        let mut idx = sig.index;
        for sibling in &sig.auth_path {
            acc = if idx.is_multiple_of(2) {
                crate::merkle::merkle_node(&acc, sibling)
            } else {
                crate::merkle::merkle_node(sibling, &acc)
            };
            idx /= 2;
        }
        acc == self.root
    }
}

/// A many-time signing key: a seed expanding to `2^height` WOTS keys under a
/// Merkle root. Signing is stateful — each call consumes the next one-time
/// key.
#[derive(Debug, Clone)]
pub struct KeyPair {
    seed: [u8; 32],
    height: u8,
    next_index: u32,
    leaves: Vec<Hash256>,
    tree: crate::merkle::MerkleTree,
}

impl KeyPair {
    /// Generates a key pair from a seed. `height` ≤ 16; capacity is
    /// `2^height` signatures.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (the key would take minutes to generate).
    pub fn generate(seed: [u8; 32], height: u8) -> Self {
        assert!(height <= 16, "key height {height} too large (max 16)");
        let n = 1u32 << height;
        let leaves: Vec<Hash256> = (0..n).map(|j| Self::ots_leaf(&seed, j)).collect();
        let tree = crate::merkle::MerkleTree::from_leaves(leaves.clone());
        KeyPair {
            seed,
            height,
            next_index: 0,
            leaves,
            tree,
        }
    }

    fn ots_leaf(seed: &[u8; 32], ots_index: u32) -> Hash256 {
        let mut ends = [Hash256::ZERO; LEN];
        for (i, end) in ends.iter_mut().enumerate() {
            let sk = prf(seed, b"wots", ots_index, i as u32);
            *end = chain(sk, W - 1);
        }
        compress_ots_pk(&ends)
    }

    /// The verifying key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey {
            root: self.tree.root(),
            height: self.height,
        }
    }

    /// The ledger address of this key.
    pub fn address(&self) -> Address {
        self.public_key().address()
    }

    /// Total one-time keys this pair was generated with.
    pub fn capacity(&self) -> u32 {
        1u32 << self.height
    }

    /// One-time keys not yet consumed by [`KeyPair::sign`].
    pub fn remaining(&self) -> u32 {
        self.capacity() - self.next_index
    }

    /// Signs the message digest `msg` with the next unused one-time key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] once all `2^height` one-time
    /// keys have been used; reusing a WOTS key leaks the secret.
    pub fn sign(&mut self, msg: &Hash256) -> Result<Signature, CryptoError> {
        let index = self.next_index;
        let sig = self.sign_with_index(msg, index)?;
        self.next_index += 1;
        Ok(sig)
    }

    /// Signs with an explicit one-time key index, without advancing the
    /// internal counter. Callers must never sign two distinct messages with
    /// the same index.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::KeyExhausted`] if `index` is out of range.
    pub fn sign_with_index(&self, msg: &Hash256, index: u32) -> Result<Signature, CryptoError> {
        if index >= self.capacity() {
            return Err(CryptoError::KeyExhausted {
                index,
                capacity: self.capacity(),
            });
        }
        let d = digits(msg);
        let mut chain_values = Vec::with_capacity(LEN);
        for (i, &di) in d.iter().enumerate() {
            let sk = prf(&self.seed, b"wots", index, i as u32);
            chain_values.push(chain(sk, u32::from(di)));
        }
        let proof = self
            .tree
            .prove(index as usize)
            .expect("index < capacity implies a valid leaf");
        debug_assert_eq!(
            self.leaves[index as usize],
            Self::ots_leaf(&self.seed, index)
        );
        Ok(Signature {
            index,
            chain_values,
            auth_path: proof.siblings().to_vec(),
        })
    }
}

/// A WOTS+Merkle signature: one-time key index, 67 chain values, and the
/// authentication path to the public root. Roughly 2.2 KiB encoded.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    index: u32,
    chain_values: Vec<Hash256>,
    auth_path: Vec<Hash256>,
}

impl Signature {
    /// The one-time key index used.
    pub fn index(&self) -> u32 {
        self.index
    }

    /// Encoded size in bytes; used in size/throughput experiments.
    pub fn encoded_len(&self) -> usize {
        self.encoded().len()
    }
}

impl Encode for Signature {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.chain_values.encode(out);
        self.auth_path.encode(out);
    }
}

impl Decode for Signature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Signature {
            index: u32::decode(r)?,
            chain_values: Vec::decode(r)?,
            auth_path: Vec::decode(r)?,
        })
    }
}

impl Encode for PublicKey {
    fn encode(&self, out: &mut Vec<u8>) {
        self.root.encode(out);
        self.height.encode(out);
    }
}

impl Decode for PublicKey {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(PublicKey {
            root: Hash256::decode(r)?,
            height: u8::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    fn keypair() -> KeyPair {
        KeyPair::generate([1u8; 32], 2)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut kp = keypair();
        let msg = sha256(b"message");
        let sig = kp.sign(&msg).unwrap();
        assert!(kp.public_key().verify(&msg, &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut kp = keypair();
        let sig = kp.sign(&sha256(b"m1")).unwrap();
        assert!(!kp.public_key().verify(&sha256(b"m2"), &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut kp1 = keypair();
        let kp2 = KeyPair::generate([2u8; 32], 2);
        let msg = sha256(b"m");
        let sig = kp1.sign(&msg).unwrap();
        assert!(!kp2.public_key().verify(&msg, &sig));
    }

    #[test]
    fn all_one_time_keys_usable_then_exhausted() {
        let mut kp = keypair();
        let msg = sha256(b"m");
        for i in 0..kp.capacity() {
            let sig = kp.sign(&msg).unwrap();
            assert_eq!(sig.index(), i);
            assert!(kp.public_key().verify(&msg, &sig));
        }
        assert!(matches!(
            kp.sign(&msg),
            Err(CryptoError::KeyExhausted {
                index: 4,
                capacity: 4
            })
        ));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut kp = keypair();
        let msg = sha256(b"m");
        let good = kp.sign(&msg).unwrap();

        let mut bad = good.clone();
        bad.index = (bad.index + 1) % kp.capacity();
        assert!(!kp.public_key().verify(&msg, &bad));

        let mut bad = good.clone();
        bad.chain_values[0] = sha256(b"tamper");
        assert!(!kp.public_key().verify(&msg, &bad));

        let mut bad = good.clone();
        bad.auth_path[0] = sha256(b"tamper");
        assert!(!kp.public_key().verify(&msg, &bad));

        let mut bad = good;
        bad.auth_path.pop();
        assert!(!kp.public_key().verify(&msg, &bad));
    }

    #[test]
    fn out_of_range_index_rejected_by_verify() {
        let mut kp = keypair();
        let msg = sha256(b"m");
        let mut sig = kp.sign(&msg).unwrap();
        sig.index = 1000;
        assert!(!kp.public_key().verify(&msg, &sig));
    }

    #[test]
    fn signature_codec_round_trip() {
        let mut kp = keypair();
        let msg = sha256(b"m");
        let sig = kp.sign(&msg).unwrap();
        let decoded = crate::codec::decode_all::<Signature>(&sig.encoded()).unwrap();
        assert_eq!(decoded, sig);
        assert!(kp.public_key().verify(&msg, &decoded));
    }

    #[test]
    fn deterministic_generation() {
        let a = KeyPair::generate([9u8; 32], 3);
        let b = KeyPair::generate([9u8; 32], 3);
        assert_eq!(a.public_key(), b.public_key());
        let c = KeyPair::generate([10u8; 32], 3);
        assert_ne!(a.public_key(), c.public_key());
    }

    #[test]
    fn checksum_prevents_digit_increase_forgery() {
        // Raising any message digit requires lowering the checksum digits,
        // which would require inverting the chain function. Sanity-check the
        // digit/checksum arithmetic directly.
        let msg = sha256(b"x");
        let d = digits(&msg);
        let sum: u32 = d[..LEN1].iter().map(|&x| W - 1 - u32::from(x)).sum();
        let encoded =
            (u32::from(d[LEN1]) << 8) | (u32::from(d[LEN1 + 1]) << 4) | u32::from(d[LEN1 + 2]);
        assert_eq!(sum, encoded);
    }
}
