//! The [`Hash256`] digest type and [`Address`] account identifier.

use crate::codec::{Decode, DecodeError, Encode, Reader};
use serde::{Deserialize, Serialize};

/// A 256-bit digest, the universal identifier in the platform: block hashes,
/// transaction ids, Merkle roots, and state roots are all `Hash256`.
///
/// Displays as lowercase hex.
///
/// # Examples
///
/// ```
/// use dcs_crypto::Hash256;
///
/// let z = Hash256::ZERO;
/// assert_eq!(z.as_bytes(), &[0u8; 32]);
/// assert!(z.to_string().starts_with("00000000"));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Hash256([u8; 32]);

impl Hash256 {
    /// The all-zero digest, used as the genesis parent and as a sentinel.
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Wraps raw bytes as a digest.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }

    /// Borrows the digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes the digest, returning the raw bytes.
    pub fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Interprets the first 8 bytes as a big-endian integer; handy for
    /// difficulty comparisons and pseudo-random derivations.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("slice of length 8"))
    }

    /// Number of leading zero bits, i.e. the "difficulty" of this digest when
    /// interpreted as a proof-of-work solution.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut bits = 0;
        for byte in self.0 {
            if byte == 0 {
                bits += 8;
            } else {
                bits += byte.leading_zeros();
                break;
            }
        }
        bits
    }

    /// The full 64-character lowercase hex form. Equivalent to `to_string`
    /// but named for intent at call sites that build identifiers (URL
    /// paths, JSON keys) rather than display output.
    pub fn to_hex(&self) -> String {
        self.to_string()
    }

    /// Parses a 64-character lowercase/uppercase hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash256(out))
    }
}

impl core::fmt::Display for Hash256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl core::fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Abbreviated form keeps assertion failures readable.
        write!(
            f,
            "Hash256({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl AsRef<[u8]> for Hash256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(bytes: [u8; 32]) -> Self {
        Hash256(bytes)
    }
}

impl Encode for Hash256 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Hash256 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Hash256(r.take_array::<32>()?))
    }
}

/// A 20-byte account/contract address, derived as the first 20 bytes of the
/// SHA-256 of a public key (mirroring the Bitcoin/Ethereum convention the
/// paper's generations 1.0 and 2.0 assume).
///
/// # Examples
///
/// ```
/// use dcs_crypto::{sha256, Address};
///
/// let a = Address::from_hash(&sha256(b"alice public key"));
/// assert_eq!(a.as_bytes().len(), 20);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Address([u8; 20]);

impl Address {
    /// The all-zero address; used for coinbase "from" fields and burning.
    pub const ZERO: Address = Address([0u8; 20]);

    /// Wraps raw bytes as an address.
    pub const fn from_bytes(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// Derives an address from a digest (first 20 bytes).
    pub fn from_hash(h: &Hash256) -> Self {
        let mut out = [0u8; 20];
        out.copy_from_slice(&h.as_bytes()[..20]);
        Address(out)
    }

    /// Borrows the address bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Deterministically derives a distinct test/demo address from an index.
    pub fn from_index(i: u64) -> Self {
        Address::from_hash(&crate::sha256(&i.to_be_bytes()))
    }
}

impl core::fmt::Display for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl core::fmt::Debug for Address {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Address({:02x}{:02x}{:02x}{:02x}..)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl Encode for Address {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.0);
    }
}

impl Decode for Address {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Address(r.take_array::<20>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256;

    #[test]
    fn hex_round_trip() {
        let h = sha256(b"round trip");
        let s = h.to_string();
        assert_eq!(Hash256::from_hex(&s), Some(h));
        assert_eq!(Hash256::from_hex("zz"), None);
        assert_eq!(Hash256::from_hex(&s[..60]), None);
    }

    #[test]
    fn leading_zero_bits_counts_correctly() {
        let mut b = [0u8; 32];
        assert_eq!(Hash256::from_bytes(b).leading_zero_bits(), 256);
        b[0] = 0b0001_0000;
        assert_eq!(Hash256::from_bytes(b).leading_zero_bits(), 3);
        b[0] = 0;
        b[1] = 1;
        assert_eq!(Hash256::from_bytes(b).leading_zero_bits(), 15);
        b[0] = 0xff;
        assert_eq!(Hash256::from_bytes(b).leading_zero_bits(), 0);
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut b = [0u8; 32];
        b[7] = 1;
        assert_eq!(Hash256::from_bytes(b).prefix_u64(), 1);
        b[0] = 1;
        assert_eq!(Hash256::from_bytes(b).prefix_u64(), (1 << 56) + 1);
    }

    #[test]
    fn address_derivation_is_stable_and_distinct() {
        let a = Address::from_index(1);
        let b = Address::from_index(2);
        assert_ne!(a, b);
        assert_eq!(a, Address::from_index(1));
    }

    #[test]
    fn codec_round_trip() {
        use crate::codec::{decode_all, Encode};
        let h = sha256(b"x");
        let bytes = h.encoded();
        assert_eq!(decode_all::<Hash256>(&bytes).unwrap(), h);
        let a = Address::from_hash(&h);
        assert_eq!(decode_all::<Address>(&a.encoded()).unwrap(), a);
    }
}
