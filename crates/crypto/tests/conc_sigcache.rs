//! Bounded model-checking of the sharded [`SigCache`] (DESIGN.md §15).
//!
//! The cache is the one structure in `dcs-crypto` shared mutably across
//! verification threads: 16 `Mutex<Shard>` partitions plus relaxed
//! `AtomicU64` counters. Each public call holds its shard lock end-to-end,
//! so `dcs-conc`'s operation granularity (ops are atomic, all interleavings
//! of per-thread sequences explored) models exactly the schedules the real
//! pool can produce. The models below drive the racy access patterns the
//! `VerifyPipeline` generates — double-miss → double-insert handoffs, reads
//! racing eviction — and check the counter bookkeeping invariants after
//! every step of every schedule.

use dcs_conc::{Model, Op};
use dcs_crypto::{sha256, Hash256, SigCache};
use std::sync::Arc;

/// Deterministic "verification verdict" for a key — what the real pipeline
/// computes from the signature; any two racing verifiers agree on it.
fn verdict(key: &Hash256) -> bool {
    key.as_ref()[1] & 1 == 0
}

/// Shared state: the cache plus ground-truth op counts.
struct St {
    cache: Arc<SigCache>,
    gets: u64,
    /// First wrong verdict observed by any get, if any.
    bad: Option<String>,
}

fn get_op(key: Hash256) -> Op<St> {
    Box::new(move |s: &mut St| {
        if let Some(v) = s.cache.get(&key) {
            if v != verdict(&key) {
                s.bad = Some(format!("get returned {v}, want {}", verdict(&key)));
            }
        }
        s.gets += 1;
    })
}

fn insert_op(key: Hash256) -> Op<St> {
    Box::new(move |s: &mut St| s.cache.insert(key, verdict(&key)))
}

/// Counter/occupancy invariants that must hold after *every* operation.
fn invariant(s: &St) -> Result<(), String> {
    if let Some(bad) = &s.bad {
        return Err(bad.clone());
    }
    let st = s.cache.stats();
    if st.entries > st.capacity {
        return Err(format!("over capacity: {} > {}", st.entries, st.capacity));
    }
    if st.insertions < st.evictions {
        return Err(format!(
            "evictions {} outran insertions {}",
            st.evictions, st.insertions
        ));
    }
    if st.insertions - st.evictions != st.entries {
        return Err(format!(
            "occupancy drift: insertions {} - evictions {} != entries {}",
            st.insertions, st.evictions, st.entries
        ));
    }
    if st.hits + st.misses != s.gets {
        return Err(format!(
            "lookup accounting: hits {} + misses {} != gets {}",
            st.hits, st.misses, s.gets
        ));
    }
    Ok(())
}

/// Keys whose digests land in the same shard (equal first byte), forcing
/// FIFO eviction contention once the shard is at capacity.
fn same_shard_keys(n: usize) -> Vec<Hash256> {
    let mut keys = Vec::new();
    let mut nonce = 0u64;
    while keys.len() < n {
        let k = sha256(&nonce.to_le_bytes());
        if k.as_ref()[0] == 0 {
            keys.push(k);
        }
        nonce += 1;
    }
    keys
}

/// Two threads both miss the same key, both verify, both insert — the
/// cache-handoff race in `verify_batch_refs`. The second insert must be a
/// no-op for the counters (PR 7's prime-suspect bookkeeping).
#[test]
fn double_miss_double_insert_keeps_counters_consistent() {
    let key = sha256(b"contended");
    let model: Model<St> = Model::new()
        .thread(vec![get_op(key), insert_op(key), get_op(key)])
        .thread(vec![get_op(key), insert_op(key), get_op(key)]);
    let explored = model
        .check(
            || St {
                cache: Arc::new(SigCache::new(1024)),
                gets: 0,
                bad: None,
            },
            |s| {
                invariant(s)?;
                // Never more stored than distinct keys inserted.
                let st = s.cache.stats();
                if st.insertions > 1 {
                    return Err(format!("duplicate insert counted: {}", st.insertions));
                }
                Ok(())
            },
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 20); // C(6,3)
}

/// Three writers contending on one single-entry shard: every insert of a
/// new key evicts the previous one, while readers race the eviction. The
/// occupancy equation must hold at every step of every schedule.
#[test]
fn eviction_racing_reads_never_drifts() {
    let keys = same_shard_keys(3);
    // Capacity 16 → one entry per shard → keys[1] evicts keys[0], etc.
    let model: Model<St> = Model::new()
        .thread(vec![
            insert_op(keys[0]),
            get_op(keys[0]),
            insert_op(keys[1]),
        ])
        .thread(vec![insert_op(keys[2]), get_op(keys[1]), get_op(keys[2])])
        .thread(vec![get_op(keys[0]), get_op(keys[2])]);
    let explored = model
        .check(
            || St {
                cache: Arc::new(SigCache::new(16)),
                gets: 0,
                bad: None,
            },
            invariant,
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 560); // 8!/(3!3!2!)
}

/// The full pipeline handoff against a warm/cold cache: interleaved
/// get→insert→get sequences over overlapping keys, including a re-insert
/// of an already-present key. Verdicts observed by any get must match the
/// deterministic verifier output in every schedule.
#[test]
fn handoff_verdicts_are_deterministic_across_schedules() {
    let ka = sha256(b"tx-a");
    let kb = sha256(b"tx-b");
    let model: Model<St> = Model::new()
        .thread(vec![get_op(ka), insert_op(ka), get_op(ka), insert_op(ka)])
        .thread(vec![get_op(kb), insert_op(kb), get_op(ka)])
        .thread(vec![insert_op(kb), get_op(kb)]);
    let explored = model
        .check(
            || St {
                cache: Arc::new(SigCache::new(1024)),
                gets: 0,
                bad: None,
            },
            |s| {
                invariant(s)?;
                let st = s.cache.stats();
                if st.insertions > 2 {
                    return Err(format!(
                        "more insertions than distinct keys: {}",
                        st.insertions
                    ));
                }
                Ok(())
            },
        )
        .unwrap_or_else(|v| panic!("{v}"));
    assert_eq!(explored.schedules, 1260); // 9!/(4!3!2!)
}
