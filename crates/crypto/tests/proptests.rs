//! Property-based tests for the cryptographic substrate: codec round-trips,
//! Merkle proof soundness/completeness, streaming-hash equivalence, and
//! signature correctness over arbitrary inputs.

use dcs_crypto::codec::{decode_all, Encode};
use dcs_crypto::{sha256, Hash256, KeyPair, MerkleProof, MerkleTree, Sha256};
use proptest::prelude::*;

proptest! {
    #[test]
    fn sha256_streaming_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let mut ctx = Sha256::new();
        ctx.update(&data[..split]);
        ctx.update(&data[split..]);
        prop_assert_eq!(ctx.finalize(), sha256(&data));
    }

    #[test]
    fn sha256_is_injective_in_practice(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn codec_round_trips_vecs(v in proptest::collection::vec(any::<u64>(), 0..64)) {
        prop_assert_eq!(decode_all::<Vec<u64>>(&v.encoded()).unwrap(), v);
    }

    #[test]
    fn codec_round_trips_strings(s in "\\PC{0,64}") {
        prop_assert_eq!(decode_all::<String>(&s.encoded()).unwrap(), s);
    }

    #[test]
    fn codec_round_trips_nested(v in proptest::collection::vec((any::<u32>(), "\\PC{0,16}"), 0..16)) {
        prop_assert_eq!(decode_all::<Vec<(u32, String)>>(&v.encoded()).unwrap(), v);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Totality: arbitrary input decodes or errors, never panics.
        let _ = decode_all::<Vec<String>>(&bytes);
        let _ = decode_all::<Hash256>(&bytes);
        let _ = decode_all::<MerkleProof>(&bytes);
        let _ = decode_all::<(u64, Option<bool>)>(&bytes);
    }

    #[test]
    fn merkle_proofs_complete_and_sound(n in 1usize..40, probe in 0usize..40) {
        let leaves: Vec<Hash256> = (0..n).map(|i| sha256(&[i as u8])).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let root = tree.root();
        let idx = probe % n;
        // Completeness: every leaf proves.
        let proof = tree.prove(idx).unwrap();
        prop_assert!(proof.verify(&leaves[idx], &root));
        // Soundness: the proof binds to its own leaf only.
        for (j, other) in leaves.iter().enumerate() {
            if j != idx {
                prop_assert!(!proof.verify(other, &root));
            }
        }
    }

    #[test]
    fn merkle_root_is_content_sensitive(n in 2usize..32, flip in 0usize..32) {
        let leaves: Vec<Hash256> = (0..n).map(|i| sha256(&[i as u8])).collect();
        let mut tampered = leaves.clone();
        let i = flip % n;
        tampered[i] = sha256(b"tampered");
        prop_assert_ne!(
            MerkleTree::from_leaves(leaves).root(),
            MerkleTree::from_leaves(tampered).root()
        );
    }
}

proptest! {
    // Signatures are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn signatures_verify_and_bind(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut kp = KeyPair::generate(seed, 1);
        let digest = sha256(&msg);
        let sig = kp.sign(&digest).unwrap();
        prop_assert!(kp.public_key().verify(&digest, &sig));
        // Binding: a different message fails.
        let mut other = msg.clone();
        other[0] ^= 1;
        prop_assert!(!kp.public_key().verify(&sha256(&other), &sig));
    }

    /// The parallel executor is observationally equal to the serial
    /// `PublicKey::verify` loop over arbitrary mixes of valid signatures,
    /// wrong-message forgeries, and wrong-key forgeries — for every thread
    /// count, and through the caching pipeline on both cold and warm passes.
    #[test]
    fn verify_batch_equals_serial_loop(
        spec in proptest::collection::vec((0u8..2, any::<u8>(), 0u8..3), 0..8)
    ) {
        use dcs_crypto::{Signature, VerifyPipeline, VerifyPool};

        let mut kps = [KeyPair::generate([0xA1; 32], 3), KeyPair::generate([0xB2; 32], 3)];
        let items: Vec<(dcs_crypto::PublicKey, Hash256, Signature)> = spec
            .iter()
            .map(|&(key, msg_byte, mode)| {
                let msg = sha256(&[msg_byte]);
                let (signer, pk_owner) = match mode {
                    // Valid: signed by the key whose pk we attach.
                    0 => (key as usize, key as usize),
                    // Wrong-message forgery: signature over a different digest.
                    1 => (key as usize, key as usize),
                    // Wrong-key forgery: genuine signature, other key's pk.
                    _ => (key as usize, 1 - key as usize),
                };
                let signed = if mode == 1 { sha256(&[msg_byte, 0xFF]) } else { msg };
                let sig = kps[signer].sign(&signed).expect("capacity 8 per key");
                (kps[pk_owner].public_key(), msg, sig)
            })
            .collect();

        let expected: Vec<bool> =
            items.iter().map(|(pk, msg, sig)| pk.verify(msg, sig)).collect();

        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                VerifyPool::new(threads).verify_batch(&items),
                expected.clone(),
                "pool threads={}", threads
            );
            let pipeline = VerifyPipeline::new(threads, 512);
            prop_assert_eq!(
                pipeline.verify_batch(&items),
                expected.clone(),
                "pipeline cold threads={}", threads
            );
            prop_assert_eq!(
                pipeline.verify_batch(&items),
                expected.clone(),
                "pipeline warm threads={}", threads
            );
            let cache = pipeline.stats().cache.expect("cache configured");
            prop_assert_eq!(cache.hits, items.len() as u64, "warm pass all hits");
        }
    }
}
