//! Static contract verification (§5.3 of the paper: "there is a need to
//! develop validation tools which can formally analyze smart contracts for
//! bugs and incorrect behavior ... prior to deployment in a live
//! blockchain, as there are financial repercussions for incorrectly
//! executed contracts").
//!
//! [`analyze`] abstractly interprets the bytecode: it explores every
//! control-flow path with an *abstract stack* (constants from `push` are
//! tracked, every other result is ⊤), memoizing visited `(pc, stack)`
//! states so loops converge. It proves, before deployment:
//!
//! * no undecodable opcodes or truncated immediates on any reachable path,
//! * no possible stack underflow,
//! * no jump to a non-`jumpdest` target (targets are resolved through the
//!   abstract stack, so the assembler's `push @label … jumpi` idiom
//!   resolves exactly),
//! * execution cannot fall off the end of the code,
//! * and it reports unreachable (dead) code offsets.

use crate::vm::Op;
use std::collections::HashSet;

/// A deployment-blocking defect found by the analyzer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Defect {
    /// A reachable byte is not a valid opcode.
    BadOpcode {
        /// Code offset.
        pc: usize,
        /// The byte.
        byte: u8,
    },
    /// An immediate operand runs past the end of the code.
    TruncatedImmediate {
        /// Code offset of the instruction.
        pc: usize,
    },
    /// Some execution path pops more values than the stack holds.
    StackUnderflow {
        /// Code offset where the underflow occurs.
        pc: usize,
        /// Values the instruction needs.
        needs: usize,
        /// Stack depth on the offending path.
        depth: usize,
    },
    /// A provable jump target is not a `jumpdest`.
    BadJumpTarget {
        /// Code offset of the jump.
        pc: usize,
        /// The provably-taken target.
        target: usize,
    },
    /// Execution can run past the final instruction (no `stop`/`return`/
    /// `revert` on some path).
    FallsOffEnd,
}

impl core::fmt::Display for Defect {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Defect::BadOpcode { pc, byte } => write!(f, "pc {pc}: invalid opcode 0x{byte:02x}"),
            Defect::TruncatedImmediate { pc } => {
                write!(f, "pc {pc}: immediate operand past end of code")
            }
            Defect::StackUnderflow { pc, needs, depth } => {
                write!(f, "pc {pc}: needs {needs} stack values, has only {depth}")
            }
            Defect::BadJumpTarget { pc, target } => {
                write!(f, "pc {pc}: jump to non-jumpdest offset {target}")
            }
            Defect::FallsOffEnd => write!(f, "execution can fall off the end of the code"),
        }
    }
}

/// The analyzer's verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Deployment-blocking defects, in discovery order.
    pub defects: Vec<Defect>,
    /// Offsets of instructions never reachable from entry (informational —
    /// wasted deploy gas, or a sign of assembler bugs).
    pub unreachable: Vec<usize>,
    /// False when the state budget was exhausted before full coverage
    /// (defects found so far are still real; absence of defects is then
    /// not a proof).
    pub complete: bool,
}

impl Report {
    /// True when the contract is proven safe to deploy.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty() && self.complete
    }
}

/// Abstract value: a known constant (low 64 bits) or ⊤.
type AVal = Option<u64>;

/// Stack effect (pops, pushes) and immediate size of an opcode.
fn effect(op: Op) -> (usize, usize, usize) {
    use Op::*;
    match op {
        Stop => (0, 0, 0),
        Add | Sub | Mul | Div | Mod | Lt | Gt | Eq | And | Or | Xor => (2, 1, 0),
        IsZero | Not => (1, 1, 0),
        Sha256 => (2, 1, 0),
        Address | Caller | CallValue | CallDataSize | Timestamp | Height | MSize => (0, 1, 0),
        CallDataLoad | Balance | Sload | MLoad => (1, 1, 0),
        Pop => (1, 0, 0),
        Push32 => (0, 1, 32),
        Push8 => (0, 1, 8),
        Push1 => (0, 1, 1),
        Dup => (0, 1, 1),
        Swap => (0, 0, 1),
        Jump => (1, 0, 0),
        JumpI => (2, 0, 0),
        JumpDest => (0, 0, 0),
        MStore | MStore8 => (2, 0, 0),
        Sstore => (2, 0, 0),
        Log0 => (2, 0, 0),
        Log1 => (3, 0, 0),
        Log2 => (4, 0, 0),
        Transfer => (2, 0, 0),
        Return | Revert => (2, 0, 0),
    }
}

/// Upper bound on explored abstract states (guards adversarial inputs).
const STATE_BUDGET: usize = 100_000;

/// Statically analyzes `code`. See the module docs for the properties
/// checked.
pub fn analyze(code: &[u8]) -> Report {
    let mut defects: Vec<Defect> = Vec::new();
    let push_defect = |defects: &mut Vec<Defect>, d: Defect| {
        if !defects.contains(&d) {
            defects.push(d);
        }
    };
    if code.is_empty() {
        return Report {
            defects: vec![Defect::FallsOffEnd],
            unreachable: Vec::new(),
            complete: true,
        };
    }

    // Valid jumpdest map (same immediate-skip rules as the VM).
    let mut is_dest = vec![false; code.len()];
    {
        let mut pc = 0;
        while pc < code.len() {
            match Op::from_byte(code[pc]) {
                Some(Op::JumpDest) => {
                    is_dest[pc] = true;
                    pc += 1;
                }
                Some(op) => pc += 1 + effect(op).2,
                None => pc += 1,
            }
        }
    }

    let mut visited: HashSet<(usize, Vec<AVal>)> = HashSet::new();
    let mut reached_pc: HashSet<usize> = HashSet::new();
    let mut worklist: Vec<(usize, Vec<AVal>)> = vec![(0, Vec::new())];
    let mut complete = true;

    while let Some((pc, mut stack)) = worklist.pop() {
        if visited.len() > STATE_BUDGET {
            complete = false;
            break;
        }
        if pc >= code.len() {
            push_defect(&mut defects, Defect::FallsOffEnd);
            continue;
        }
        if !visited.insert((pc, stack.clone())) {
            continue; // converged: this exact abstract state was explored
        }
        reached_pc.insert(pc);

        let Some(op) = Op::from_byte(code[pc]) else {
            push_defect(&mut defects, Defect::BadOpcode { pc, byte: code[pc] });
            continue;
        };
        let (pops, pushes, imm) = effect(op);
        if pc + 1 + imm > code.len() {
            push_defect(&mut defects, Defect::TruncatedImmediate { pc });
            continue;
        }
        let needs = match op {
            Op::Dup => code[pc + 1] as usize + 1,
            Op::Swap => code[pc + 1] as usize + 2,
            _ => pops,
        };
        if stack.len() < needs {
            push_defect(
                &mut defects,
                Defect::StackUnderflow {
                    pc,
                    needs,
                    depth: stack.len(),
                },
            );
            continue; // this path is dead at runtime
        }
        let next_pc = pc + 1 + imm;

        match op {
            Op::Stop | Op::Return | Op::Revert => {}
            Op::Push1 => {
                stack.push(Some(u64::from(code[pc + 1])));
                worklist.push((next_pc, stack));
            }
            Op::Push8 => {
                let v = u64::from_be_bytes(code[pc + 1..pc + 9].try_into().expect("8 bytes"));
                stack.push(Some(v));
                worklist.push((next_pc, stack));
            }
            Op::Push32 => {
                let word = &code[pc + 1..pc + 33];
                let v = word[..24]
                    .iter()
                    .all(|&b| b == 0)
                    .then(|| u64::from_be_bytes(word[24..].try_into().expect("8 bytes")));
                stack.push(v);
                worklist.push((next_pc, stack));
            }
            Op::Dup => {
                let n = code[pc + 1] as usize;
                let v = stack[stack.len() - 1 - n];
                stack.push(v);
                worklist.push((next_pc, stack));
            }
            Op::Swap => {
                let n = code[pc + 1] as usize;
                let top = stack.len() - 1;
                stack.swap(top, top - n - 1);
                worklist.push((next_pc, stack));
            }
            Op::Jump | Op::JumpI => {
                let (dst, _cond) = if op == Op::Jump {
                    (stack.pop().expect("checked needs"), None)
                } else {
                    let cond = stack.pop().expect("checked needs");
                    (stack.pop().expect("checked needs"), Some(cond))
                };
                match dst {
                    Some(t) => {
                        let t = t as usize;
                        if is_dest.get(t).copied().unwrap_or(false) {
                            worklist.push((t, stack.clone()));
                        } else {
                            push_defect(&mut defects, Defect::BadJumpTarget { pc, target: t });
                        }
                    }
                    None => {
                        // Unknown target: conservatively flow to every
                        // jumpdest (the memoized states keep this finite).
                        for (t, &d) in is_dest.iter().enumerate() {
                            if d {
                                worklist.push((t, stack.clone()));
                            }
                        }
                    }
                }
                if op == Op::JumpI {
                    worklist.push((next_pc, stack)); // fall-through arm
                }
            }
            _ => {
                for _ in 0..pops {
                    stack.pop();
                }
                for _ in 0..pushes {
                    stack.push(None); // results of computation are ⊤
                }
                if stack.len() > 1024 {
                    // Runtime would throw StackOverflow; treat the path as
                    // terminated rather than exploring unbounded growth.
                    continue;
                }
                worklist.push((next_pc, stack));
            }
        }
    }

    // Unreachable instruction offsets (skipping immediates).
    let mut unreachable = Vec::new();
    let mut pc = 0;
    while pc < code.len() {
        let imm = Op::from_byte(code[pc]).map_or(0, |op| effect(op).2);
        if complete && !reached_pc.contains(&pc) {
            unreachable.push(pc);
        }
        pc += 1 + imm;
    }
    Report {
        defects,
        unreachable,
        complete,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn stdlib_contracts_are_clean() {
        for (name, code) in [
            ("greeter", crate::stdlib::greeter()),
            ("counter", crate::stdlib::counter()),
            ("token", crate::stdlib::token()),
            ("notary", crate::stdlib::notary()),
            ("escrow", crate::stdlib::escrow()),
            ("trade_registry", crate::stdlib::trade_registry()),
            ("crowdfund", crate::stdlib::crowdfund()),
        ] {
            let report = analyze(&code);
            assert!(report.is_clean(), "{name}: {:?}", report.defects);
            assert!(report.unreachable.is_empty(), "{name} has dead code");
        }
    }

    #[test]
    fn detects_stack_underflow() {
        let code = assemble("push 1\nadd\nstop").unwrap();
        let report = analyze(&code);
        assert!(matches!(
            report.defects[0],
            Defect::StackUnderflow {
                needs: 2,
                depth: 1,
                ..
            }
        ));
    }

    #[test]
    fn detects_bad_jump_target() {
        let code = assemble("push 3\njump\nstop").unwrap(); // 3 is not a jumpdest
        let report = analyze(&code);
        assert!(report
            .defects
            .iter()
            .any(|d| matches!(d, Defect::BadJumpTarget { target: 3, .. })));
    }

    #[test]
    fn resolves_targets_through_the_dispatcher_idiom() {
        // Target pushed several instructions before the jumpi — the abstract
        // stack carries it through eq/calldataload.
        let code = assemble(
            "push @handler
             push 0
             calldataload
             push 1
             eq
             jumpi
             stop
             :handler
             jumpdest
             stop",
        )
        .unwrap();
        let report = analyze(&code);
        assert!(report.is_clean(), "{:?}", report.defects);
        assert!(report.unreachable.is_empty());
    }

    #[test]
    fn detects_falling_off_the_end() {
        let code = assemble("push 1\npop").unwrap(); // no stop
        let report = analyze(&code);
        assert!(report.defects.contains(&Defect::FallsOffEnd));
    }

    #[test]
    fn detects_bad_opcode() {
        let report = analyze(&[0xee]);
        assert!(matches!(
            report.defects[0],
            Defect::BadOpcode { pc: 0, byte: 0xee }
        ));
    }

    #[test]
    fn detects_truncated_immediate() {
        let report = analyze(&[crate::vm::Op::Push8 as u8, 1, 2]);
        assert!(matches!(
            report.defects[0],
            Defect::TruncatedImmediate { pc: 0 }
        ));
    }

    #[test]
    fn finds_unreachable_code() {
        let code = assemble("push @end\njump\npush 1\npop\n:end\njumpdest\nstop").unwrap();
        let report = analyze(&code);
        assert!(report.defects.is_empty(), "{:?}", report.defects);
        assert!(
            !report.unreachable.is_empty(),
            "the skipped push/pop is dead"
        );
    }

    #[test]
    fn conditional_paths_both_analyzed() {
        // jumpi: one arm underflows, the other is fine — must be caught.
        let code = assemble(
            "push @safe
             push 1
             jumpi
             add
             stop
             :safe
             jumpdest
             stop",
        )
        .unwrap();
        let report = analyze(&code);
        assert!(report
            .defects
            .iter()
            .any(|d| matches!(d, Defect::StackUnderflow { .. })));
    }

    #[test]
    fn empty_code_falls_off() {
        assert!(!analyze(&[]).is_clean());
    }

    #[test]
    fn loops_terminate_the_analysis() {
        // A counting loop with an unknown-at-analysis trip count: converges
        // because the abstract state recurs.
        let code = assemble(
            "push 0
             calldataload
             :loop
             jumpdest
             push 1
             sub
             dup 0
             push @loop
             swap 0
             jumpi
             pop
             stop",
        )
        .unwrap();
        let report = analyze(&code);
        assert!(report.is_clean(), "{:?}", report.defects);
    }

    #[test]
    fn fuzzed_bytecode_never_hangs_the_analyzer() {
        // Adversarial-ish: lots of unknown jumps; the budget must hold.
        let mut rng = 0x12345u64;
        for _ in 0..50 {
            let code: Vec<u8> = (0..200)
                .map(|_| {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (rng >> 33) as u8
                })
                .collect();
            let _ = analyze(&code); // must return, clean or not
        }
    }
}
