//! The contract layer (§4.3 of the paper): smart contracts as "programs
//! automatically executed by the blockchain miners whenever their encoded
//! conditions are triggered" (§2.5).
//!
//! The crate provides:
//!
//! * [`vm`] — a gas-metered stack virtual machine with contract storage,
//!   event logs, value transfer, and hashing (the execution engine).
//! * [`asm`] — a two-pass assembler so contracts are written as readable
//!   mnemonics rather than raw bytes.
//! * [`exec`] — the transaction executor: nonce/balance checks, intrinsic
//!   gas, VM dispatch, fee settlement with the block proposer (§2.5: gas
//!   "is given to the miner who includes the transaction in a block").
//! * [`machine`] — [`machine::AccountMachine`], the `StateMachine` plugged
//!   under `dcs-chain` for generation-2.0/3.0 ledgers.
//! * [`stdlib`] — the standard contracts used across examples and
//!   experiments: greeter (the paper's §2.5 HelloWorld), counter, token,
//!   escrow, notary and trade registry (Fig. 3), and crowdfunding.
//!
//! # Examples
//!
//! Deploy the greeter and call its free, read-only `say()` — mirroring the
//! paper's Solidity listing where constant functions cost no gas:
//!
//! ```
//! use dcs_contracts::{exec, stdlib, vm::Word};
//! use dcs_state::AccountDb;
//! use dcs_crypto::Address;
//!
//! let mut db = AccountDb::new();
//! let contract = Address::from_index(42);
//! db.set_code(&contract, stdlib::greeter());
//!
//! // setGreeting("hi") — a state write, costs gas when run through exec.
//! let input = stdlib::greeter_set_input("hi");
//! let out = exec::query(&mut db, &contract, &Address::from_index(1), &input).unwrap();
//! # let _ = out;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod exec;
pub mod machine;
pub mod stdlib;
pub mod verify;
pub mod vm;

pub use asm::{assemble, AsmError};
pub use exec::{execute_tx, query};
pub use machine::AccountMachine;
pub use verify::analyze;
pub use vm::{Vm, VmError, Word};
