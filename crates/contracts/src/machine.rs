//! The application state machines plugged under `dcs-chain`:
//! [`AccountMachine`] executes generation-2.0/3.0 blocks (account transfers,
//! deployments, contract calls with gas), and [`UtxoMachine`] executes
//! generation-1.0 blocks over the UTXO set. Both support exact reorg
//! rollback via undo logs.

use crate::exec::{execute_tx, prevalidate_witnesses, verify_witness, BlockCtx};
use dcs_chain::StateMachine;
use dcs_crypto::{Address, Hash256, VerifyPipeline};
use dcs_primitives::{Amount, Block, GasSchedule, Receipt, Transaction};
use dcs_state::{AccountDb, AccountUndo, UtxoSet, UtxoUndo};
use std::sync::Arc;

/// The account-model state machine (generations 2.0/3.0).
#[derive(Debug, Default)]
pub struct AccountMachine {
    /// The world state.
    pub db: AccountDb,
    /// Gas schedule applied to every transaction.
    pub schedule: GasSchedule,
    /// Whether witnesses are demanded and verified (block-invalidating).
    pub verify_signatures: bool,
    /// Apply blocks through the serial per-write trie path instead of the
    /// default batched overlay path. The two are bit-identical in roots,
    /// receipts, and errors; serial is kept for equivalence testing and
    /// bisection.
    pub serial_apply: bool,
    pipeline: Option<Arc<VerifyPipeline>>,
}

impl AccountMachine {
    /// An empty machine with the default gas schedule.
    pub fn new() -> Self {
        AccountMachine::default()
    }

    /// A machine with pre-funded genesis accounts.
    pub fn with_alloc(alloc: &[(Address, Amount)]) -> Self {
        let mut m = AccountMachine::new();
        for (addr, amount) in alloc {
            m.db.credit(addr, *amount);
        }
        m.db.clear_journal();
        m
    }

    /// Routes witness verification through a shared verification pipeline:
    /// all witnesses of a block are batch-verified (in parallel, through the
    /// signature cache) before the serial execution loop. State transitions
    /// are unchanged — the pipeline accepts and rejects exactly the blocks
    /// the serial path does.
    pub fn with_pipeline(mut self, pipeline: Arc<VerifyPipeline>) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// The verification pipeline, if one is attached.
    pub fn pipeline(&self) -> Option<&Arc<VerifyPipeline>> {
        self.pipeline.as_ref()
    }
}

impl StateMachine for AccountMachine {
    type Undo = AccountUndo;

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, AccountUndo), String> {
        // Stateless prevalidation: batch-verify every witness up front so the
        // serial execution loop below never touches a signature.
        let prevalidated = match (self.verify_signatures, &self.pipeline) {
            (true, Some(pipeline)) => {
                prevalidate_witnesses(&block.txs, pipeline)?;
                true
            }
            _ => false,
        };
        let snapshot = self.db.snapshot();
        if !self.serial_apply {
            // Batched application: execution stages writes in an overlay and
            // one `MerkleMap::write_batch` pass merges them at commit, so
            // each touched trie branch rehashes once per block instead of
            // once per write. Roots, receipts, and errors are bit-identical
            // to the serial path.
            self.db.begin_batch();
        }
        let ctx = BlockCtx {
            proposer: block.header.proposer,
            timestamp_us: block.header.timestamp_us,
            height: block.header.height,
        };
        let ids = block.tx_ids();
        let mut receipts = Vec::with_capacity(block.txs.len());
        for (tx, id) in block.txs.iter().zip(ids) {
            match tx {
                Transaction::Coinbase { to, value, .. } => {
                    self.db.credit(to, *value);
                    receipts.push(Receipt::success(*id));
                }
                Transaction::Account(acct) => {
                    if self.verify_signatures && !prevalidated {
                        if let Err(e) = verify_witness(tx) {
                            self.db.rollback(snapshot);
                            self.db.abort_batch();
                            return Err(e);
                        }
                    }
                    receipts.push(execute_tx(&mut self.db, acct, *id, &ctx, &self.schedule));
                }
                Transaction::Utxo(_) => {
                    self.db.rollback(snapshot);
                    self.db.abort_batch();
                    return Err("UTXO transaction in an account-model ledger".into());
                }
            }
        }
        self.db.commit_batch();
        Ok((receipts, self.db.take_undo(snapshot)))
    }

    fn revert_block(&mut self, undo: AccountUndo) {
        self.db.apply_undo(undo);
    }

    fn state_root(&self) -> Hash256 {
        self.db.root()
    }
}

/// The UTXO-model state machine (generation 1.0).
#[derive(Debug, Default)]
pub struct UtxoMachine {
    /// The unspent-output set.
    pub set: UtxoSet,
    /// Apply blocks through the serial per-transaction path instead of the
    /// default batched one-sweep merge ([`UtxoSet::apply_batch`]). Both
    /// produce identical commitments, fees, undos, and errors.
    pub serial_apply: bool,
    pipeline: Option<Arc<VerifyPipeline>>,
}

impl UtxoMachine {
    /// An empty machine (witness verification off; see
    /// [`UtxoSet::with_witness_verification`] for the checked variant).
    pub fn new() -> Self {
        UtxoMachine::default()
    }

    /// A machine whose genesis state holds one output per `(owner, value)`.
    pub fn with_alloc(alloc: &[(Address, Amount)]) -> Self {
        let mut m = UtxoMachine::new();
        for (addr, value) in alloc {
            m.set.mint(*addr, *value);
        }
        m
    }

    /// A machine over `set` (typically
    /// [`UtxoSet::with_witness_verification`]).
    pub fn over(set: UtxoSet) -> Self {
        UtxoMachine {
            set,
            ..UtxoMachine::default()
        }
    }

    /// Routes witness verification through a shared verification pipeline:
    /// block signatures are batch-verified statelessly before the serial
    /// apply loop, which then skips per-input signature re-verification.
    /// Stateful checks (existence, ownership, balance) and state roots are
    /// unchanged for any thread count.
    pub fn with_pipeline(mut self, pipeline: Arc<VerifyPipeline>) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// The verification pipeline, if one is attached.
    pub fn pipeline(&self) -> Option<&Arc<VerifyPipeline>> {
        self.pipeline.as_ref()
    }
}

impl StateMachine for UtxoMachine {
    type Undo = Vec<UtxoUndo>;

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, Vec<UtxoUndo>), String> {
        // Phase 1 (stateless, parallel): batch-verify every witness
        // signature in the body through the pipeline. Existence/ownership/
        // balance checks cannot run here — an input may be created by an
        // earlier transaction of this very block — so they stay serial.
        let prevalidated = match &self.pipeline {
            Some(pipeline) if self.set.verifies_witnesses() => {
                UtxoSet::prevalidate_witnesses(&block.txs, pipeline).map_err(|e| e.to_string())?;
                true
            }
            _ => false,
        };
        // Phase 2 (stateful, deterministic): apply in block order.
        if !self.serial_apply {
            // Batched application: validate against the live set plus the
            // staged deltas, then merge everything in one sorted sweep. The
            // account-model guard runs first so the error surfaces exactly
            // as on the serial path (which never commits anything either).
            if block
                .txs
                .iter()
                .any(|tx| matches!(tx, Transaction::Account(_)))
            {
                return Err("account transaction in a UTXO ledger".into());
            }
            let applied = self
                .set
                .apply_batch(&block.txs, block.tx_ids(), !prevalidated)
                .map_err(|e| e.to_string())?;
            let mut undos = Vec::with_capacity(applied.len());
            let mut receipts = Vec::with_capacity(applied.len());
            for ((fee, undo), id) in applied.into_iter().zip(block.tx_ids()) {
                let mut r = Receipt::success(*id);
                r.fee_paid = fee;
                receipts.push(r);
                undos.push(undo);
            }
            return Ok((receipts, undos));
        }
        let mut undos = Vec::with_capacity(block.txs.len());
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            if matches!(tx, Transaction::Account(_)) {
                for undo in undos.into_iter().rev() {
                    self.set.revert(undo);
                }
                return Err("account transaction in a UTXO ledger".into());
            }
            let applied = if prevalidated {
                self.set.apply_prevalidated(tx)
            } else {
                self.set.apply(tx)
            };
            match applied {
                Ok((fee, undo)) => {
                    undos.push(undo);
                    let mut r = Receipt::success(tx.id());
                    r.fee_paid = fee;
                    receipts.push(r);
                }
                Err(e) => {
                    for undo in undos.into_iter().rev() {
                        self.set.revert(undo);
                    }
                    return Err(e.to_string());
                }
            }
        }
        Ok((receipts, undos))
    }

    fn revert_block(&mut self, undos: Vec<UtxoUndo>) {
        for undo in undos.into_iter().rev() {
            self.set.revert(undo);
        }
    }

    fn state_root(&self) -> Hash256 {
        self.set.commitment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_primitives::{AccountTx, BlockHeader, ChainConfig, Seal, TxIn, TxOut, UtxoTx};

    fn block_with(parent: Hash256, height: u64, txs: Vec<Transaction>) -> Block {
        Block::new(
            BlockHeader::new(parent, height, height, Address::from_index(99), Seal::None),
            txs,
        )
    }

    #[test]
    fn account_machine_applies_and_reverts_exactly() {
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let root0 = m.state_root();

        let txs = vec![
            Transaction::Coinbase {
                to: Address::from_index(99),
                value: 50,
                height: 1,
            },
            Transaction::Account(AccountTx::transfer(alice, bob, 500, 0)),
        ];
        let block = block_with(Hash256::ZERO, 1, txs);
        let (receipts, undo) = m.apply_block(&block).unwrap();
        assert_eq!(receipts.len(), 2);
        assert!(receipts.iter().all(|r| r.status.is_success()));
        assert_eq!(m.db.balance(&bob), 500);
        let root1 = m.state_root();
        assert_ne!(root0, root1);

        m.revert_block(undo);
        assert_eq!(m.state_root(), root0);
        assert_eq!(m.db.balance(&bob), 0);
        assert_eq!(m.db.nonce(&alice), 0);
    }

    #[test]
    fn account_machine_rejects_utxo_tx() {
        let mut m = AccountMachine::new();
        let block = block_with(
            Hash256::ZERO,
            1,
            vec![Transaction::Utxo(UtxoTx {
                inputs: vec![],
                outputs: vec![],
            })],
        );
        let root = m.state_root();
        assert!(m.apply_block(&block).is_err());
        assert_eq!(m.state_root(), root, "failed apply leaves no residue");
    }

    #[test]
    fn account_machine_enforces_witnesses_when_asked() {
        let alice = Address::from_index(1);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        m.verify_signatures = true;
        let block = block_with(
            Hash256::ZERO,
            1,
            vec![Transaction::Account(AccountTx::transfer(
                alice,
                Address::from_index(2),
                1,
                0,
            ))],
        );
        let err = m.apply_block(&block).unwrap_err();
        assert!(err.contains("witness"), "{err}");
    }

    #[test]
    fn failed_tx_gets_failed_receipt_but_block_applies() {
        let alice = Address::from_index(1);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let txs = vec![
            // Wrong nonce: soft failure.
            Transaction::Account(AccountTx::transfer(alice, Address::from_index(2), 1, 7)),
            // Correct one succeeds.
            Transaction::Account(AccountTx::transfer(alice, Address::from_index(2), 1, 0)),
        ];
        let block = block_with(Hash256::ZERO, 1, txs);
        let (receipts, _) = m.apply_block(&block).unwrap();
        assert!(!receipts[0].status.is_success());
        assert!(receipts[1].status.is_success());
    }

    #[test]
    fn utxo_machine_round_trip() {
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let mut m = UtxoMachine::with_alloc(&[(alice, 100)]);
        let root0 = m.state_root();
        let op = m.set.outpoints_of(&alice)[0];

        let spend = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 90,
                recipient: bob,
            }],
        });
        let block = block_with(Hash256::ZERO, 1, vec![spend]);
        let (receipts, undo) = m.apply_block(&block).unwrap();
        assert_eq!(receipts[0].fee_paid, 10);
        assert_eq!(m.set.balance_of(&bob), 90);

        m.revert_block(undo);
        assert_eq!(m.state_root(), root0);
        assert_eq!(m.set.balance_of(&alice), 100);
    }

    #[test]
    fn utxo_machine_atomic_on_midblock_failure() {
        let alice = Address::from_index(1);
        let mut m = UtxoMachine::with_alloc(&[(alice, 100)]);
        let root0 = m.state_root();
        let op = m.set.outpoints_of(&alice)[0];
        let good = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: alice,
            }],
        });
        // Double spend of the same outpoint: invalid.
        let bad = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: alice,
            }],
        });
        let block = block_with(Hash256::ZERO, 1, vec![good, bad]);
        assert!(m.apply_block(&block).is_err());
        assert_eq!(m.state_root(), root0, "partial application rolled back");
    }

    #[test]
    fn pipelined_utxo_machine_matches_serial_state_root() {
        use dcs_primitives::TxAuth;
        let mut kp = dcs_crypto::KeyPair::generate([11u8; 32], 3);
        let addr = kp.address();

        // Two machines over identical witness-verifying genesis states.
        let mut genesis = UtxoSet::with_witness_verification();
        let op = genesis.mint(addr, 100);
        let mut serial = UtxoMachine::over(genesis.clone());
        let pipeline = Arc::new(VerifyPipeline::new(4, 1024));
        let mut piped = UtxoMachine::over(genesis).with_pipeline(Arc::clone(&pipeline));

        // A block of chained signed self-transfers (mid-block dependencies).
        let mut prev = op;
        let mut txs = Vec::new();
        for _ in 0..4 {
            let mut utx = UtxoTx {
                inputs: vec![TxIn {
                    prev_tx: prev.tx,
                    index: prev.index,
                    auth: None,
                }],
                outputs: vec![TxOut {
                    value: 100,
                    recipient: addr,
                }],
            };
            let signing = Transaction::Utxo(utx.clone()).signing_hash();
            let sig = kp.sign(&signing).unwrap();
            utx.inputs[0].auth = Some(TxAuth {
                pubkey: kp.public_key(),
                signature: sig,
            });
            let tx = Transaction::Utxo(utx);
            prev = dcs_state::OutPoint {
                tx: tx.id(),
                index: 0,
            };
            txs.push(tx);
        }
        let block = block_with(Hash256::ZERO, 1, txs);

        let (r_serial, _) = serial.apply_block(&block).unwrap();
        let (r_piped, _) = piped.apply_block(&block).unwrap();
        assert_eq!(
            serial.state_root(),
            piped.state_root(),
            "roots must be bit-identical"
        );
        assert_eq!(
            r_serial.iter().map(|r| r.fee_paid).collect::<Vec<_>>(),
            r_piped.iter().map(|r| r.fee_paid).collect::<Vec<_>>()
        );
        let stats = pipeline.stats();
        assert_eq!(
            stats.cache.unwrap().misses,
            4,
            "all four signatures verified once"
        );
    }

    #[test]
    fn pipelined_utxo_machine_rejects_forged_witness_atomically() {
        use dcs_primitives::TxAuth;
        let mut kp = dcs_crypto::KeyPair::generate([12u8; 32], 2);
        let addr = kp.address();
        let mut set = UtxoSet::with_witness_verification();
        let op = set.mint(addr, 100);
        let mut m = UtxoMachine::over(set).with_pipeline(Arc::new(VerifyPipeline::new(2, 64)));
        let root0 = m.state_root();

        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: addr,
            }],
        };
        let forged = kp.sign(&dcs_crypto::sha256(b"different message")).unwrap();
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: forged,
        });
        let block = block_with(Hash256::ZERO, 1, vec![Transaction::Utxo(utx)]);
        let err = m.apply_block(&block).unwrap_err();
        assert!(err.contains("bad witness"), "{err}");
        assert_eq!(
            m.state_root(),
            root0,
            "prevalidation failure leaves no residue"
        );
    }

    #[test]
    fn pipelined_account_machine_matches_serial() {
        use dcs_primitives::TxAuth;
        let mut kp = dcs_crypto::KeyPair::generate([13u8; 32], 2);
        let alice = kp.address();
        let bob = Address::from_index(2);

        let sign = |mut acct: AccountTx, kp: &mut dcs_crypto::KeyPair| {
            let signing = Transaction::Account(acct.clone()).signing_hash();
            let sig = kp.sign(&signing).unwrap();
            acct.auth = Some(TxAuth {
                pubkey: kp.public_key(),
                signature: sig,
            });
            Transaction::Account(acct)
        };
        let tx0 = sign(AccountTx::transfer(alice, bob, 500, 0), &mut kp);
        let tx1 = sign(AccountTx::transfer(alice, bob, 300, 1), &mut kp);
        let block = block_with(Hash256::ZERO, 1, vec![tx0, tx1]);

        let mut serial = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        serial.verify_signatures = true;
        let pipeline = Arc::new(VerifyPipeline::new(4, 1024));
        let mut piped =
            AccountMachine::with_alloc(&[(alice, 1_000_000)]).with_pipeline(Arc::clone(&pipeline));
        piped.verify_signatures = true;

        serial.apply_block(&block).unwrap();
        piped.apply_block(&block).unwrap();
        assert_eq!(serial.state_root(), piped.state_root());
        assert_eq!(piped.db.balance(&bob), 800);
        assert_eq!(pipeline.stats().cache.unwrap().misses, 2);

        // An unsigned tx still invalidates the block through the pipeline.
        let unsigned = block_with(
            Hash256::ZERO,
            2,
            vec![Transaction::Account(AccountTx::transfer(alice, bob, 1, 2))],
        );
        let err = piped.apply_block(&unsigned).unwrap_err();
        assert!(err.contains("witness"), "{err}");
    }

    #[test]
    fn chain_integration_reorg_preserves_account_state() {
        // Full integration: Chain<AccountMachine> survives a reorg with
        // exact state restoration.
        use dcs_chain::Chain;
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let carol = Address::from_index(3);
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let machine = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let mut chain = Chain::new(genesis.clone(), cfg, machine);

        // Branch A: pay bob.
        let a1 = block_with(
            genesis.hash(),
            1,
            vec![Transaction::Account(AccountTx::transfer(
                alice, bob, 100, 0,
            ))],
        );
        chain.import(a1).unwrap();
        assert_eq!(chain.machine().db.balance(&bob), 100);

        // Branch B (longer): pay carol instead.
        let b1 = block_with(
            genesis.hash(),
            1,
            vec![Transaction::Account(AccountTx::transfer(
                alice, carol, 200, 0,
            ))],
        );
        let b2 = block_with(b1.hash(), 2, vec![]);
        chain.import(b1).unwrap();
        chain.import(b2).unwrap();

        // After the reorg, bob's payment is gone, carol's applied.
        assert_eq!(chain.machine().db.balance(&bob), 0);
        assert_eq!(chain.machine().db.balance(&carol), 200);
        assert_eq!(chain.stats().reorgs, 1);
    }
}
