//! The application state machines plugged under `dcs-chain`:
//! [`AccountMachine`] executes generation-2.0/3.0 blocks (account transfers,
//! deployments, contract calls with gas), and [`UtxoMachine`] executes
//! generation-1.0 blocks over the UTXO set. Both support exact reorg
//! rollback via undo logs.

use crate::exec::{execute_tx, verify_witness, BlockCtx};
use dcs_chain::StateMachine;
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{Amount, Block, GasSchedule, Receipt, Transaction};
use dcs_state::{AccountDb, AccountUndo, UtxoSet, UtxoUndo};

/// The account-model state machine (generations 2.0/3.0).
#[derive(Debug, Default)]
pub struct AccountMachine {
    /// The world state.
    pub db: AccountDb,
    /// Gas schedule applied to every transaction.
    pub schedule: GasSchedule,
    /// Whether witnesses are demanded and verified (block-invalidating).
    pub verify_signatures: bool,
}

impl AccountMachine {
    /// An empty machine with the default gas schedule.
    pub fn new() -> Self {
        AccountMachine::default()
    }

    /// A machine with pre-funded genesis accounts.
    pub fn with_alloc(alloc: &[(Address, Amount)]) -> Self {
        let mut m = AccountMachine::new();
        for (addr, amount) in alloc {
            m.db.credit(addr, *amount);
        }
        m.db.clear_journal();
        m
    }
}

impl StateMachine for AccountMachine {
    type Undo = AccountUndo;

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, AccountUndo), String> {
        let snapshot = self.db.snapshot();
        let ctx = BlockCtx {
            proposer: block.header.proposer,
            timestamp_us: block.header.timestamp_us,
            height: block.header.height,
        };
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            match tx {
                Transaction::Coinbase { to, value, .. } => {
                    self.db.credit(to, *value);
                    receipts.push(Receipt::success(tx.id()));
                }
                Transaction::Account(acct) => {
                    if self.verify_signatures {
                        if let Err(e) = verify_witness(tx) {
                            self.db.rollback(snapshot);
                            return Err(e);
                        }
                    }
                    receipts.push(execute_tx(&mut self.db, acct, tx.id(), &ctx, &self.schedule));
                }
                Transaction::Utxo(_) => {
                    self.db.rollback(snapshot);
                    return Err("UTXO transaction in an account-model ledger".into());
                }
            }
        }
        Ok((receipts, self.db.take_undo(snapshot)))
    }

    fn revert_block(&mut self, undo: AccountUndo) {
        self.db.apply_undo(undo);
    }

    fn state_root(&self) -> Hash256 {
        self.db.root()
    }
}

/// The UTXO-model state machine (generation 1.0).
#[derive(Debug, Default)]
pub struct UtxoMachine {
    /// The unspent-output set.
    pub set: UtxoSet,
}

impl UtxoMachine {
    /// An empty machine (witness verification off; see
    /// [`UtxoSet::with_witness_verification`] for the checked variant).
    pub fn new() -> Self {
        UtxoMachine::default()
    }

    /// A machine whose genesis state holds one output per `(owner, value)`.
    pub fn with_alloc(alloc: &[(Address, Amount)]) -> Self {
        let mut m = UtxoMachine::new();
        for (addr, value) in alloc {
            m.set.mint(*addr, *value);
        }
        m
    }
}

impl StateMachine for UtxoMachine {
    type Undo = Vec<UtxoUndo>;

    fn apply_block(&mut self, block: &Block) -> Result<(Vec<Receipt>, Vec<UtxoUndo>), String> {
        let mut undos = Vec::with_capacity(block.txs.len());
        let mut receipts = Vec::with_capacity(block.txs.len());
        for tx in &block.txs {
            if matches!(tx, Transaction::Account(_)) {
                for undo in undos.into_iter().rev() {
                    self.set.revert(undo);
                }
                return Err("account transaction in a UTXO ledger".into());
            }
            match self.set.apply(tx) {
                Ok((fee, undo)) => {
                    undos.push(undo);
                    let mut r = Receipt::success(tx.id());
                    r.fee_paid = fee;
                    receipts.push(r);
                }
                Err(e) => {
                    for undo in undos.into_iter().rev() {
                        self.set.revert(undo);
                    }
                    return Err(e.to_string());
                }
            }
        }
        Ok((receipts, undos))
    }

    fn revert_block(&mut self, undos: Vec<UtxoUndo>) {
        for undo in undos.into_iter().rev() {
            self.set.revert(undo);
        }
    }

    fn state_root(&self) -> Hash256 {
        self.set.commitment()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_primitives::{AccountTx, BlockHeader, ChainConfig, Seal, TxIn, TxOut, UtxoTx};

    fn block_with(parent: Hash256, height: u64, txs: Vec<Transaction>) -> Block {
        Block::new(
            BlockHeader::new(parent, height, height, Address::from_index(99), Seal::None),
            txs,
        )
    }

    #[test]
    fn account_machine_applies_and_reverts_exactly() {
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let root0 = m.state_root();

        let txs = vec![
            Transaction::Coinbase { to: Address::from_index(99), value: 50, height: 1 },
            Transaction::Account(AccountTx::transfer(alice, bob, 500, 0)),
        ];
        let block = block_with(Hash256::ZERO, 1, txs);
        let (receipts, undo) = m.apply_block(&block).unwrap();
        assert_eq!(receipts.len(), 2);
        assert!(receipts.iter().all(|r| r.status.is_success()));
        assert_eq!(m.db.balance(&bob), 500);
        let root1 = m.state_root();
        assert_ne!(root0, root1);

        m.revert_block(undo);
        assert_eq!(m.state_root(), root0);
        assert_eq!(m.db.balance(&bob), 0);
        assert_eq!(m.db.nonce(&alice), 0);
    }

    #[test]
    fn account_machine_rejects_utxo_tx() {
        let mut m = AccountMachine::new();
        let block = block_with(
            Hash256::ZERO,
            1,
            vec![Transaction::Utxo(UtxoTx { inputs: vec![], outputs: vec![] })],
        );
        let root = m.state_root();
        assert!(m.apply_block(&block).is_err());
        assert_eq!(m.state_root(), root, "failed apply leaves no residue");
    }

    #[test]
    fn account_machine_enforces_witnesses_when_asked() {
        let alice = Address::from_index(1);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        m.verify_signatures = true;
        let block = block_with(
            Hash256::ZERO,
            1,
            vec![Transaction::Account(AccountTx::transfer(alice, Address::from_index(2), 1, 0))],
        );
        let err = m.apply_block(&block).unwrap_err();
        assert!(err.contains("witness"), "{err}");
    }

    #[test]
    fn failed_tx_gets_failed_receipt_but_block_applies() {
        let alice = Address::from_index(1);
        let mut m = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let txs = vec![
            // Wrong nonce: soft failure.
            Transaction::Account(AccountTx::transfer(alice, Address::from_index(2), 1, 7)),
            // Correct one succeeds.
            Transaction::Account(AccountTx::transfer(alice, Address::from_index(2), 1, 0)),
        ];
        let block = block_with(Hash256::ZERO, 1, txs);
        let (receipts, _) = m.apply_block(&block).unwrap();
        assert!(!receipts[0].status.is_success());
        assert!(receipts[1].status.is_success());
    }

    #[test]
    fn utxo_machine_round_trip() {
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let mut m = UtxoMachine::with_alloc(&[(alice, 100)]);
        let root0 = m.state_root();
        let op = m.set.outpoints_of(&alice)[0];

        let spend = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
            outputs: vec![TxOut { value: 90, recipient: bob }],
        });
        let block = block_with(Hash256::ZERO, 1, vec![spend]);
        let (receipts, undo) = m.apply_block(&block).unwrap();
        assert_eq!(receipts[0].fee_paid, 10);
        assert_eq!(m.set.balance_of(&bob), 90);

        m.revert_block(undo);
        assert_eq!(m.state_root(), root0);
        assert_eq!(m.set.balance_of(&alice), 100);
    }

    #[test]
    fn utxo_machine_atomic_on_midblock_failure() {
        let alice = Address::from_index(1);
        let mut m = UtxoMachine::with_alloc(&[(alice, 100)]);
        let root0 = m.state_root();
        let op = m.set.outpoints_of(&alice)[0];
        let good = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
            outputs: vec![TxOut { value: 100, recipient: alice }],
        });
        // Double spend of the same outpoint: invalid.
        let bad = Transaction::Utxo(UtxoTx {
            inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
            outputs: vec![TxOut { value: 100, recipient: alice }],
        });
        let block = block_with(Hash256::ZERO, 1, vec![good, bad]);
        assert!(m.apply_block(&block).is_err());
        assert_eq!(m.state_root(), root0, "partial application rolled back");
    }

    #[test]
    fn chain_integration_reorg_preserves_account_state() {
        // Full integration: Chain<AccountMachine> survives a reorg with
        // exact state restoration.
        use dcs_chain::Chain;
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        let carol = Address::from_index(3);
        let cfg = ChainConfig::hyperledger_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let machine = AccountMachine::with_alloc(&[(alice, 1_000_000)]);
        let mut chain = Chain::new(genesis.clone(), cfg, machine);

        // Branch A: pay bob.
        let a1 = block_with(genesis.hash(), 1, vec![Transaction::Account(
            AccountTx::transfer(alice, bob, 100, 0),
        )]);
        chain.import(a1).unwrap();
        assert_eq!(chain.machine().db.balance(&bob), 100);

        // Branch B (longer): pay carol instead.
        let b1 = block_with(genesis.hash(), 1, vec![Transaction::Account(
            AccountTx::transfer(alice, carol, 200, 0),
        )]);
        let b2 = block_with(b1.hash(), 2, vec![]);
        chain.import(b1).unwrap();
        chain.import(b2).unwrap();

        // After the reorg, bob's payment is gone, carol's applied.
        assert_eq!(chain.machine().db.balance(&bob), 0);
        assert_eq!(chain.machine().db.balance(&carol), 200);
        assert_eq!(chain.stats().reorgs, 1);
    }
}
