//! The transaction executor: turns an [`AccountTx`] into state changes and a
//! [`Receipt`], enforcing the paper's §2.5 gas economics — execution costs
//! are metered per operation and "paid to the miner", failed executions are
//! rolled back but still pay for the gas they burned, and read-only queries
//! ([`query`]) are free because "it only reads existing information".

use crate::vm::{ExecEnv, Vm, VmError};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, Amount, GasSchedule, Receipt, Transaction, TxPayload, TxStatus};
use dcs_state::AccountDb;

/// Block-context parameters for execution.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx {
    /// The block proposer, who collects fees.
    pub proposer: Address,
    /// Block timestamp (µs).
    pub timestamp_us: u64,
    /// Block height.
    pub height: u64,
}

/// Executes one account transaction against `db`.
///
/// Soft failures (bad nonce, insufficient balance, VM revert/out-of-gas)
/// produce a `Failed` receipt — gas burned by the VM is still charged, as in
/// Ethereum. The caller handles hard failures (invalid witnesses) before
/// calling, via [`verify_witness`].
pub fn execute_tx(
    db: &mut AccountDb,
    tx: &AccountTx,
    tx_id: Hash256,
    ctx: &BlockCtx,
    schedule: &GasSchedule,
) -> Receipt {
    let payload_len = match &tx.payload {
        TxPayload::Transfer => 0,
        TxPayload::Deploy(code) => code.len(),
        TxPayload::Call(input) => input.len(),
        TxPayload::Data(data) => data.len(),
    };
    let intrinsic = schedule.intrinsic(payload_len);
    if tx.gas_limit < intrinsic {
        return Receipt::failed(tx_id, "gas limit below intrinsic cost");
    }
    let expected_nonce = db.nonce(&tx.from);
    if tx.nonce != expected_nonce {
        return Receipt::failed(
            tx_id,
            format!("bad nonce: expected {expected_nonce}, got {}", tx.nonce),
        );
    }
    let upfront = tx
        .value
        .saturating_add(tx.gas_limit.saturating_mul(tx.gas_price));
    if db.balance(&tx.from) < upfront {
        return Receipt::failed(tx_id, "insufficient balance for value + gas");
    }

    db.bump_nonce(&tx.from);
    db.debit(&tx.from, upfront).expect("balance checked above");

    // Everything inside this snapshot is reverted on failure; the nonce
    // bump and gas charge above survive.
    let snapshot = db.snapshot();
    let mut logs = Vec::new();
    let mut gas_used = intrinsic;
    let outcome: Result<(), String> = match &tx.payload {
        TxPayload::Transfer => match tx.to {
            Some(to) => {
                db.credit(&to, tx.value);
                Ok(())
            }
            None => Err("transfer without recipient".into()),
        },
        TxPayload::Data(_) => {
            // Anchoring data on-chain: the bytes live in the block; the
            // intrinsic per-byte charge is the whole cost.
            Ok(())
        }
        TxPayload::Deploy(code) => {
            let deploy_gas = schedule.deploy_byte.saturating_mul(code.len() as Amount);
            gas_used = gas_used.saturating_add(deploy_gas);
            if gas_used > tx.gas_limit {
                Err("out of gas during deploy".into())
            } else {
                let addr = tx.contract_address();
                db.set_code(&addr, code.clone());
                db.credit(&addr, tx.value);
                Ok(())
            }
        }
        TxPayload::Call(input) => match tx.to {
            None => Err("call without contract address".into()),
            Some(contract) => {
                db.credit(&contract, tx.value);
                match db.code(&contract).map(<[u8]>::to_vec) {
                    // Calling a plain account is just a transfer.
                    None => Ok(()),
                    Some(code) => {
                        let budget = tx.gas_limit - intrinsic;
                        let mut vm = Vm::new(schedule, budget);
                        let mut env = ExecEnv {
                            db,
                            contract,
                            caller: tx.from,
                            callvalue: tx.value,
                            input,
                            timestamp_us: ctx.timestamp_us,
                            height: ctx.height,
                        };
                        match vm.run(&code, &mut env) {
                            Ok(output) => {
                                gas_used = gas_used.saturating_add(output.gas_used);
                                logs = output.logs;
                                Ok(())
                            }
                            Err(e) => {
                                gas_used = gas_used.saturating_add(vm.gas_used()).min(tx.gas_limit);
                                Err(e.to_string())
                            }
                        }
                    }
                }
            }
        },
    };

    let status = match outcome {
        Ok(()) => TxStatus::Success,
        Err(reason) => {
            db.rollback(snapshot);
            TxStatus::Failed(reason)
        }
    };
    // Settle gas: refund the unused part, pay the proposer for the used part
    // — and, on failure, refund the value that was debited upfront.
    let gas_used = gas_used.min(tx.gas_limit);
    let fee = gas_used.saturating_mul(tx.gas_price);
    let mut refund = (tx.gas_limit - gas_used).saturating_mul(tx.gas_price);
    if !matches!(status, TxStatus::Success) {
        refund = refund.saturating_add(tx.value);
    }
    db.credit(&tx.from, refund);
    db.credit(&ctx.proposer, fee);

    Receipt {
        tx_id,
        status,
        gas_used,
        fee_paid: fee,
        logs,
    }
}

/// Verifies a transaction witness. Returns an error string for
/// block-invalidating problems (missing/forged signature while verification
/// is required).
pub fn verify_witness(tx: &Transaction) -> Result<(), String> {
    let Transaction::Account(acct) = tx else {
        return Ok(());
    };
    let auth = acct.auth.as_ref().ok_or("missing witness")?;
    if auth.pubkey.address() != acct.from {
        return Err("witness key does not match sender".into());
    }
    if !auth.pubkey.verify(&tx.signing_hash(), &auth.signature) {
        return Err("witness signature invalid".into());
    }
    Ok(())
}

/// Batch equivalent of [`verify_witness`] over a whole block body: the
/// stateless witness checks (key/sender match, signature validity) for every
/// account transaction run through `pipeline` — in parallel, and through its
/// signature cache. Accepts exactly the bodies the serial loop accepts, and
/// rejects with the same message the serial loop would produce first.
///
/// Returns the number of signatures checked.
///
/// # Errors
///
/// The first (in block order) witness problem, as a block-invalidating
/// error string.
pub fn prevalidate_witnesses(
    txs: &[Transaction],
    pipeline: &dcs_crypto::VerifyPipeline,
) -> Result<usize, String> {
    let mut hashes = Vec::new();
    let mut refs = Vec::new();
    for tx in txs {
        let Transaction::Account(acct) = tx else {
            continue;
        };
        let auth = acct.auth.as_ref().ok_or("missing witness")?;
        if auth.pubkey.address() != acct.from {
            return Err("witness key does not match sender".into());
        }
        hashes.push(tx.signing_hash());
        refs.push(auth);
    }
    let items: Vec<dcs_crypto::VerifyItem<'_>> = refs
        .iter()
        .zip(&hashes)
        .map(|(auth, hash)| (&auth.pubkey, hash, &auth.signature))
        .collect();
    let verdicts = pipeline.verify_batch_refs(&items);
    if verdicts.contains(&false) {
        return Err("witness signature invalid".into());
    }
    Ok(items.len())
}

/// Executes a read-only contract call: runs the VM against the current
/// state, then rolls every change back. No gas is charged (the paper's
/// "constant" function semantics) — an internal meter still bounds runaway
/// loops.
///
/// # Errors
///
/// Returns the [`VmError`] if the contract traps or the address holds no
/// code.
pub fn query(
    db: &mut AccountDb,
    contract: &Address,
    caller: &Address,
    input: &[u8],
) -> Result<Vec<u8>, VmError> {
    let code = db
        .code(contract)
        .map(<[u8]>::to_vec)
        .ok_or(VmError::BadJump(0))?;
    let schedule = GasSchedule::default();
    let snapshot = db.snapshot();
    let mut vm = Vm::new(&schedule, 100_000_000);
    let mut env = ExecEnv {
        db,
        contract: *contract,
        caller: *caller,
        callvalue: 0,
        input,
        timestamp_us: 0,
        height: 0,
    };
    let result = vm.run(&code, &mut env).map(|o| o.data);
    db.rollback(snapshot);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::KeyPair;
    use dcs_primitives::TxAuth;

    fn ctx() -> BlockCtx {
        BlockCtx {
            proposer: Address::from_index(100),
            timestamp_us: 1_000,
            height: 3,
        }
    }

    fn fund(db: &mut AccountDb, addr: &Address, amount: Amount) {
        db.credit(addr, amount);
        db.clear_journal();
    }

    #[test]
    fn transfer_happy_path_settles_fees() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        fund(&mut db, &alice, 100_000);
        let tx = AccountTx::transfer(alice, bob, 1_000, 0);
        let r = execute_tx(&mut db, &tx, Hash256::ZERO, &ctx(), &GasSchedule::default());
        assert!(r.status.is_success());
        assert_eq!(r.gas_used, 21_000);
        assert_eq!(r.fee_paid, 21_000);
        assert_eq!(db.balance(&bob), 1_000);
        assert_eq!(db.balance(&alice), 100_000 - 1_000 - 21_000);
        assert_eq!(db.balance(&ctx().proposer), 21_000);
        assert_eq!(db.nonce(&alice), 1);
    }

    #[test]
    fn bad_nonce_rejected_without_state_change() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 100_000);
        let tx = AccountTx::transfer(alice, Address::from_index(2), 10, 5);
        let r = execute_tx(&mut db, &tx, Hash256::ZERO, &ctx(), &GasSchedule::default());
        assert!(!r.status.is_success());
        assert_eq!(db.balance(&alice), 100_000);
        assert_eq!(db.nonce(&alice), 0);
    }

    #[test]
    fn insufficient_balance_rejected() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 1_000); // can't cover 21k gas
        let tx = AccountTx::transfer(alice, Address::from_index(2), 10, 0);
        let r = execute_tx(&mut db, &tx, Hash256::ZERO, &ctx(), &GasSchedule::default());
        assert_eq!(
            r.status,
            TxStatus::Failed("insufficient balance for value + gas".into())
        );
    }

    #[test]
    fn deploy_then_call_greeter() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 10_000_000);
        let code = crate::stdlib::greeter();
        let deploy = AccountTx::deploy(alice, code, 0, 1_000_000);
        let contract = deploy.contract_address();
        let r = execute_tx(
            &mut db,
            &deploy,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(db.code(&contract).is_some());

        // setGreeting("hello world") — costs gas.
        let set = AccountTx::call(
            alice,
            contract,
            crate::stdlib::greeter_set_input("hello world"),
            0,
            1,
            1_000_000,
        );
        let r = execute_tx(
            &mut db,
            &set,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );
        assert!(r.status.is_success(), "{:?}", r.status);
        assert!(
            r.gas_used > 21_000 + GasSchedule::default().storage_write,
            "writes cost storage gas, got {}",
            r.gas_used
        );
        assert_eq!(r.logs.len(), 1, "setGreeting emits an event");

        // say() via free query — the paper's "constant" function.
        let out = query(
            &mut db,
            &contract,
            &alice,
            &crate::stdlib::greeter_say_input(),
        )
        .unwrap();
        assert_eq!(
            crate::vm::Word(out.try_into().expect("32 bytes")).to_trimmed_string(),
            "hello world"
        );
    }

    #[test]
    fn reverted_call_rolls_back_but_charges_gas() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 10_000_000);
        // A contract that always reverts.
        let code = crate::assemble("push 0\npush 0\nrevert").unwrap();
        let deploy = AccountTx::deploy(alice, code, 0, 1_000_000);
        let contract = deploy.contract_address();
        execute_tx(
            &mut db,
            &deploy,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );

        let balance_before = db.balance(&alice);
        let call = AccountTx::call(alice, contract, vec![], 500, 1, 100_000);
        let r = execute_tx(
            &mut db,
            &call,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );
        assert!(!r.status.is_success());
        // Value came back; gas did not.
        assert_eq!(db.balance(&alice), balance_before - r.fee_paid);
        assert_eq!(db.balance(&contract), 0, "credited value rolled back");
        assert!(r.gas_used >= 21_000);
    }

    #[test]
    fn out_of_gas_call_fails_but_is_bounded_by_limit() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 10_000_000);
        let loop_code = crate::assemble(":top\njumpdest\npush @top\njump").unwrap();
        let deploy = AccountTx::deploy(alice, loop_code, 0, 1_000_000);
        let contract = deploy.contract_address();
        execute_tx(
            &mut db,
            &deploy,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );

        let call = AccountTx::call(alice, contract, vec![], 0, 1, 30_000);
        let r = execute_tx(
            &mut db,
            &call,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );
        assert!(!r.status.is_success());
        assert_eq!(r.gas_used, 30_000, "never exceeds the limit");
    }

    #[test]
    fn call_to_plain_account_is_a_transfer() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        let bob = Address::from_index(2);
        fund(&mut db, &alice, 10_000_000);
        let call = AccountTx::call(alice, bob, vec![1, 2, 3], 700, 0, 50_000);
        let r = execute_tx(
            &mut db,
            &call,
            Hash256::ZERO,
            &ctx(),
            &GasSchedule::default(),
        );
        assert!(r.status.is_success());
        assert_eq!(db.balance(&bob), 700);
    }

    #[test]
    fn witness_verification() {
        let mut kp = KeyPair::generate([8u8; 32], 2);
        let mut acct = AccountTx::transfer(kp.address(), Address::from_index(2), 5, 0);
        let unsigned = Transaction::Account(acct.clone());
        assert!(verify_witness(&unsigned).is_err());

        let h = unsigned.signing_hash();
        let sig = kp.sign(&h).unwrap();
        acct.auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        let signed = Transaction::Account(acct.clone());
        assert!(verify_witness(&signed).is_ok());

        // Forged sender.
        let mut forged = acct;
        forged.from = Address::from_index(99);
        assert!(verify_witness(&Transaction::Account(forged)).is_err());
    }

    #[test]
    fn data_anchor_costs_per_byte() {
        let mut db = AccountDb::new();
        let alice = Address::from_index(1);
        fund(&mut db, &alice, 10_000_000);
        let mut tx = AccountTx::transfer(alice, Address::from_index(2), 0, 0);
        tx.payload = TxPayload::Data(vec![0u8; 100]);
        tx.gas_limit = 50_000;
        let r = execute_tx(&mut db, &tx, Hash256::ZERO, &ctx(), &GasSchedule::default());
        assert!(r.status.is_success());
        assert_eq!(r.gas_used, 21_000 + 16 * 100);
    }
}
