//! A two-pass assembler for the VM, so the standard contracts read as
//! mnemonics instead of byte soup.
//!
//! Syntax: one instruction per line; `;` starts a comment; `:name` defines a
//! label. `push` accepts decimal, `0x` hex (≤ 8 bytes), `@label` (the
//! label's code offset), or a double-quoted string ≤ 32 bytes (left-aligned
//! word). `dup N` / `swap N` take a depth immediate (0 = top).
//!
//! # Examples
//!
//! ```
//! use dcs_contracts::assemble;
//!
//! let code = assemble(
//!     "push @end\n\
//!      jump\n\
//!      :end\n\
//!      jumpdest\n\
//!      stop",
//! ).unwrap();
//! assert!(!code.is_empty());
//! ```

use crate::vm::{Op, Word};
use std::collections::HashMap;

/// Assembly errors, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Unknown instruction mnemonic.
    UnknownMnemonic {
        /// Offending line.
        line: usize,
        /// The mnemonic text.
        text: String,
    },
    /// A `push`/`dup`/`swap` operand could not be parsed.
    BadOperand {
        /// Offending line.
        line: usize,
        /// The operand text.
        text: String,
    },
    /// A `@label` reference with no matching `:label`.
    UnknownLabel {
        /// Offending line.
        line: usize,
        /// The label name.
        label: String,
    },
    /// The same label defined twice.
    DuplicateLabel {
        /// Offending line.
        line: usize,
        /// The label name.
        label: String,
    },
    /// Instruction missing its required operand.
    MissingOperand {
        /// Offending line.
        line: usize,
    },
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AsmError::UnknownMnemonic { line, text } => {
                write!(f, "line {line}: unknown mnemonic {text:?}")
            }
            AsmError::BadOperand { line, text } => write!(f, "line {line}: bad operand {text:?}"),
            AsmError::UnknownLabel { line, label } => {
                write!(f, "line {line}: unknown label {label:?}")
            }
            AsmError::DuplicateLabel { line, label } => {
                write!(f, "line {line}: duplicate label {label:?}")
            }
            AsmError::MissingOperand { line } => write!(f, "line {line}: missing operand"),
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Item {
    Op(Op),
    Imm(u8),
    PushSmall(u8),
    PushWide(u64),
    PushWord(Word),
    PushLabel(String, usize), // label, line
    Label(String, usize),
}

impl Item {
    fn size(&self) -> usize {
        match self {
            Item::Op(_) => 1,
            Item::Imm(_) => 1,
            Item::PushSmall(_) => 2,
            Item::PushWide(_) => 9,
            Item::PushWord(_) => 33,
            Item::PushLabel(..) => 9,
            Item::Label(..) => 0,
        }
    }
}

fn simple_op(m: &str) -> Option<Op> {
    use Op::*;
    Some(match m {
        "stop" => Stop,
        "add" => Add,
        "sub" => Sub,
        "mul" => Mul,
        "div" => Div,
        "mod" => Mod,
        "lt" => Lt,
        "gt" => Gt,
        "eq" => Eq,
        "iszero" => IsZero,
        "and" => And,
        "or" => Or,
        "xor" => Xor,
        "not" => Not,
        "sha256" => Sha256,
        "address" => Address,
        "caller" => Caller,
        "callvalue" => CallValue,
        "calldatasize" => CallDataSize,
        "calldataload" => CallDataLoad,
        "timestamp" => Timestamp,
        "height" => Height,
        "balance" => Balance,
        "pop" => Pop,
        "jump" => Jump,
        "jumpi" => JumpI,
        "jumpdest" => JumpDest,
        "mload" => MLoad,
        "mstore" => MStore,
        "mstore8" => MStore8,
        "msize" => MSize,
        "sload" => Sload,
        "sstore" => Sstore,
        "log0" => Log0,
        "log1" => Log1,
        "log2" => Log2,
        "transfer" => Transfer,
        "return" => Return,
        "revert" => Revert,
        _ => return None,
    })
}

/// Assembles source text into VM bytecode.
///
/// # Errors
///
/// Any [`AsmError`] with the offending line number.
pub fn assemble(source: &str) -> Result<Vec<u8>, AsmError> {
    let mut items: Vec<Item> = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(label) = line.strip_prefix(':') {
            items.push(Item::Label(label.trim().to_string(), line_no));
            continue;
        }
        let mut parts = line.splitn(2, char::is_whitespace);
        let mnemonic = parts.next().expect("non-empty line");
        let operand = parts.next().map(str::trim);
        match mnemonic {
            "push" => {
                let text = operand.ok_or(AsmError::MissingOperand { line: line_no })?;
                if let Some(label) = text.strip_prefix('@') {
                    items.push(Item::PushLabel(label.to_string(), line_no));
                } else if text.starts_with('"') && text.ends_with('"') && text.len() >= 2 {
                    let s = &text[1..text.len() - 1];
                    if s.len() > 32 {
                        return Err(AsmError::BadOperand {
                            line: line_no,
                            text: text.into(),
                        });
                    }
                    items.push(Item::PushWord(Word::from_str_padded(s)));
                } else if let Some(hex) = text.strip_prefix("0x") {
                    if hex.is_empty()
                        || hex.len() > 64
                        || !hex.bytes().all(|b| b.is_ascii_hexdigit())
                    {
                        return Err(AsmError::BadOperand {
                            line: line_no,
                            text: text.into(),
                        });
                    }
                    if hex.len() <= 16 {
                        let value = u64::from_str_radix(hex, 16).expect("validated hex digits");
                        if value < 256 {
                            items.push(Item::PushSmall(value as u8));
                        } else {
                            items.push(Item::PushWide(value));
                        }
                    } else {
                        // Wide literal (addresses, hashes): a right-aligned
                        // 32-byte word.
                        let mut word = [0u8; 32];
                        let padded = format!("{hex:0>64}");
                        for (i, chunk) in padded.as_bytes().chunks_exact(2).enumerate() {
                            let s = std::str::from_utf8(chunk).expect("ascii hex");
                            word[i] = u8::from_str_radix(s, 16).expect("validated hex digits");
                        }
                        items.push(Item::PushWord(Word(word)));
                    }
                } else {
                    let value = text.parse::<u64>().map_err(|_| AsmError::BadOperand {
                        line: line_no,
                        text: text.into(),
                    })?;
                    if value < 256 {
                        items.push(Item::PushSmall(value as u8));
                    } else {
                        items.push(Item::PushWide(value));
                    }
                }
            }
            "dup" | "swap" => {
                let text = operand.ok_or(AsmError::MissingOperand { line: line_no })?;
                let n: u8 = text.parse().map_err(|_| AsmError::BadOperand {
                    line: line_no,
                    text: text.into(),
                })?;
                items.push(Item::Op(if mnemonic == "dup" { Op::Dup } else { Op::Swap }));
                items.push(Item::Imm(n));
            }
            _ => {
                let op = simple_op(mnemonic).ok_or(AsmError::UnknownMnemonic {
                    line: line_no,
                    text: mnemonic.into(),
                })?;
                items.push(Item::Op(op));
            }
        }
    }

    // Pass 1: label positions.
    let mut labels: HashMap<String, u64> = HashMap::new();
    let mut pc = 0u64;
    for item in &items {
        if let Item::Label(name, line) = item {
            if labels.insert(name.clone(), pc).is_some() {
                return Err(AsmError::DuplicateLabel {
                    line: *line,
                    label: name.clone(),
                });
            }
        }
        pc += item.size() as u64;
    }

    // Pass 2: emit.
    let mut code = Vec::with_capacity(pc as usize);
    for item in items {
        match item {
            Item::Label(..) => {}
            Item::Op(op) => code.push(op as u8),
            Item::Imm(b) => code.push(b),
            Item::PushSmall(v) => {
                code.push(Op::Push1 as u8);
                code.push(v);
            }
            Item::PushWide(v) => {
                code.push(Op::Push8 as u8);
                code.extend(v.to_be_bytes());
            }
            Item::PushWord(w) => {
                code.push(Op::Push32 as u8);
                code.extend(w.0);
            }
            Item::PushLabel(name, line) => {
                let target = *labels.get(&name).ok_or(AsmError::UnknownLabel {
                    line,
                    label: name.clone(),
                })?;
                code.push(Op::Push8 as u8);
                code.extend(target.to_be_bytes());
            }
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_ops() {
        let code = assemble("push 1\npush 2\nadd\nstop").unwrap();
        assert_eq!(
            code,
            vec![
                Op::Push1 as u8,
                1,
                Op::Push1 as u8,
                2,
                Op::Add as u8,
                Op::Stop as u8
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let code = assemble("; header\n\n  push 1 ; inline\nstop\n").unwrap();
        assert_eq!(code, vec![Op::Push1 as u8, 1, Op::Stop as u8]);
    }

    #[test]
    fn labels_resolve_forward_and_backward() {
        let code =
            assemble(":top\njumpdest\npush @end\njump\npush @top\njump\n:end\njumpdest\nstop")
                .unwrap();
        // :top at 0; :end at 0(label)+1(jumpdest)+9+1+9+1 = 21.
        assert_eq!(&code[1..10], &[Op::Push8 as u8, 0, 0, 0, 0, 0, 0, 0, 21]);
        assert_eq!(&code[11..20], &[Op::Push8 as u8, 0, 0, 0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn push_forms() {
        let code = assemble("push 0x10\npush 300\npush \"hi\"").unwrap();
        assert_eq!(code[0], Op::Push1 as u8);
        assert_eq!(code[1], 0x10);
        assert_eq!(code[2], Op::Push8 as u8);
        assert_eq!(code[2..11], [Op::Push8 as u8, 0, 0, 0, 0, 0, 0, 1, 44]);
        assert_eq!(code[11], Op::Push32 as u8);
        assert_eq!(&code[12..14], b"hi");
    }

    #[test]
    fn wide_hex_pushes_full_word_right_aligned() {
        let code = assemble("push 0xaabbccddeeff00112233445566778899aabbccdd").unwrap();
        assert_eq!(code[0], Op::Push32 as u8);
        // 20 bytes right-aligned in the 32-byte immediate.
        assert!(code[1..13].iter().all(|&b| b == 0));
        assert_eq!(code[13], 0xaa);
        assert_eq!(code[32], 0xdd);
    }

    #[test]
    fn dup_swap_immediates() {
        let code = assemble("dup 3\nswap 1").unwrap();
        assert_eq!(code, vec![Op::Dup as u8, 3, Op::Swap as u8, 1]);
    }

    #[test]
    fn errors_reported_with_lines() {
        assert_eq!(
            assemble("frobnicate"),
            Err(AsmError::UnknownMnemonic {
                line: 1,
                text: "frobnicate".into()
            })
        );
        assert_eq!(assemble("push"), Err(AsmError::MissingOperand { line: 1 }));
        assert_eq!(
            assemble("push zzz"),
            Err(AsmError::BadOperand {
                line: 1,
                text: "zzz".into()
            })
        );
        assert_eq!(
            assemble("push @nowhere"),
            Err(AsmError::UnknownLabel {
                line: 1,
                label: "nowhere".into()
            })
        );
        assert_eq!(
            assemble(":a\n:a"),
            Err(AsmError::DuplicateLabel {
                line: 2,
                label: "a".into()
            })
        );
    }

    #[test]
    fn assembled_code_runs() {
        use crate::vm::{ExecEnv, Vm};
        use dcs_primitives::GasSchedule;
        use dcs_state::AccountDb;

        // Compute 6*7 and return it.
        let code = assemble(
            "push 6\n\
             push 7\n\
             mul\n\
             push 0\n\
             swap 0\n\
             mstore\n\
             push 0\n\
             push 32\n\
             return",
        )
        .unwrap();
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        let mut env = ExecEnv {
            db: &mut db,
            contract: dcs_crypto::Address::from_index(1),
            caller: dcs_crypto::Address::from_index(2),
            callvalue: 0,
            input: &[],
            timestamp_us: 0,
            height: 0,
        };
        let out = Vm::new(&schedule, 10_000).run(&code, &mut env).unwrap();
        assert_eq!(Word(out.data.try_into().unwrap()).as_u64(), 42);
    }
}
