//! The standard contract library: the contracts used throughout the
//! examples and experiments, written in VM assembly.
//!
//! Calling convention: input is a 32-byte selector word at offset 0,
//! followed by 32-byte argument words at offsets 32, 64, … Selector 0 is
//! always the read-only query (free via `exec::query`, per §2.5's constant
//! functions).
//!
//! Contracts provided:
//!
//! * [`greeter`] — the paper's §2.5 HelloWorld (`say` / `setGreeting`).
//! * [`counter`] — minimal state machine (get / increment).
//! * [`token`] — a fungible token: `balanceOf` / `transfer` / `mint`.
//! * [`notary`] — Fig. 3's notary: register document hashes to owners.
//! * [`escrow`] — deposit / release / refund with buyer authorization.
//! * [`trade_registry`] — Fig. 3's commodity trade network: register and
//!   trade symbol ownership.
//! * [`crowdfund`] — pledge / claim-if-goal-met (a classic ÐApp, §3.2).

use crate::asm::assemble;
use crate::vm::Word;
use dcs_crypto::Address;

/// Builds call input: a selector word followed by argument words.
pub fn input_with(selector: u8, args: &[Word]) -> Vec<u8> {
    let mut input = Word::from_u64(u64::from(selector)).0.to_vec();
    for a in args {
        input.extend_from_slice(&a.0);
    }
    input
}

fn must_assemble(src: &str) -> Vec<u8> {
    assemble(src).expect("stdlib contract assembles")
}

/// The greeter contract: selector 0 = `say()`, selector 1 =
/// `setGreeting(word)`.
pub fn greeter() -> Vec<u8> {
    must_assemble(
        "; greeter: the paper's HelloWorld
         push @set
         push 0
         calldataload
         push 1
         eq
         jumpi
         ; say(): return storage slot 0
         push 0
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :set
         jumpdest
         push 0
         push 32
         calldataload
         sstore
         push 0
         push 0
         log0
         stop",
    )
}

/// Input for `setGreeting(s)`; `s` must fit one word (≤ 32 bytes).
pub fn greeter_set_input(s: &str) -> Vec<u8> {
    input_with(1, &[Word::from_str_padded(s)])
}

/// Input for the free `say()` query.
pub fn greeter_say_input() -> Vec<u8> {
    input_with(0, &[])
}

/// A counter: selector 0 = `get()`, selector 1 = `increment()`.
pub fn counter() -> Vec<u8> {
    must_assemble(
        "push @inc
         push 0
         calldataload
         push 1
         eq
         jumpi
         push 0
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :inc
         jumpdest
         push 0
         dup 0
         sload
         push 1
         add
         sstore
         stop",
    )
}

/// A fungible token: selector 0 = `balanceOf(addr)`, 1 = `transfer(to,
/// amount)`, 2 = `mint(amount)` (mints to the caller; a demo token).
/// Balances live at storage slot `sha256(addr_word)`.
pub fn token() -> Vec<u8> {
    must_assemble(
        "push @transfer
         push 0
         calldataload
         push 1
         eq
         jumpi
         push @mint
         push 0
         calldataload
         push 2
         eq
         jumpi
         ; balanceOf(addr@32)
         push 0
         push 32
         calldataload
         mstore
         push 0
         push 32
         sha256
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :transfer
         jumpdest
         ; from_slot = sha256(caller)
         push 0
         caller
         mstore
         push 0
         push 32
         sha256
         ; amount
         push 64
         calldataload
         ; require balance >= amount
         dup 1
         sload
         dup 1
         lt
         push @insufficient
         swap 0
         jumpi
         ; from balance -= amount
         dup 1
         sload
         dup 1
         sub
         dup 2
         swap 0
         sstore
         ; to_slot = sha256(to)
         push 0
         push 32
         calldataload
         mstore
         push 0
         push 32
         sha256
         ; to balance += amount
         dup 0
         sload
         dup 2
         add
         sstore
         push 0
         push 0
         log0
         stop
         :insufficient
         jumpdest
         push 0
         push 0
         revert
         :mint
         jumpdest
         push 0
         caller
         mstore
         push 0
         push 32
         sha256
         dup 0
         sload
         push 32
         calldataload
         add
         sstore
         stop",
    )
}

/// Input builders for the token contract.
pub fn token_balance_input(addr: &Address) -> Vec<u8> {
    input_with(0, &[Word::from_address(addr)])
}

/// Input for `transfer(to, amount)`.
pub fn token_transfer_input(to: &Address, amount: u64) -> Vec<u8> {
    input_with(1, &[Word::from_address(to), Word::from_u64(amount)])
}

/// Input for `mint(amount)`.
pub fn token_mint_input(amount: u64) -> Vec<u8> {
    input_with(2, &[Word::from_u64(amount)])
}

/// The notary of Fig. 3: selector 0 = `getDocument(hash)` → owner word,
/// selector 1 = `register(hash)` (reverts if already registered).
pub fn notary() -> Vec<u8> {
    must_assemble(
        "push @register
         push 0
         calldataload
         push 1
         eq
         jumpi
         push 32
         calldataload
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :register
         jumpdest
         push 32
         calldataload
         dup 0
         sload
         push @taken
         swap 0
         jumpi
         caller
         sstore
         push 0
         push 0
         log0
         stop
         :taken
         jumpdest
         push 0
         push 0
         revert",
    )
}

/// Input for `register(doc_hash)`.
pub fn notary_register_input(doc: &dcs_crypto::Hash256) -> Vec<u8> {
    input_with(1, &[Word::from_hash(doc)])
}

/// Input for `getDocument(doc_hash)`.
pub fn notary_get_input(doc: &dcs_crypto::Hash256) -> Vec<u8> {
    input_with(0, &[Word::from_hash(doc)])
}

/// Escrow: selector 0 = `amount()`, 1 = `deposit()` (payable), 2 =
/// `release(seller)` (buyer only), 3 = `refund()` (buyer only).
pub fn escrow() -> Vec<u8> {
    must_assemble(
        "push @deposit
         push 0
         calldataload
         push 1
         eq
         jumpi
         push @release
         push 0
         calldataload
         push 2
         eq
         jumpi
         push @refund
         push 0
         calldataload
         push 3
         eq
         jumpi
         push 2
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :deposit
         jumpdest
         push 1
         sload
         push @fail
         swap 0
         jumpi
         push 1
         caller
         sstore
         push 2
         callvalue
         sstore
         stop
         :release
         jumpdest
         push 1
         sload
         caller
         eq
         iszero
         push @fail
         swap 0
         jumpi
         push 32
         calldataload
         push 2
         sload
         transfer
         push 1
         push 0
         sstore
         push 2
         push 0
         sstore
         stop
         :refund
         jumpdest
         push 1
         sload
         caller
         eq
         iszero
         push @fail
         swap 0
         jumpi
         push 1
         sload
         push 2
         sload
         transfer
         push 1
         push 0
         sstore
         push 2
         push 0
         sstore
         stop
         :fail
         jumpdest
         push 0
         push 0
         revert",
    )
}

/// The trade-network registry of Fig. 3: selector 0 = `ownerOf(symbol)`,
/// 1 = `register(symbol)`, 2 = `trade(symbol, newOwner)` (owner only).
pub fn trade_registry() -> Vec<u8> {
    must_assemble(
        "push @register
         push 0
         calldataload
         push 1
         eq
         jumpi
         push @trade
         push 0
         calldataload
         push 2
         eq
         jumpi
         push 32
         calldataload
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :register
         jumpdest
         push 32
         calldataload
         dup 0
         sload
         push @fail
         swap 0
         jumpi
         caller
         sstore
         push 0
         push 0
         log0
         stop
         :trade
         jumpdest
         push 32
         calldataload
         dup 0
         sload
         caller
         eq
         iszero
         push @fail
         swap 0
         jumpi
         push 64
         calldataload
         sstore
         push 0
         push 0
         log0
         stop
         :fail
         jumpdest
         push 0
         push 0
         revert",
    )
}

/// Input for `register(symbol)` / `ownerOf(symbol)` / `trade(symbol, to)`.
pub fn trade_input(selector: u8, symbol: &str, new_owner: Option<&Address>) -> Vec<u8> {
    let mut args = vec![Word::from_str_padded(symbol)];
    if let Some(a) = new_owner {
        args.push(Word::from_address(a));
    }
    input_with(selector, &args)
}

/// Crowdfunding: selector 0 = `total()`, 1 = `pledge()` (payable), 2 =
/// `claim(to, goal)` (pays out if the goal is met, else reverts).
pub fn crowdfund() -> Vec<u8> {
    must_assemble(
        "push @pledge
         push 0
         calldataload
         push 1
         eq
         jumpi
         push @claim
         push 0
         calldataload
         push 2
         eq
         jumpi
         push 0
         sload
         push 0
         swap 0
         mstore
         push 0
         push 32
         return
         :pledge
         jumpdest
         push 0
         dup 0
         sload
         callvalue
         add
         sstore
         push 0
         caller
         mstore
         push 0
         push 32
         sha256
         dup 0
         sload
         callvalue
         add
         sstore
         push 0
         push 0
         log0
         stop
         :claim
         jumpdest
         push 0
         sload
         dup 0
         push 64
         calldataload
         lt
         push @fail
         swap 0
         jumpi
         push 32
         calldataload
         swap 0
         transfer
         push 0
         push 0
         sstore
         stop
         :fail
         jumpdest
         push 0
         push 0
         revert",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute_tx, query, BlockCtx};
    use dcs_primitives::{AccountTx, GasSchedule};
    use dcs_state::AccountDb;

    struct World {
        db: AccountDb,
        schedule: GasSchedule,
        nonces: std::collections::HashMap<Address, u64>,
    }

    impl World {
        fn new() -> Self {
            World {
                db: AccountDb::new(),
                schedule: GasSchedule::default(),
                nonces: std::collections::HashMap::new(),
            }
        }

        fn fund(&mut self, who: &Address, amount: u64) {
            self.db.credit(who, amount);
        }

        fn deploy(&mut self, who: &Address, code: Vec<u8>) -> Address {
            let nonce = self.next_nonce(who);
            let tx = AccountTx::deploy(*who, code, nonce, 10_000_000);
            let contract = tx.contract_address();
            let r = execute_tx(
                &mut self.db,
                &tx,
                dcs_crypto::Hash256::ZERO,
                &Self::ctx(),
                &self.schedule,
            );
            assert!(r.status.is_success(), "deploy failed: {:?}", r.status);
            contract
        }

        fn call(
            &mut self,
            who: &Address,
            contract: &Address,
            input: Vec<u8>,
            value: u64,
        ) -> dcs_primitives::Receipt {
            let nonce = self.next_nonce(who);
            let tx = AccountTx::call(*who, *contract, input, value, nonce, 10_000_000);
            execute_tx(
                &mut self.db,
                &tx,
                dcs_crypto::Hash256::ZERO,
                &Self::ctx(),
                &self.schedule,
            )
        }

        fn query_u64(&mut self, contract: &Address, input: Vec<u8>) -> u64 {
            let out = query(&mut self.db, contract, &Address::ZERO, &input).unwrap();
            Word(out.try_into().expect("32 bytes")).as_u64()
        }

        fn next_nonce(&mut self, who: &Address) -> u64 {
            let e = self.nonces.entry(*who).or_insert(0);
            let n = *e;
            *e += 1;
            n
        }

        fn ctx() -> BlockCtx {
            BlockCtx {
                proposer: Address::from_index(1000),
                timestamp_us: 0,
                height: 1,
            }
        }
    }

    fn alice() -> Address {
        Address::from_index(1)
    }
    fn bob() -> Address {
        Address::from_index(2)
    }

    #[test]
    fn counter_increments() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        let c = w.deploy(&alice(), counter());
        assert_eq!(w.query_u64(&c, input_with(0, &[])), 0);
        for _ in 0..3 {
            let r = w.call(&alice(), &c, input_with(1, &[]), 0);
            assert!(r.status.is_success(), "{:?}", r.status);
        }
        assert_eq!(w.query_u64(&c, input_with(0, &[])), 3);
    }

    #[test]
    fn token_mint_transfer_balance() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        w.fund(&bob(), 100_000_000);
        let t = w.deploy(&alice(), token());

        let r = w.call(&alice(), &t, token_mint_input(1000), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.query_u64(&t, token_balance_input(&alice())), 1000);

        let r = w.call(&alice(), &t, token_transfer_input(&bob(), 400), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.query_u64(&t, token_balance_input(&alice())), 600);
        assert_eq!(w.query_u64(&t, token_balance_input(&bob())), 400);

        // Overdraft reverts and changes nothing.
        let r = w.call(&alice(), &t, token_transfer_input(&bob(), 601), 0);
        assert!(!r.status.is_success());
        assert_eq!(w.query_u64(&t, token_balance_input(&alice())), 600);
        assert_eq!(w.query_u64(&t, token_balance_input(&bob())), 400);
    }

    #[test]
    fn notary_registers_once() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        w.fund(&bob(), 100_000_000);
        let n = w.deploy(&alice(), notary());
        let doc = dcs_crypto::sha256(b"land deed #42");

        let r = w.call(&alice(), &n, notary_register_input(&doc), 0);
        assert!(r.status.is_success(), "{:?}", r.status);

        // Owner recorded.
        let out = query(&mut w.db, &n, &Address::ZERO, &notary_get_input(&doc)).unwrap();
        assert_eq!(Word(out.try_into().unwrap()).as_address(), alice());

        // Second registration (even by the owner) reverts.
        let r = w.call(&bob(), &n, notary_register_input(&doc), 0);
        assert!(!r.status.is_success());
    }

    #[test]
    fn escrow_release_flow() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        let e = w.deploy(&alice(), escrow());

        // Alice deposits 5000 for Bob.
        let r = w.call(&alice(), &e, input_with(1, &[]), 5_000);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.query_u64(&e, input_with(0, &[])), 5_000);
        assert_eq!(w.db.balance(&e), 5_000);

        // Bob cannot release to himself.
        w.fund(&bob(), 100_000_000);
        let r = w.call(&bob(), &e, input_with(2, &[Word::from_address(&bob())]), 0);
        assert!(!r.status.is_success(), "only the buyer may release");

        // Alice releases to Bob.
        let bob_before = w.db.balance(&bob());
        let r = w.call(
            &alice(),
            &e,
            input_with(2, &[Word::from_address(&bob())]),
            0,
        );
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.db.balance(&bob()), bob_before + 5_000);
        assert_eq!(w.query_u64(&e, input_with(0, &[])), 0);
    }

    #[test]
    fn escrow_refund_flow() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        let e = w.deploy(&alice(), escrow());
        w.call(&alice(), &e, input_with(1, &[]), 3_000);
        let before = w.db.balance(&alice());
        let r = w.call(&alice(), &e, input_with(3, &[]), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.db.balance(&alice()), before + 3_000 - r.fee_paid);
    }

    #[test]
    fn trade_registry_ownership_flow() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        w.fund(&bob(), 100_000_000);
        let t = w.deploy(&alice(), trade_registry());

        let r = w.call(&alice(), &t, trade_input(1, "WHEAT", None), 0);
        assert!(r.status.is_success(), "{:?}", r.status);

        // Bob cannot trade a commodity he doesn't own.
        let r = w.call(&bob(), &t, trade_input(2, "WHEAT", Some(&bob())), 0);
        assert!(!r.status.is_success());

        // Alice trades it to Bob; ownership moves.
        let r = w.call(&alice(), &t, trade_input(2, "WHEAT", Some(&bob())), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
        let out = query(
            &mut w.db,
            &t,
            &Address::ZERO,
            &trade_input(0, "WHEAT", None),
        )
        .unwrap();
        assert_eq!(Word(out.try_into().unwrap()).as_address(), bob());

        // Now Bob can trade it onward.
        let carol = Address::from_index(3);
        w.fund(&carol, 1);
        let r = w.call(&bob(), &t, trade_input(2, "WHEAT", Some(&carol)), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
    }

    #[test]
    fn crowdfund_claim_requires_goal() {
        let mut w = World::new();
        w.fund(&alice(), 100_000_000);
        w.fund(&bob(), 100_000_000);
        let c = w.deploy(&alice(), crowdfund());

        w.call(&alice(), &c, input_with(1, &[]), 600);
        w.call(&bob(), &c, input_with(1, &[]), 300);
        assert_eq!(w.query_u64(&c, input_with(0, &[])), 900);

        // Goal 1000 not met → revert.
        let beneficiary = Address::from_index(9);
        let claim =
            |goal: u64| input_with(2, &[Word::from_address(&beneficiary), Word::from_u64(goal)]);
        let r = w.call(&alice(), &c, claim(1000), 0);
        assert!(!r.status.is_success());

        // Goal 900 met → payout.
        let r = w.call(&alice(), &c, claim(900), 0);
        assert!(r.status.is_success(), "{:?}", r.status);
        assert_eq!(w.db.balance(&beneficiary), 900);
        assert_eq!(w.query_u64(&c, input_with(0, &[])), 0);
    }
}
