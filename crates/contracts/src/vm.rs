//! A gas-metered stack virtual machine with 256-bit words, contract storage,
//! event logs, and value transfer — the platform's execution engine,
//! structurally mirroring the EVM the paper's generation-2.0 systems run.

use dcs_crypto::{sha256, Address, Hash256};
use dcs_primitives::{Amount, GasSchedule, LogEntry};
use dcs_state::AccountDb;

/// Stack depth limit (as in the EVM).
const STACK_LIMIT: usize = 1024;
/// Memory growth limit per execution, bytes.
const MEMORY_LIMIT: usize = 1 << 20;

/// A 256-bit machine word, big-endian.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Word(pub [u8; 32]);

impl Word {
    /// The zero word (also "false").
    pub const ZERO: Word = Word([0u8; 32]);

    /// Builds a word from a `u64` (right-aligned, big-endian).
    pub fn from_u64(v: u64) -> Self {
        let mut w = [0u8; 32];
        w[24..].copy_from_slice(&v.to_be_bytes());
        Word(w)
    }

    /// Builds a word from a `u128` (right-aligned).
    pub fn from_u128(v: u128) -> Self {
        let mut w = [0u8; 32];
        w[16..].copy_from_slice(&v.to_be_bytes());
        Word(w)
    }

    /// Low 64 bits (truncating).
    pub fn as_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[24..].try_into().expect("8 bytes"))
    }

    /// Low 128 bits (truncating).
    pub fn as_u128(&self) -> u128 {
        u128::from_be_bytes(self.0[16..].try_into().expect("16 bytes"))
    }

    /// Embeds an address (right-aligned).
    pub fn from_address(a: &Address) -> Self {
        let mut w = [0u8; 32];
        w[12..].copy_from_slice(a.as_bytes());
        Word(w)
    }

    /// Extracts the address from the low 20 bytes.
    pub fn as_address(&self) -> Address {
        let mut a = [0u8; 20];
        a.copy_from_slice(&self.0[12..]);
        Address::from_bytes(a)
    }

    /// Reinterprets the word as a digest (e.g. a storage slot key).
    pub fn as_hash(&self) -> Hash256 {
        Hash256::from_bytes(self.0)
    }

    /// Builds a word from a digest.
    pub fn from_hash(h: &Hash256) -> Self {
        Word(h.into_bytes())
    }

    /// A short string (≤ 32 bytes) left-aligned in a word, zero-padded.
    ///
    /// # Panics
    ///
    /// Panics if `s` exceeds 32 bytes.
    pub fn from_str_padded(s: &str) -> Self {
        assert!(s.len() <= 32, "string literal too long for a word: {s:?}");
        let mut w = [0u8; 32];
        w[..s.len()].copy_from_slice(s.as_bytes());
        Word(w)
    }

    /// Recovers a left-aligned string, trimming trailing zeros.
    pub fn to_trimmed_string(self) -> String {
        let end = self.0.iter().position(|&b| b == 0).unwrap_or(32);
        String::from_utf8_lossy(&self.0[..end]).into_owned()
    }

    /// True when every byte is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&b| b == 0)
    }
}

/// VM opcodes. Immediate operands follow the opcode byte inline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Op {
    Stop = 0x00,
    Add = 0x01,
    Sub = 0x02,
    Mul = 0x03,
    Div = 0x04,
    Mod = 0x05,
    Lt = 0x10,
    Gt = 0x11,
    Eq = 0x12,
    IsZero = 0x13,
    And = 0x14,
    Or = 0x15,
    Xor = 0x16,
    Not = 0x17,
    Sha256 = 0x20,
    Address = 0x30,
    Caller = 0x31,
    CallValue = 0x32,
    CallDataSize = 0x33,
    CallDataLoad = 0x34,
    Timestamp = 0x35,
    Height = 0x36,
    Balance = 0x37,
    Pop = 0x40,
    Push32 = 0x50,
    Push8 = 0x51,
    Push1 = 0x52,
    Dup = 0x53,
    Swap = 0x54,
    Jump = 0x5a,
    JumpI = 0x5b,
    JumpDest = 0x5c,
    MLoad = 0x70,
    MStore = 0x71,
    MStore8 = 0x72,
    MSize = 0x73,
    Sload = 0x80,
    Sstore = 0x81,
    Log0 = 0x90,
    Log1 = 0x91,
    Log2 = 0x92,
    Transfer = 0xa0,
    Return = 0xf0,
    Revert = 0xf1,
}

impl Op {
    /// Decodes an opcode byte.
    pub fn from_byte(b: u8) -> Option<Op> {
        use Op::*;
        Some(match b {
            0x00 => Stop,
            0x01 => Add,
            0x02 => Sub,
            0x03 => Mul,
            0x04 => Div,
            0x05 => Mod,
            0x10 => Lt,
            0x11 => Gt,
            0x12 => Eq,
            0x13 => IsZero,
            0x14 => And,
            0x15 => Or,
            0x16 => Xor,
            0x17 => Not,
            0x20 => Sha256,
            0x30 => Address,
            0x31 => Caller,
            0x32 => CallValue,
            0x33 => CallDataSize,
            0x34 => CallDataLoad,
            0x35 => Timestamp,
            0x36 => Height,
            0x37 => Balance,
            0x40 => Pop,
            0x50 => Push32,
            0x51 => Push8,
            0x52 => Push1,
            0x53 => Dup,
            0x54 => Swap,
            0x5a => Jump,
            0x5b => JumpI,
            0x5c => JumpDest,
            0x70 => MLoad,
            0x71 => MStore,
            0x72 => MStore8,
            0x73 => MSize,
            0x80 => Sload,
            0x81 => Sstore,
            0x90 => Log0,
            0x91 => Log1,
            0x92 => Log2,
            0xa0 => Transfer,
            0xf0 => Return,
            0xf1 => Revert,
            _ => return None,
        })
    }
}

/// VM execution failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// Popped an empty stack.
    StackUnderflow,
    /// Exceeded the 1024-entry stack.
    StackOverflow,
    /// The gas meter ran dry.
    OutOfGas {
        /// Gas available.
        limit: Amount,
    },
    /// Jumped to a non-`JumpDest` position.
    BadJump(usize),
    /// Undecodable opcode byte.
    BadOpcode(u8),
    /// Immediate operand ran past the end of code.
    TruncatedCode,
    /// The contract executed `REVERT` with this payload.
    Reverted(Vec<u8>),
    /// Memory access beyond the per-execution limit.
    MemoryLimit(usize),
    /// `TRANSFER` with insufficient contract balance.
    InsufficientBalance,
}

impl core::fmt::Display for VmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VmError::StackUnderflow => write!(f, "stack underflow"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::OutOfGas { limit } => write!(f, "out of gas (limit {limit})"),
            VmError::BadJump(pc) => write!(f, "jump to invalid destination {pc}"),
            VmError::BadOpcode(b) => write!(f, "bad opcode 0x{b:02x}"),
            VmError::TruncatedCode => write!(f, "immediate operand past end of code"),
            VmError::Reverted(_) => write!(f, "execution reverted"),
            VmError::MemoryLimit(n) => write!(f, "memory access at {n} beyond limit"),
            VmError::InsufficientBalance => write!(f, "insufficient balance for transfer"),
        }
    }
}

impl std::error::Error for VmError {}

/// Everything an execution can see and touch.
#[derive(Debug)]
pub struct ExecEnv<'a> {
    /// The world state (storage, balances).
    pub db: &'a mut AccountDb,
    /// The executing contract's address.
    pub contract: Address,
    /// The transaction sender.
    pub caller: Address,
    /// Value sent with the call.
    pub callvalue: Amount,
    /// Call input data.
    pub input: &'a [u8],
    /// Block timestamp (µs).
    pub timestamp_us: u64,
    /// Block height.
    pub height: u64,
}

/// The result of a successful execution.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ExecOutput {
    /// Bytes returned by `RETURN` (empty for `STOP`).
    pub data: Vec<u8>,
    /// Events emitted by `LOG*`.
    pub logs: Vec<LogEntry>,
    /// Gas consumed.
    pub gas_used: Amount,
}

/// The virtual machine. One instance executes one call frame.
#[derive(Debug)]
pub struct Vm<'s> {
    schedule: &'s GasSchedule,
    gas_limit: Amount,
    gas_used: Amount,
}

impl<'s> Vm<'s> {
    /// Creates a VM with a gas budget.
    pub fn new(schedule: &'s GasSchedule, gas_limit: Amount) -> Self {
        Vm {
            schedule,
            gas_limit,
            gas_used: 0,
        }
    }

    fn charge(&mut self, amount: Amount) -> Result<(), VmError> {
        self.gas_used = self.gas_used.saturating_add(amount);
        if self.gas_used > self.gas_limit {
            return Err(VmError::OutOfGas {
                limit: self.gas_limit,
            });
        }
        Ok(())
    }

    /// Runs `code` in `env` to completion.
    ///
    /// # Errors
    ///
    /// Any [`VmError`]; the caller is responsible for rolling back state
    /// (see `exec::execute_tx`, which snapshots around every call). Gas
    /// consumed up to the failure is reported via [`Vm::gas_used`].
    pub fn run(&mut self, code: &[u8], env: &mut ExecEnv<'_>) -> Result<ExecOutput, VmError> {
        let jumpdests: Vec<bool> = Self::find_jumpdests(code);
        let mut stack: Vec<Word> = Vec::with_capacity(64);
        let mut memory: Vec<u8> = Vec::new();
        let mut logs: Vec<LogEntry> = Vec::new();
        let mut pc = 0usize;

        macro_rules! pop {
            () => {
                stack.pop().ok_or(VmError::StackUnderflow)?
            };
        }
        macro_rules! push {
            ($w:expr) => {{
                if stack.len() >= STACK_LIMIT {
                    return Err(VmError::StackOverflow);
                }
                stack.push($w);
            }};
        }

        fn mem_grow(memory: &mut Vec<u8>, end: usize) -> Result<(), VmError> {
            if end > MEMORY_LIMIT {
                return Err(VmError::MemoryLimit(end));
            }
            if memory.len() < end {
                memory.resize(end, 0);
            }
            Ok(())
        }

        loop {
            let byte = *code.get(pc).ok_or(VmError::TruncatedCode)?;
            let op = Op::from_byte(byte).ok_or(VmError::BadOpcode(byte))?;
            pc += 1;
            match op {
                Op::Stop => {
                    return Ok(ExecOutput {
                        data: Vec::new(),
                        logs,
                        gas_used: self.gas_used,
                    })
                }
                Op::Add | Op::Sub | Op::Mul | Op::Div | Op::Mod => {
                    self.charge(self.schedule.op_base)?;
                    let b = pop!().as_u128();
                    let a = pop!().as_u128();
                    let r = match op {
                        Op::Add => a.wrapping_add(b),
                        Op::Sub => a.wrapping_sub(b),
                        Op::Mul => a.wrapping_mul(b),
                        Op::Div => a.checked_div(b).unwrap_or(0),
                        Op::Mod => a.checked_rem(b).unwrap_or(0),
                        _ => unreachable!(),
                    };
                    push!(Word::from_u128(r));
                }
                Op::Lt | Op::Gt | Op::Eq => {
                    self.charge(self.schedule.op_base)?;
                    let b = pop!();
                    let a = pop!();
                    let r = match op {
                        Op::Lt => a.0 < b.0,
                        Op::Gt => a.0 > b.0,
                        Op::Eq => a == b,
                        _ => unreachable!(),
                    };
                    push!(Word::from_u64(u64::from(r)));
                }
                Op::IsZero => {
                    self.charge(self.schedule.op_base)?;
                    let a = pop!();
                    push!(Word::from_u64(u64::from(a.is_zero())));
                }
                Op::And | Op::Or | Op::Xor => {
                    self.charge(self.schedule.op_base)?;
                    let b = pop!();
                    let a = pop!();
                    let mut r = [0u8; 32];
                    for (r, (a, b)) in r.iter_mut().zip(a.0.iter().zip(&b.0)) {
                        *r = match op {
                            Op::And => a & b,
                            Op::Or => a | b,
                            Op::Xor => a ^ b,
                            _ => unreachable!(),
                        };
                    }
                    push!(Word(r));
                }
                Op::Not => {
                    self.charge(self.schedule.op_base)?;
                    let a = pop!();
                    let mut r = [0u8; 32];
                    for (r, a) in r.iter_mut().zip(&a.0) {
                        *r = !a;
                    }
                    push!(Word(r));
                }
                Op::Sha256 => {
                    self.charge(self.schedule.hash)?;
                    let len = pop!().as_u64() as usize;
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + len)?;
                    push!(Word::from_hash(&sha256(&memory[off..off + len])));
                }
                Op::Address => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_address(&env.contract));
                }
                Op::Caller => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_address(&env.caller));
                }
                Op::CallValue => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_u64(env.callvalue));
                }
                Op::CallDataSize => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_u64(env.input.len() as u64));
                }
                Op::CallDataLoad => {
                    self.charge(self.schedule.op_base)?;
                    let off = pop!().as_u64() as usize;
                    let mut w = [0u8; 32];
                    for (i, w) in w.iter_mut().enumerate() {
                        *w = env.input.get(off + i).copied().unwrap_or(0);
                    }
                    push!(Word(w));
                }
                Op::Timestamp => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_u64(env.timestamp_us));
                }
                Op::Height => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_u64(env.height));
                }
                Op::Balance => {
                    self.charge(self.schedule.storage_read)?;
                    let addr = pop!().as_address();
                    push!(Word::from_u64(env.db.balance(&addr)));
                }
                Op::Pop => {
                    self.charge(self.schedule.op_base)?;
                    pop!();
                }
                Op::Push32 => {
                    self.charge(self.schedule.op_base)?;
                    let bytes = code.get(pc..pc + 32).ok_or(VmError::TruncatedCode)?;
                    pc += 32;
                    let mut w = [0u8; 32];
                    w.copy_from_slice(bytes);
                    push!(Word(w));
                }
                Op::Push8 => {
                    self.charge(self.schedule.op_base)?;
                    let bytes = code.get(pc..pc + 8).ok_or(VmError::TruncatedCode)?;
                    pc += 8;
                    push!(Word::from_u64(u64::from_be_bytes(
                        bytes.try_into().expect("8 bytes")
                    )));
                }
                Op::Push1 => {
                    self.charge(self.schedule.op_base)?;
                    let b = *code.get(pc).ok_or(VmError::TruncatedCode)?;
                    pc += 1;
                    push!(Word::from_u64(u64::from(b)));
                }
                Op::Dup => {
                    self.charge(self.schedule.op_base)?;
                    let n = *code.get(pc).ok_or(VmError::TruncatedCode)? as usize;
                    pc += 1;
                    if stack.len() < n + 1 {
                        return Err(VmError::StackUnderflow);
                    }
                    let w = stack[stack.len() - 1 - n];
                    push!(w);
                }
                Op::Swap => {
                    self.charge(self.schedule.op_base)?;
                    let n = *code.get(pc).ok_or(VmError::TruncatedCode)? as usize;
                    pc += 1;
                    let top = stack.len().checked_sub(1).ok_or(VmError::StackUnderflow)?;
                    let other = top.checked_sub(n + 1).map(|_| top - n - 1);
                    // swap top with element n+1 below it
                    let other = other.ok_or(VmError::StackUnderflow)?;
                    stack.swap(top, other);
                }
                Op::Jump => {
                    self.charge(self.schedule.op_base)?;
                    let dst = pop!().as_u64() as usize;
                    if !jumpdests.get(dst).copied().unwrap_or(false) {
                        return Err(VmError::BadJump(dst));
                    }
                    pc = dst;
                }
                Op::JumpI => {
                    self.charge(self.schedule.op_base)?;
                    let cond = pop!();
                    let dst = pop!().as_u64() as usize;
                    if !cond.is_zero() {
                        if !jumpdests.get(dst).copied().unwrap_or(false) {
                            return Err(VmError::BadJump(dst));
                        }
                        pc = dst;
                    }
                }
                Op::JumpDest => {
                    self.charge(self.schedule.op_base)?;
                }
                Op::MLoad => {
                    self.charge(self.schedule.op_base)?;
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + 32)?;
                    let mut w = [0u8; 32];
                    w.copy_from_slice(&memory[off..off + 32]);
                    push!(Word(w));
                }
                Op::MStore => {
                    self.charge(self.schedule.op_base)?;
                    let w = pop!();
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + 32)?;
                    memory[off..off + 32].copy_from_slice(&w.0);
                }
                Op::MStore8 => {
                    self.charge(self.schedule.op_base)?;
                    let w = pop!();
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + 1)?;
                    memory[off] = w.0[31];
                }
                Op::MSize => {
                    self.charge(self.schedule.op_base)?;
                    push!(Word::from_u64(memory.len() as u64));
                }
                Op::Sload => {
                    self.charge(self.schedule.storage_read)?;
                    let slot = pop!().as_hash();
                    let value = env
                        .db
                        .storage(&env.contract, &slot)
                        .map(|bytes| {
                            let mut w = [0u8; 32];
                            let n = bytes.len().min(32);
                            w[..n].copy_from_slice(&bytes[..n]);
                            Word(w)
                        })
                        .unwrap_or(Word::ZERO);
                    push!(value);
                }
                Op::Sstore => {
                    self.charge(self.schedule.storage_write)?;
                    let value = pop!();
                    let slot = pop!().as_hash();
                    if value.is_zero() {
                        env.db.set_storage(&env.contract, &slot, None);
                    } else {
                        env.db
                            .set_storage(&env.contract, &slot, Some(value.0.to_vec()));
                    }
                }
                Op::Log0 | Op::Log1 | Op::Log2 => {
                    let n_topics = match op {
                        Op::Log0 => 0,
                        Op::Log1 => 1,
                        _ => 2,
                    };
                    let mut topics = Vec::with_capacity(n_topics);
                    for _ in 0..n_topics {
                        topics.push(pop!().as_hash());
                    }
                    let len = pop!().as_u64() as usize;
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + len)?;
                    self.charge(self.schedule.log_base + self.schedule.log_byte * len as Amount)?;
                    logs.push(LogEntry {
                        contract: env.contract,
                        topics,
                        data: memory[off..off + len].to_vec(),
                    });
                }
                Op::Transfer => {
                    self.charge(self.schedule.transfer)?;
                    let amount = pop!().as_u64();
                    let to = pop!().as_address();
                    env.db
                        .transfer(&env.contract, &to, amount)
                        .map_err(|_| VmError::InsufficientBalance)?;
                }
                Op::Return => {
                    let len = pop!().as_u64() as usize;
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + len)?;
                    return Ok(ExecOutput {
                        data: memory[off..off + len].to_vec(),
                        logs,
                        gas_used: self.gas_used,
                    });
                }
                Op::Revert => {
                    let len = pop!().as_u64() as usize;
                    let off = pop!().as_u64() as usize;
                    mem_grow(&mut memory, off + len)?;
                    return Err(VmError::Reverted(memory[off..off + len].to_vec()));
                }
            }
        }
    }

    /// Gas consumed so far (final after [`Vm::run`] returns).
    pub fn gas_used(&self) -> Amount {
        self.gas_used
    }

    /// Marks valid jump targets, skipping immediate operand bytes so data
    /// can't be jumped into.
    fn find_jumpdests(code: &[u8]) -> Vec<bool> {
        let mut dests = vec![false; code.len()];
        let mut pc = 0;
        while pc < code.len() {
            match Op::from_byte(code[pc]) {
                Some(Op::JumpDest) => {
                    dests[pc] = true;
                    pc += 1;
                }
                Some(Op::Push32) => pc += 33,
                Some(Op::Push8) => pc += 9,
                Some(Op::Push1) | Some(Op::Dup) | Some(Op::Swap) => pc += 2,
                _ => pc += 1,
            }
        }
        dests
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(code: &[u8], input: &[u8]) -> Result<ExecOutput, VmError> {
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        let mut env = ExecEnv {
            db: &mut db,
            contract: Address::from_index(1),
            caller: Address::from_index(2),
            callvalue: 7,
            input,
            timestamp_us: 1_000,
            height: 5,
        };
        Vm::new(&schedule, 1_000_000).run(code, &mut env)
    }

    fn push1(v: u8) -> Vec<u8> {
        vec![Op::Push1 as u8, v]
    }

    #[test]
    fn arithmetic() {
        // 3 + 4 → mstore at 0 → return 32 bytes
        let mut code = Vec::new();
        code.extend(push1(3));
        code.extend(push1(4));
        code.push(Op::Add as u8);
        // stack: [7]; mstore(0, 7)
        code.extend(push1(0)); // offset under value: stack [7, 0] — MStore pops value then offset
        code.push(Op::Swap as u8);
        code.push(0); // swap top two → [0, 7]
        code.push(Op::MStore as u8);
        code.extend(push1(0)); // offset
        code.extend(push1(32)); // length
        code.push(Op::Return as u8);
        let out = run(&code, &[]).unwrap();
        assert_eq!(Word(out.data.try_into().unwrap()).as_u64(), 7);
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut code = Vec::new();
        code.extend(push1(5));
        code.extend(push1(0));
        code.push(Op::Div as u8);
        code.push(Op::IsZero as u8);
        // Revert with empty payload if result non-... just stop; check via no error.
        code.push(Op::Pop as u8);
        code.push(Op::Stop as u8);
        run(&code, &[]).unwrap();
    }

    #[test]
    fn stack_underflow_detected() {
        let code = vec![Op::Add as u8];
        assert_eq!(run(&code, &[]).unwrap_err(), VmError::StackUnderflow);
    }

    #[test]
    fn bad_opcode_detected() {
        let code = vec![0xee];
        assert_eq!(run(&code, &[]).unwrap_err(), VmError::BadOpcode(0xee));
    }

    #[test]
    fn jump_into_immediate_rejected() {
        // PUSH8 <8 bytes that include a JUMPDEST byte> then jump into it.
        let mut code = Vec::new();
        code.push(Op::Push8 as u8);
        code.extend([Op::JumpDest as u8; 8]); // data bytes, not real dests
        code.push(Op::Pop as u8);
        code.extend(push1(1)); // destination 1 (inside the immediate)
        code.push(Op::Jump as u8);
        assert_eq!(run(&code, &[]).unwrap_err(), VmError::BadJump(1));
    }

    #[test]
    fn conditional_jump_takes_branch() {
        // if 1: skip revert, then stop.
        let mut code = Vec::new();
        // push dst placeholder: compute layout: [push1 dst][push1 1][jumpi][revert-ish][jumpdest][stop]
        // positions: 0:Push1 1:dst 2:Push1 3:1 4:JumpI 5:Push1 6:0 7:Push1 8:0 9:Revert 10:JumpDest 11:Stop
        code.extend(push1(10));
        code.extend(push1(1));
        code.push(Op::JumpI as u8);
        code.extend(push1(0));
        code.extend(push1(0));
        code.push(Op::Revert as u8);
        code.push(Op::JumpDest as u8);
        code.push(Op::Stop as u8);
        run(&code, &[]).unwrap();
    }

    #[test]
    fn revert_carries_payload() {
        let mut code = Vec::new();
        // mstore8(0, 0x42); revert(0, 1)
        code.extend(push1(0));
        code.extend(push1(0x42));
        code.push(Op::MStore8 as u8);
        code.extend(push1(0)); // offset
        code.extend(push1(1)); // length
        code.push(Op::Revert as u8);
        assert_eq!(run(&code, &[]).unwrap_err(), VmError::Reverted(vec![0x42]));
    }

    #[test]
    fn calldata_and_env_ops() {
        // return CALLER as a word
        let mut code = Vec::new();
        code.push(Op::Caller as u8);
        code.extend(push1(0));
        code.push(Op::Swap as u8);
        code.push(0);
        code.push(Op::MStore as u8);
        code.extend(push1(0)); // offset
        code.extend(push1(32)); // length
        code.push(Op::Return as u8);
        let out = run(&code, &[]).unwrap();
        let w = Word(out.data.try_into().unwrap());
        assert_eq!(w.as_address(), Address::from_index(2));
    }

    #[test]
    fn storage_round_trip_and_gas() {
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        let contract = Address::from_index(1);
        // sstore(slot 1, value 99); sload(slot 1); return it.
        let mut code = Vec::new();
        code.extend(push1(1));
        code.extend(push1(99));
        code.push(Op::Sstore as u8);
        code.extend(push1(1));
        code.push(Op::Sload as u8);
        code.extend(push1(0));
        code.push(Op::Swap as u8);
        code.push(0);
        code.push(Op::MStore as u8);
        code.extend(push1(0)); // offset
        code.extend(push1(32)); // length
        code.push(Op::Return as u8);
        let mut env = ExecEnv {
            db: &mut db,
            contract,
            caller: Address::from_index(2),
            callvalue: 0,
            input: &[],
            timestamp_us: 0,
            height: 0,
        };
        let mut vm = Vm::new(&schedule, 1_000_000);
        let out = vm.run(&code, &mut env).unwrap();
        assert_eq!(Word(out.data.try_into().unwrap()).as_u64(), 99);
        // Gas must include one storage write and one storage read.
        assert!(out.gas_used >= schedule.storage_write + schedule.storage_read);
        // Value persisted.
        let slot = Word::from_u64(1).as_hash();
        assert!(db.storage(&contract, &slot).is_some());
    }

    #[test]
    fn out_of_gas_stops_execution() {
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        // Infinite loop: jumpdest; push 0; jump.
        let code = vec![Op::JumpDest as u8, Op::Push1 as u8, 0, Op::Jump as u8];
        let mut env = ExecEnv {
            db: &mut db,
            contract: Address::from_index(1),
            caller: Address::from_index(1),
            callvalue: 0,
            input: &[],
            timestamp_us: 0,
            height: 0,
        };
        let err = Vm::new(&schedule, 500).run(&code, &mut env).unwrap_err();
        assert_eq!(err, VmError::OutOfGas { limit: 500 });
    }

    #[test]
    fn logs_emitted_with_topics() {
        let mut code = Vec::new();
        // log1(data=mem[0..1]=0x07, topic=42)
        code.extend(push1(0));
        code.extend(push1(7));
        code.push(Op::MStore8 as u8);
        code.extend(push1(0)); // off
        code.extend(push1(1)); // len
        code.extend(push1(42)); // topic
        code.push(Op::Log1 as u8);
        code.push(Op::Stop as u8);
        let out = run(&code, &[]).unwrap();
        assert_eq!(out.logs.len(), 1);
        assert_eq!(out.logs[0].data, vec![7]);
        assert_eq!(out.logs[0].topics, vec![Word::from_u64(42).as_hash()]);
    }

    #[test]
    fn transfer_moves_contract_balance() {
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        let contract = Address::from_index(1);
        let dest = Address::from_index(9);
        db.credit(&contract, 100);
        // transfer(dest, 30): push to, push amount order — Transfer pops amount then to.
        let mut code = Vec::new();
        code.push(Op::Push32 as u8);
        code.extend(Word::from_address(&dest).0);
        code.extend(push1(30));
        code.push(Op::Transfer as u8);
        code.push(Op::Stop as u8);
        let mut env = ExecEnv {
            db: &mut db,
            contract,
            caller: dest,
            callvalue: 0,
            input: &[],
            timestamp_us: 0,
            height: 0,
        };
        Vm::new(&schedule, 100_000).run(&code, &mut env).unwrap();
        assert_eq!(db.balance(&dest), 30);
        assert_eq!(db.balance(&contract), 70);
    }

    #[test]
    fn word_conversions() {
        let a = Address::from_index(5);
        assert_eq!(Word::from_address(&a).as_address(), a);
        assert_eq!(Word::from_u64(12345).as_u64(), 12345);
        assert_eq!(Word::from_u128(1 << 100).as_u128(), 1 << 100);
        assert_eq!(Word::from_str_padded("hello").to_trimmed_string(), "hello");
        assert!(Word::ZERO.is_zero());
        assert!(!Word::from_u64(1).is_zero());
    }
}
