//! Property-based equivalence of the batched (default) and serial state
//! application paths at the machine level: for arbitrary blocks — valid and
//! invalid transactions mixed, conflicting keys touched repeatedly within
//! one block — `serial_apply = true` and `false` must produce bit-identical
//! receipts, state roots, and errors.

use dcs_chain::StateMachine;
use dcs_contracts::machine::UtxoMachine;
use dcs_contracts::AccountMachine;
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{
    AccountTx, Block, BlockHeader, GasSchedule, Seal, Transaction, TxIn, TxOut, UtxoTx,
};
use proptest::prelude::*;

const ACCOUNTS: u64 = 6;

fn account_block(txs: Vec<Transaction>) -> Block {
    let mut body = vec![Transaction::Coinbase {
        to: Address::from_index(999),
        value: 50,
        height: 1,
    }];
    body.extend(txs);
    Block::new(
        BlockHeader::new(Hash256::ZERO, 1, 1, Address::from_index(999), Seal::None),
        body,
    )
}

proptest! {
    /// Account machine: random transfer blocks where nonces are sometimes
    /// stale, amounts sometimes overdraw, and the same sender/receiver pair
    /// (the "conflicting key" case) appears many times in one block. Failed
    /// receipts are part of the contract: both paths must fail the same
    /// transactions the same way.
    #[test]
    fn account_machine_batched_matches_serial(
        ops in proptest::collection::vec(
            (0u64..ACCOUNTS, 0u64..ACCOUNTS, 1u64..700, 0u64..3),
            0..40,
        ),
    ) {
        let alloc: Vec<(Address, u64)> =
            (0..ACCOUNTS).map(|i| (Address::from_index(i), 1_000)).collect();
        // Nonces follow each sender's success count most of the time, with
        // a random offset mixed in so some transactions carry bad nonces.
        let mut next_nonce = vec![0u64; ACCOUNTS as usize];
        let txs: Vec<Transaction> = ops
            .iter()
            .map(|(from, to, amount, nonce_skew)| {
                let nonce = next_nonce[*from as usize] + nonce_skew.saturating_sub(1);
                let mut tx = AccountTx::transfer(
                    Address::from_index(*from),
                    Address::from_index(*to),
                    *amount,
                    nonce,
                );
                tx.gas_limit = 0;
                tx.gas_price = 0;
                if nonce == next_nonce[*from as usize] {
                    next_nonce[*from as usize] += 1; // likely to succeed
                }
                Transaction::Account(tx)
            })
            .collect();
        let block = account_block(txs);

        let machine = |serial| {
            let mut m = AccountMachine::with_alloc(&alloc);
            m.schedule = GasSchedule::free();
            m.serial_apply = serial;
            m
        };
        let mut serial = machine(true);
        let mut batched = machine(false);
        let root_before = serial.state_root();
        prop_assert_eq!(root_before, batched.state_root());

        let serial_result = serial.apply_block(&block);
        let batched_result = batched.apply_block(&block);
        match (serial_result, batched_result) {
            (Ok((sr, _)), Ok((br, _))) => {
                prop_assert_eq!(sr, br);
                prop_assert_eq!(serial.state_root(), batched.state_root());
            }
            (s, b) => prop_assert_eq!(s.err(), b.err()),
        }
    }

    /// UTXO machine: random spend graphs, including spends of outputs
    /// created earlier in the same block, double spends, and overdrawn
    /// outputs. Valid blocks must commit to identical sets; the first
    /// invalid transaction must raise the identical error from both paths
    /// and leave both machines at the pre-block commitment.
    #[test]
    fn utxo_machine_batched_matches_serial(
        picks in proptest::collection::vec((0usize..20, 1u64..120, any::<bool>()), 1..20),
    ) {
        let alloc: Vec<(Address, u64)> =
            (0..8u64).map(|i| (Address::from_index(i), 100)).collect();
        let proto = UtxoMachine::with_alloc(&alloc);

        // Candidates grow with each generated tx so later picks can chain
        // onto in-block outputs or double-spend earlier inputs.
        let mut candidates: Vec<(dcs_state::OutPoint, u64)> = (0..8u64)
            .flat_map(|i| {
                let addr = Address::from_index(i);
                proto.set.outpoints_of(&addr).into_iter().map(|op| (op, 100))
            })
            .collect();
        let mut txs = Vec::new();
        for (pick, value, split) in &picks {
            let (op, available) = candidates[pick % candidates.len()];
            let spend = *value.min(&available).max(&1);
            let mut outputs = vec![TxOut {
                value: spend,
                recipient: Address::from_index(300),
            }];
            if *split && available > spend {
                outputs.push(TxOut {
                    value: available - spend,
                    recipient: Address::from_index(301),
                });
            }
            let tx = Transaction::Utxo(UtxoTx {
                inputs: vec![TxIn { prev_tx: op.tx, index: op.index, auth: None }],
                outputs: outputs.clone(),
            });
            for (i, out) in outputs.iter().enumerate() {
                candidates.push((
                    dcs_state::OutPoint { tx: tx.id(), index: i as u32 },
                    out.value,
                ));
            }
            txs.push(tx);
        }
        let mut body = vec![Transaction::Coinbase {
            to: Address::from_index(999),
            value: 50,
            height: 1,
        }];
        body.extend(txs);
        let block = Block::new(
            BlockHeader::new(Hash256::ZERO, 1, 1, Address::from_index(999), Seal::None),
            body,
        );

        let machine = |serial| {
            let mut m = UtxoMachine::with_alloc(&alloc);
            m.serial_apply = serial;
            m
        };
        let mut serial = machine(true);
        let mut batched = machine(false);
        let root_before = serial.state_root();
        prop_assert_eq!(root_before, batched.state_root());

        let serial_result = serial.apply_block(&block);
        let batched_result = batched.apply_block(&block);
        match (serial_result, batched_result) {
            (Ok((sr, su)), Ok((br, bu))) => {
                prop_assert_eq!(sr, br);
                prop_assert_eq!(su.len(), bu.len());
                prop_assert_eq!(serial.state_root(), batched.state_root());
            }
            (s, b) => {
                prop_assert_eq!(s.err(), b.err());
                // Failed blocks leave both machines at the pre-block state.
                prop_assert_eq!(serial.state_root(), root_before);
                prop_assert_eq!(batched.state_root(), root_before);
            }
        }
    }
}
