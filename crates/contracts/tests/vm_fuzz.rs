//! VM totality fuzzing: arbitrary bytecode must terminate with `Ok` or a
//! clean `VmError` — never panic, never exceed its gas budget, never write
//! state that survives an error (the §4.3 "contract layer must be secure"
//! requirement, tested adversarially).

use dcs_contracts::vm::{ExecEnv, Vm};
use dcs_crypto::Address;
use dcs_primitives::GasSchedule;
use dcs_state::AccountDb;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn vm_never_panics_on_arbitrary_bytecode(
        code in proptest::collection::vec(any::<u8>(), 0..256),
        input in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let schedule = GasSchedule::default();
        let mut db = AccountDb::new();
        db.credit(&Address::from_index(1), 1_000);
        let snapshot = db.snapshot();
        let root_before = db.root();
        let gas_limit = 50_000;
        let mut vm = Vm::new(&schedule, gas_limit);
        let result = {
            let mut env = ExecEnv {
                db: &mut db,
                contract: Address::from_index(1),
                caller: Address::from_index(2),
                callvalue: 5,
                input: &input,
                timestamp_us: 1,
                height: 1,
            };
            vm.run(&code, &mut env)
        };
        // Gas accounting never exceeds the budget by more than one op's
        // worth (the failing charge itself is capped by saturation).
        match &result {
            Ok(out) => prop_assert!(out.gas_used <= gas_limit),
            Err(_) => {
                // On failure the caller rolls back; emulate the executor.
                db.rollback(snapshot);
                prop_assert_eq!(db.root(), root_before);
            }
        }
    }

    #[test]
    fn assembler_output_always_decodes(
        // Programs of random simple instructions always produce decodable
        // bytecode (every emitted opcode byte is valid).
        ops in proptest::collection::vec(0usize..12, 0..64),
    ) {
        let mnemonics = [
            "add", "sub", "mul", "pop", "caller", "callvalue", "stop",
            "jumpdest", "msize", "calldatasize", "iszero", "not",
        ];
        let source: String = ops
            .iter()
            .map(|&i| mnemonics[i])
            .collect::<Vec<_>>()
            .join("\n");
        let code = dcs_contracts::assemble(&source).unwrap();
        // Every byte decodes as an opcode (no immediates in this subset).
        for b in &code {
            prop_assert!(dcs_contracts::vm::Op::from_byte(*b).is_some());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn token_contract_conserves_supply(
        transfers in proptest::collection::vec((0u64..4, 0u64..4, 0u64..2_000), 0..20),
    ) {
        use dcs_contracts::{exec, stdlib, Word};
        use dcs_primitives::AccountTx;

        let schedule = GasSchedule::default();
        let ctx = exec::BlockCtx {
            proposer: Address::from_index(99),
            timestamp_us: 0,
            height: 1,
        };
        let mut db = AccountDb::new();
        let holders: Vec<Address> = (0..4).map(Address::from_index).collect();
        for h in &holders {
            db.credit(h, 10_000_000_000);
        }
        let deploy = AccountTx::deploy(holders[0], stdlib::token(), 0, 10_000_000);
        let token = deploy.contract_address();
        exec::execute_tx(&mut db, &deploy, dcs_crypto::Hash256::ZERO, &ctx, &schedule);
        let mut nonces = [1u64, 0, 0, 0];

        // Everyone mints 10_000.
        for (i, h) in holders.iter().enumerate() {
            let tx = AccountTx::call(*h, token, stdlib::token_mint_input(10_000), 0, nonces[i], 1_000_000);
            nonces[i] += 1;
            let r = exec::execute_tx(&mut db, &tx, dcs_crypto::Hash256::ZERO, &ctx, &schedule);
            prop_assert!(r.status.is_success());
        }

        // Arbitrary transfers, including overdrafts (which revert).
        for (from, to, amount) in &transfers {
            let tx = AccountTx::call(
                holders[*from as usize],
                token,
                stdlib::token_transfer_input(&holders[*to as usize], *amount),
                0,
                nonces[*from as usize],
                1_000_000,
            );
            nonces[*from as usize] += 1;
            exec::execute_tx(&mut db, &tx, dcs_crypto::Hash256::ZERO, &ctx, &schedule);
        }

        // Supply invariant: balances always sum to 40_000.
        let mut total = 0u64;
        for h in &holders {
            let out = exec::query(&mut db, &token, h, &stdlib::token_balance_input(h)).unwrap();
            total += Word(out.try_into().expect("one word")).as_u64();
        }
        prop_assert_eq!(total, 40_000);
    }
}
