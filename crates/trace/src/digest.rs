//! A stable 64-bit stream digest (FNV-1a).
//!
//! FNV-1a is not cryptographic — it is here to give the determinism suite a
//! cheap, dependency-free fingerprint of an event stream that is stable
//! across platforms and releases. The digest is folded **per record as it is
//! recorded**, before any ring-buffer eviction, so two tracers that saw the
//! same events agree even if their buffer capacities differ.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64 state and returns the new state.
pub fn fnv1a_fold(mut state: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        state ^= u64::from(*b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// One-shot FNV-1a 64 of `bytes`, starting from the offset basis.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_fold(FNV_OFFSET, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn folding_is_incremental() {
        let whole = fnv1a(b"hello world");
        let split = fnv1a_fold(fnv1a(b"hello "), b"world");
        assert_eq!(whole, split);
    }
}
