//! Deterministic structured tracing across the six-layer stack.
//!
//! Every event is timestamped in **sim time** (microseconds from the run's
//! virtual clock) — never the wall clock — so two same-seed runs emit
//! bit-identical streams, and the determinism suite can assert that with a
//! [stable digest](digest::fnv1a). The crate sits below `dcs-sim` in the
//! dependency graph and therefore depends on nothing.
//!
//! The pieces:
//!
//! * [`Tracer`] — one per emitting actor (a peer, the network fabric, the
//!   event queue). Internally `Option<Box<_>>`: a disabled tracer is one
//!   branch on a `None`, with no formatting, allocation, or buffer touch.
//! * [`TraceEvent`] — the typed event taxonomy (network sends, mempool
//!   admissions, chain imports/reorgs, PBFT phases, app events).
//! * [`TraceConfig`] — off / counters-only / full, with per-[`Category`]
//!   count-based sampling (deterministic — no RNG involved).
//! * [`TraceSet`] — merges per-actor buffers into one time-ordered stream
//!   with per-actor digests.
//! * [`Timelines`] — lifecycle spans: stitches raw events into per-tx and
//!   per-block causal timelines (submit → admit → first-seen-per-peer →
//!   included → committed) and answers latency-breakdown, propagation-CDF,
//!   and hop-count queries.
//! * [`export`] — JSONL and Chrome `trace_event` JSON (loadable in
//!   Perfetto / `chrome://tracing`: one track per node, one async slice per
//!   transaction and block).
//!
//! # Examples
//!
//! ```
//! use dcs_trace::{Category, TraceConfig, TraceEvent, Tracer};
//!
//! let mut tracer = Tracer::new(0, &TraceConfig::full());
//! tracer.emit(1_000, TraceEvent::Finalized { height: 1 });
//! assert_eq!(tracer.counters().unwrap().recorded, 1);
//!
//! let mut off = Tracer::disabled();
//! off.emit(1_000, TraceEvent::Finalized { height: 1 }); // a no-op branch
//! assert!(off.counters().is_none());
//! assert_eq!(TraceConfig::off().mode, dcs_trace::TraceMode::Off);
//! assert_eq!(Category::COUNT, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod event;
pub mod export;
pub mod span;
pub mod tracer;

pub use event::{
    Category, EntityKind, Id, ImportOutcome, PbftPhase, RejectReason, TraceEvent, TraceRecord,
    NETWORK_ACTOR, ORIGIN, SIM_ACTOR,
};
pub use span::{BlockSpan, ReorgSpan, StageSamples, Timelines, TxSpan};
pub use tracer::{TraceConfig, TraceCounters, TraceMode, TraceSet, Tracer};
