//! Trace exporters: JSONL and Chrome `trace_event` JSON.
//!
//! Both formats are hand-built strings — this crate is dependency-free, and
//! every field it writes is a number, a fixed keyword, or lowercase hex, so
//! no escaping machinery is needed.
//!
//! The Chrome export loads in Perfetto or `chrome://tracing`: one process
//! (track) per node, instant events for every record, and one async slice
//! per transaction (`cat:"tx"`, submit → commit) and per block
//! (`cat:"block"`, proposal → finality).

use crate::event::{TraceEvent, TraceRecord, NETWORK_ACTOR, SIM_ACTOR};
use crate::span::Timelines;
use std::fmt::Write as _;

/// Human-readable actor label for exports.
fn actor_label(node: u32) -> String {
    match node {
        NETWORK_ACTOR => "net".to_string(),
        SIM_ACTOR => "sim".to_string(),
        n => format!("node{n}"),
    }
}

/// Appends the event-specific JSON fields (leading comma included).
fn event_fields(out: &mut String, event: &TraceEvent) {
    match event {
        TraceEvent::SimDispatch { pending } => {
            let _ = write!(out, ",\"pending\":{pending}");
        }
        TraceEvent::MsgSent { to, bytes } => {
            let _ = write!(out, ",\"to\":{to},\"bytes\":{bytes}");
        }
        TraceEvent::MsgDelivered { from } => {
            let _ = write!(out, ",\"from\":{from}");
        }
        TraceEvent::MsgDropped { to } | TraceEvent::MsgPartitioned { to } => {
            let _ = write!(out, ",\"to\":{to}");
        }
        TraceEvent::TxSubmitted { tx }
        | TraceEvent::TxAdmitted { tx }
        | TraceEvent::AppEvent { tx } => {
            let _ = write!(out, ",\"tx\":\"{}\"", tx.short_hex());
        }
        TraceEvent::FirstSeen { kind, id, from } => {
            let kind = match kind {
                crate::event::EntityKind::Tx => "tx",
                crate::event::EntityKind::Block => "block",
            };
            let _ = write!(
                out,
                ",\"kind\":\"{kind}\",\"id\":\"{}\",\"from\":{from}",
                id.short_hex()
            );
        }
        TraceEvent::TxRejected { tx, reason } => {
            let reason = match reason {
                crate::event::RejectReason::Full => "full",
                crate::event::RejectReason::Duplicate => "duplicate",
                crate::event::RejectReason::BadWitness => "bad_witness",
            };
            let _ = write!(
                out,
                ",\"tx\":\"{}\",\"reason\":\"{reason}\"",
                tx.short_hex()
            );
        }
        TraceEvent::BlockProposed { block, height, txs } => {
            let _ = write!(
                out,
                ",\"block\":\"{}\",\"height\":{height},\"txs\":{txs}",
                block.short_hex()
            );
        }
        TraceEvent::Pbft { phase, view, seq } => {
            let phase = match phase {
                crate::event::PbftPhase::PrePrepare => "pre_prepare",
                crate::event::PbftPhase::Prepare => "prepare",
                crate::event::PbftPhase::Commit => "commit",
                crate::event::PbftPhase::ViewChange => "view_change",
            };
            let _ = write!(out, ",\"phase\":\"{phase}\",\"view\":{view},\"seq\":{seq}");
        }
        TraceEvent::BlockImported {
            block,
            height,
            outcome,
        } => {
            let outcome = match outcome {
                crate::event::ImportOutcome::Extended => "extended",
                crate::event::ImportOutcome::SideChain => "side_chain",
            };
            let _ = write!(
                out,
                ",\"block\":\"{}\",\"height\":{height},\"outcome\":\"{outcome}\"",
                block.short_hex()
            );
        }
        TraceEvent::BlockOrphaned { block } => {
            let _ = write!(out, ",\"block\":\"{}\"", block.short_hex());
        }
        TraceEvent::Reorg { reverted, applied } => {
            let _ = write!(out, ",\"reverted\":{reverted},\"applied\":{applied}");
        }
        TraceEvent::TxIncluded { tx, block } => {
            let _ = write!(
                out,
                ",\"tx\":\"{}\",\"block\":\"{}\"",
                tx.short_hex(),
                block.short_hex()
            );
        }
        TraceEvent::Finalized { height } => {
            let _ = write!(out, ",\"height\":{height}");
        }
        TraceEvent::NodeCrashed | TraceEvent::NodeRestarted => {}
        TraceEvent::EngineDispatch { src, seq } => {
            let _ = write!(out, ",\"src\":{src},\"seq\":{seq}");
        }
        TraceEvent::SimClamped { lag_us } => {
            let _ = write!(out, ",\"lag_us\":{lag_us}");
        }
        TraceEvent::MsgDuplicated { to } | TraceEvent::MsgCorrupted { to } => {
            let _ = write!(out, ",\"to\":{to}");
        }
    }
}

/// Renders records as JSON Lines: one self-describing object per record.
pub fn to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(records.len() * 96);
    for rec in records {
        let _ = write!(
            out,
            "{{\"at_us\":{},\"node\":\"{}\",\"cat\":\"{}\",\"event\":\"{}\"",
            rec.at_us,
            actor_label(rec.node),
            rec.event.category().name(),
            rec.event.name()
        );
        event_fields(&mut out, &rec.event);
        out.push_str("}\n");
    }
    out
}

/// Appends one Chrome `trace_event` object. `extra` is the trailing
/// event-specific part (already comma-prefixed, may be empty).
fn push_chrome_event(
    out: &mut String,
    name: &str,
    cat: &str,
    ph: &str,
    ts_us: u64,
    pid: u32,
    extra: &str,
) {
    if !out.ends_with('[') {
        out.push(',');
    }
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"{ph}\",\"ts\":{ts_us},\"pid\":{pid},\"tid\":0{extra}}}"
    );
}

/// Renders records plus stitched `timelines` as Chrome `trace_event` JSON.
///
/// Layout: one process per node (named via `process_name` metadata), every
/// record as an instant event on its node's track, and async
/// begin/end pairs (`ph:"b"`/`ph:"e"`) for each transaction span
/// (submit → commit, `cat:"tx"`) and block span (proposal → finality,
/// `cat:"block"`). Load the file in <https://ui.perfetto.dev> or
/// `chrome://tracing`.
pub fn to_chrome_trace(records: &[TraceRecord], timelines: &Timelines) -> String {
    let mut out = String::with_capacity(records.len() * 128 + 4096);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");

    // Name each node's track once.
    let mut nodes: Vec<u32> = records.iter().map(|r| r.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    for node in &nodes {
        push_chrome_event(
            &mut out,
            "process_name",
            "__metadata",
            "M",
            0,
            *node,
            &format!(",\"args\":{{\"name\":\"{}\"}}", actor_label(*node)),
        );
    }

    // Every record as an instant event on its node's track.
    for rec in records {
        push_chrome_event(
            &mut out,
            rec.event.name(),
            rec.event.category().name(),
            "i",
            rec.at_us,
            rec.node,
            ",\"s\":\"t\"",
        );
    }

    // Async slices: one per tx (submit → commit) and per block
    // (proposal → finality), pinned to the reference peer's track.
    for (id, span) in &timelines.txs {
        let (Some(b), Some(e)) = (span.submitted_us, span.committed_us) else {
            continue;
        };
        let hex = id.short_hex();
        let extra = format!(",\"id\":\"tx-{hex}\"");
        let name = format!("tx {hex}");
        push_chrome_event(&mut out, &name, "tx", "b", b, timelines.reference, &extra);
        push_chrome_event(&mut out, &name, "tx", "e", e, timelines.reference, &extra);
    }
    for (id, span) in &timelines.blocks {
        let (Some(b), Some(e)) = (span.proposed_us, span.finalized_us) else {
            continue;
        };
        let hex = id.short_hex();
        let extra = format!(",\"id\":\"block-{hex}\"");
        let name = format!("block {hex}");
        push_chrome_event(
            &mut out,
            &name,
            "block",
            "b",
            b,
            timelines.reference,
            &extra,
        );
        push_chrome_event(
            &mut out,
            &name,
            "block",
            "e",
            e,
            timelines.reference,
            &extra,
        );
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EntityKind, Id, ImportOutcome, ORIGIN};

    fn sample_records() -> Vec<TraceRecord> {
        let tx = Id([1; 32]);
        let blk = Id([9; 32]);
        vec![
            TraceRecord {
                at_us: 10,
                node: 0,
                event: TraceEvent::TxSubmitted { tx },
            },
            TraceRecord {
                at_us: 10,
                node: 0,
                event: TraceEvent::TxAdmitted { tx },
            },
            TraceRecord {
                at_us: 20,
                node: 1,
                event: TraceEvent::FirstSeen {
                    kind: EntityKind::Block,
                    id: blk,
                    from: ORIGIN,
                },
            },
            TraceRecord {
                at_us: 30,
                node: 0,
                event: TraceEvent::BlockImported {
                    block: blk,
                    height: 1,
                    outcome: ImportOutcome::Extended,
                },
            },
            TraceRecord {
                at_us: 30,
                node: 0,
                event: TraceEvent::TxIncluded { tx, block: blk },
            },
            TraceRecord {
                at_us: 90,
                node: 0,
                event: TraceEvent::Finalized { height: 1 },
            },
        ]
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let records = sample_records();
        let jsonl = to_jsonl(&records);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), records.len());
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"at_us\":"));
            assert!(line.contains("\"event\":\""));
        }
        assert!(lines[0].contains("\"event\":\"tx_submitted\""));
        assert!(lines[0].contains(&Id([1; 32]).short_hex()));
    }

    #[test]
    fn chrome_trace_has_tracks_instants_and_async_slices() {
        let records = sample_records();
        let timelines = Timelines::build(&records, 0);
        let json = to_chrome_trace(&records, &timelines);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // Track names for both nodes.
        assert!(json.contains("\"name\":\"node0\""));
        assert!(json.contains("\"name\":\"node1\""));
        // Instant events carry scope "t".
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"s\":\"t\""));
        // The tx completed submit → commit, so it has an async pair.
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("\"ph\":\"e\""));
        assert!(json.contains("\"cat\":\"tx\""));
        // Balanced begin/end.
        assert_eq!(
            json.matches("\"ph\":\"b\"").count(),
            json.matches("\"ph\":\"e\"").count()
        );
    }

    #[test]
    fn chrome_trace_is_structurally_valid_json() {
        // A tiny structural check (no JSON parser in-tree): balanced
        // braces/brackets outside strings, and no trailing comma.
        let records = sample_records();
        let timelines = Timelines::build(&records, 0);
        for json in [
            to_chrome_trace(&records, &timelines),
            to_chrome_trace(&[], &Timelines::default()),
        ] {
            let (mut depth, mut in_str, mut prev) = (0i64, false, ' ');
            for c in json.chars() {
                if in_str {
                    in_str = c != '"';
                } else {
                    match c {
                        '"' => in_str = true,
                        '{' | '[' => depth += 1,
                        '}' | ']' => {
                            assert_ne!(prev, ',', "trailing comma before {c}");
                            depth -= 1;
                        }
                        _ => {}
                    }
                }
                prev = c;
            }
            assert_eq!(depth, 0);
            assert!(!in_str);
        }
    }
}
