//! Per-actor tracer handles, configuration, and the merged [`TraceSet`].

use crate::digest::{fnv1a_fold, FNV_OFFSET};
use crate::event::{Category, TraceEvent, TraceRecord};
use std::collections::{BTreeMap, VecDeque};

/// How much a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; the tracer holds no state at all. Emitting is a
    /// single branch on an `Option` being `None`.
    Off,
    /// Maintain per-category counters and the stream digest, but keep no
    /// event buffer (no allocation per event).
    Counters,
    /// Counters, digest, and the bounded ring buffer of full records.
    Full,
}

/// Configuration for building tracers: mode, ring-buffer capacity, and
/// per-category count-based sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// What to record.
    pub mode: TraceMode,
    /// Ring-buffer capacity per tracer (ignored unless [`TraceMode::Full`]).
    pub buffer_cap: usize,
    /// Keep one event in every `sample_every[cat]` per category. `1` keeps
    /// everything. Sampling is **count-based** (event index modulo the
    /// rate), so it is deterministic — no RNG is involved.
    pub sample_every: [u32; Category::COUNT],
}

impl TraceConfig {
    /// Tracing fully disabled.
    pub fn off() -> Self {
        TraceConfig {
            mode: TraceMode::Off,
            buffer_cap: 0,
            sample_every: [1; Category::COUNT],
        }
    }

    /// Counters and digest only, no event buffer.
    pub fn counters() -> Self {
        TraceConfig {
            mode: TraceMode::Counters,
            buffer_cap: 0,
            sample_every: [1; Category::COUNT],
        }
    }

    /// Full recording with a generous default buffer (64k records/actor).
    pub fn full() -> Self {
        TraceConfig {
            mode: TraceMode::Full,
            buffer_cap: 65_536,
            sample_every: [1; Category::COUNT],
        }
    }

    /// Overrides the per-tracer ring-buffer capacity.
    pub fn with_buffer_cap(mut self, cap: usize) -> Self {
        self.buffer_cap = cap.max(1);
        self
    }

    /// Keeps one in `every` events of `cat` (0 is treated as 1).
    pub fn with_sample(mut self, cat: Category, every: u32) -> Self {
        self.sample_every[cat.index()] = every.max(1);
        self
    }
}

/// Cheap aggregate counters a tracer maintains in any non-off mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCounters {
    /// Events recorded (post-sampling).
    pub recorded: u64,
    /// Events skipped by sampling.
    pub sampled_out: u64,
    /// Records evicted from the ring buffer (digest still covers them).
    pub evicted: u64,
    /// Events seen per category (pre-sampling).
    pub per_category: [u64; Category::COUNT],
}

/// Everything a live tracer owns. Boxed behind the `Option` in [`Tracer`]
/// so a disabled tracer is a single `None` word.
#[derive(Debug, Clone)]
struct Inner {
    node: u32,
    keep_buffer: bool,
    sample_every: [u32; Category::COUNT],
    counters: TraceCounters,
    digest: u64,
    scratch: Vec<u8>,
    cap: usize,
    buffer: VecDeque<TraceRecord>,
}

/// A per-actor tracing handle.
///
/// A `Tracer` is owned by one emitting actor (a peer's consensus core, its
/// chain, the network fabric, the event queue) and is **not** shared: no
/// locks, no interior mutability, deterministic by construction. Disabled
/// tracers carry no state — `emit` is one branch.
#[derive(Debug, Clone, Default)]
pub struct Tracer(Option<Box<Inner>>);

impl Tracer {
    /// A tracer for actor `node` under `config`. Returns a disabled tracer
    /// when the mode is [`TraceMode::Off`].
    pub fn new(node: u32, config: &TraceConfig) -> Self {
        match config.mode {
            TraceMode::Off => Tracer(None),
            mode => Tracer(Some(Box::new(Inner {
                node,
                keep_buffer: mode == TraceMode::Full,
                sample_every: config.sample_every.map(|e| e.max(1)),
                counters: TraceCounters::default(),
                digest: FNV_OFFSET,
                scratch: Vec::with_capacity(64),
                cap: config.buffer_cap.max(1),
                buffer: VecDeque::new(),
            }))),
        }
    }

    /// A permanently disabled tracer (the default for every instrumented
    /// struct — zero cost until somebody installs a real one).
    pub fn disabled() -> Self {
        Tracer(None)
    }

    /// Whether this tracer records anything. Callers use this to skip
    /// *computing* event payloads (hashes, counts) on the off path.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The actor id this tracer emits as, if enabled.
    pub fn node(&self) -> Option<u32> {
        self.0.as_ref().map(|i| i.node)
    }

    /// Records `event` at sim time `at_us`. On a disabled tracer this is a
    /// single branch — no formatting, no allocation, no buffer touch.
    #[inline]
    pub fn emit(&mut self, at_us: u64, event: TraceEvent) {
        if let Some(inner) = self.0.as_deref_mut() {
            let node = inner.node;
            inner.record(at_us, node, event);
        }
    }

    /// Records `event` on behalf of actor `node` (used by shared fabrics —
    /// the network tracer emits per-peer events from one handle).
    #[inline]
    pub fn emit_for(&mut self, at_us: u64, node: u32, event: TraceEvent) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.record(at_us, node, event);
        }
    }

    /// The counters, if enabled.
    pub fn counters(&self) -> Option<&TraceCounters> {
        self.0.as_ref().map(|i| &i.counters)
    }

    /// The running FNV-1a stream digest, if enabled. Folded per record
    /// *before* eviction, so it is independent of the buffer capacity.
    pub fn digest(&self) -> Option<u64> {
        self.0.as_ref().map(|i| i.digest)
    }

    /// The buffered records, oldest first (empty in counters-only mode).
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.0.iter().flat_map(|i| i.buffer.iter())
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |i| i.buffer.len())
    }

    /// Whether the buffer holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Inner {
    fn record(&mut self, at_us: u64, node: u32, event: TraceEvent) {
        let cat = event.category().index();
        let seen = self.counters.per_category[cat];
        self.counters.per_category[cat] = seen + 1;
        let every = self.sample_every[cat];
        if every > 1 && !seen.is_multiple_of(u64::from(every)) {
            self.counters.sampled_out += 1;
            return;
        }
        self.counters.recorded += 1;
        let rec = TraceRecord { at_us, node, event };
        self.scratch.clear();
        rec.encode_into(&mut self.scratch);
        self.digest = fnv1a_fold(self.digest, &self.scratch);
        if self.keep_buffer {
            if self.buffer.len() == self.cap {
                self.buffer.pop_front();
                self.counters.evicted += 1;
            }
            self.buffer.push_back(rec);
        }
    }
}

/// A set of tracers collected at the end of a run, merged into one
/// time-ordered record stream with per-source digests.
///
/// Sources are added in a **fixed caller order** and the merge is a stable
/// sort by timestamp, so the total order is deterministic: each tracer's
/// stream is already time-ordered, and ties across tracers resolve by
/// insertion order.
#[derive(Debug, Default)]
pub struct TraceSet {
    records: Vec<TraceRecord>,
    sorted: bool,
    digests: BTreeMap<String, u64>,
    counters: TraceCounters,
}

impl TraceSet {
    /// An empty set.
    pub fn new() -> Self {
        TraceSet::default()
    }

    /// Adds one tracer's buffer under `key` (e.g. `"node3"`, `"net"`).
    /// Disabled tracers are ignored. Adding two tracers under the same key
    /// combines their digests (fold of the pair), so a peer's core and
    /// chain tracers can share one per-peer key.
    pub fn add(&mut self, key: &str, tracer: &Tracer) {
        let Some(inner) = tracer.0.as_deref() else {
            return;
        };
        self.records.extend(inner.buffer.iter().copied());
        self.sorted = false;
        self.digests
            .entry(key.to_string())
            .and_modify(|d| *d = fnv1a_fold(*d, &inner.digest.to_le_bytes()))
            .or_insert(inner.digest);
        self.counters.recorded += inner.counters.recorded;
        self.counters.sampled_out += inner.counters.sampled_out;
        self.counters.evicted += inner.counters.evicted;
        for (a, b) in self
            .counters
            .per_category
            .iter_mut()
            .zip(inner.counters.per_category)
        {
            *a += b;
        }
    }

    /// All records merged across sources, ordered by timestamp (stable —
    /// ties keep source insertion order).
    pub fn records(&mut self) -> &[TraceRecord] {
        if !self.sorted {
            self.records.sort_by_key(|r| r.at_us);
            self.sorted = true;
        }
        &self.records
    }

    /// Per-source stream digests, keyed by the `add` key.
    pub fn digests(&self) -> &BTreeMap<String, u64> {
        &self.digests
    }

    /// One digest over all per-source digests (keys and values), a single
    /// value the determinism suite can compare across runs.
    pub fn combined_digest(&self) -> u64 {
        let mut d = FNV_OFFSET;
        for (k, v) in &self.digests {
            d = fnv1a_fold(d, k.as_bytes());
            d = fnv1a_fold(d, &v.to_le_bytes());
        }
        d
    }

    /// Counters summed over every added tracer.
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Id;

    fn ev(height: u64) -> TraceEvent {
        TraceEvent::Finalized { height }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::new(9, &TraceConfig::off());
        assert!(!t.is_enabled());
        t.emit(10, ev(1));
        assert!(t.counters().is_none());
        assert!(t.digest().is_none());
        assert_eq!(t.records().count(), 0);
    }

    #[test]
    fn counters_mode_digests_without_buffering() {
        let mut t = Tracer::new(1, &TraceConfig::counters());
        t.emit(10, ev(1));
        t.emit(20, ev(2));
        assert_eq!(t.counters().unwrap().recorded, 2);
        assert_eq!(t.len(), 0);
        let mut full = Tracer::new(1, &TraceConfig::full());
        full.emit(10, ev(1));
        full.emit(20, ev(2));
        assert_eq!(t.digest(), full.digest(), "digest is mode-independent");
    }

    #[test]
    fn digest_survives_ring_buffer_eviction() {
        let small = TraceConfig::full().with_buffer_cap(2);
        let mut a = Tracer::new(1, &small);
        let mut b = Tracer::new(1, &TraceConfig::full());
        for i in 0..10 {
            a.emit(i, ev(i));
            b.emit(i, ev(i));
        }
        assert_eq!(a.len(), 2);
        assert_eq!(a.counters().unwrap().evicted, 8);
        assert_eq!(b.len(), 10);
        assert_eq!(a.digest(), b.digest(), "digest independent of capacity");
    }

    #[test]
    fn sampling_is_count_based_and_counted() {
        let cfg = TraceConfig::full().with_sample(Category::Chain, 3);
        let mut t = Tracer::new(1, &cfg);
        for i in 0..9 {
            t.emit(i, ev(i));
        }
        // Keeps indices 0, 3, 6.
        assert_eq!(t.counters().unwrap().recorded, 3);
        assert_eq!(t.counters().unwrap().sampled_out, 6);
        assert_eq!(
            t.counters().unwrap().per_category[Category::Chain.index()],
            9
        );
        let kept: Vec<u64> = t.records().map(|r| r.at_us).collect();
        assert_eq!(kept, vec![0, 3, 6]);
    }

    #[test]
    fn emit_for_overrides_actor() {
        let mut t = Tracer::new(7, &TraceConfig::full());
        t.emit_for(5, 3, ev(1));
        t.emit(6, ev(2));
        let nodes: Vec<u32> = t.records().map(|r| r.node).collect();
        assert_eq!(nodes, vec![3, 7]);
    }

    #[test]
    fn trace_set_merges_deterministically() {
        let build = || {
            let mut a = Tracer::new(0, &TraceConfig::full());
            let mut b = Tracer::new(1, &TraceConfig::full());
            a.emit(10, ev(1));
            b.emit(10, TraceEvent::TxAdmitted { tx: Id([1; 32]) });
            a.emit(30, ev(2));
            b.emit(20, ev(3));
            let mut set = TraceSet::new();
            set.add("node0", &a);
            set.add("node1", &b);
            set
        };
        let mut s1 = build();
        let mut s2 = build();
        assert_eq!(s1.records(), s2.records());
        assert_eq!(s1.combined_digest(), s2.combined_digest());
        let times: Vec<u64> = s1.records().iter().map(|r| r.at_us).collect();
        assert_eq!(times, vec![10, 10, 20, 30]);
        // Tie at t=10 keeps insertion order: node0 first.
        assert_eq!(s1.records()[0].node, 0);
        assert_eq!(s1.records()[1].node, 1);
        assert_eq!(s1.digests().len(), 2);
        assert_eq!(s1.counters().recorded, 4);
    }

    #[test]
    fn same_key_folds_digests() {
        let mut core = Tracer::new(0, &TraceConfig::full());
        let mut chain = Tracer::new(0, &TraceConfig::full());
        core.emit(1, ev(1));
        chain.emit(2, ev(2));
        let mut set = TraceSet::new();
        set.add("node0", &core);
        set.add("node0", &chain);
        assert_eq!(set.digests().len(), 1);
        let folded = fnv1a_fold(
            core.digest().unwrap(),
            &chain.digest().unwrap().to_le_bytes(),
        );
        assert_eq!(set.digests()["node0"], folded);
    }
}
