//! Lifecycle spans: stitching raw events into per-transaction and
//! per-block causal timelines, and the latency-breakdown query API.
//!
//! The span model follows each transaction through
//! `submit → admit → first-seen-per-peer → included → committed` and each
//! block through `proposed → first-seen-per-peer → finalized`. Stage
//! boundaries are measured on a single **reference peer** so the stages of
//! one transaction share a clock and sum to its end-to-end commit latency.

use crate::event::{Category, EntityKind, Id, TraceEvent, TraceRecord, ORIGIN};
use std::collections::BTreeMap;

/// The causal timeline of one transaction.
#[derive(Debug, Clone, Default)]
pub struct TxSpan {
    /// When a client submitted it (sim µs).
    pub submitted_us: Option<u64>,
    /// When the reference peer's mempool admitted it.
    pub admitted_us: Option<u64>,
    /// When the reference peer first saw it in a canonical block.
    pub included_us: Option<u64>,
    /// When the including block passed the reference peer's finality
    /// horizon.
    pub committed_us: Option<u64>,
    /// The including block, once known.
    pub block: Option<Id>,
    /// First sighting per peer (peer index → sim µs) — the propagation
    /// front.
    pub first_seen: BTreeMap<u32, u64>,
}

/// The causal timeline of one block.
#[derive(Debug, Clone, Default)]
pub struct BlockSpan {
    /// Height, once imported or proposed.
    pub height: Option<u64>,
    /// Client transactions carried (from the proposal event).
    pub tx_count: Option<u32>,
    /// When its producer proposed it.
    pub proposed_us: Option<u64>,
    /// First sighting per peer.
    pub first_seen: BTreeMap<u32, u64>,
    /// Gossip hop distance per peer (producer = 0), where derivable.
    pub hops: BTreeMap<u32, u32>,
    /// When the reference peer finalized at or past this height.
    pub finalized_us: Option<u64>,
}

/// One observed branch switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReorgSpan {
    /// When it happened (sim µs).
    pub at_us: u64,
    /// The peer that switched.
    pub node: u32,
    /// Blocks reverted (the reorg depth).
    pub reverted: u64,
    /// Blocks applied.
    pub applied: u64,
}

/// Per-stage latency samples (µs) over every transaction that completed
/// the corresponding stage on the reference peer.
#[derive(Debug, Clone, Default)]
pub struct StageSamples {
    /// submit → admit on the reference peer (gossip + admission).
    pub propagation_us: Vec<u64>,
    /// admit → included (time waiting in the mempool).
    pub mempool_wait_us: Vec<u64>,
    /// included → committed (confirmation depth build-up).
    pub confirmation_us: Vec<u64>,
    /// submit → committed end to end.
    pub total_commit_us: Vec<u64>,
}

/// Stitched timelines for a whole run, built from a merged record stream.
#[derive(Debug, Default)]
pub struct Timelines {
    /// The reference peer stage boundaries were measured on.
    pub reference: u32,
    /// Per-transaction spans.
    pub txs: BTreeMap<Id, TxSpan>,
    /// Per-block spans.
    pub blocks: BTreeMap<Id, BlockSpan>,
    /// Every branch switch observed, in time order.
    pub reorgs: Vec<ReorgSpan>,
}

impl Timelines {
    /// Builds timelines from time-ordered `records`, measuring stage
    /// boundaries on peer `reference`.
    pub fn build(records: &[TraceRecord], reference: u32) -> Self {
        let mut t = Timelines {
            reference,
            ..Timelines::default()
        };
        // Height → finalization time on the reference peer, filled as
        // Finalized events arrive; blocks/txs resolve against it afterwards.
        let mut finalized_at: Vec<(u64, u64)> = Vec::new();
        for rec in records {
            match rec.event {
                TraceEvent::TxSubmitted { tx } => {
                    let span = t.txs.entry(tx).or_default();
                    span.submitted_us.get_or_insert(rec.at_us);
                }
                TraceEvent::TxAdmitted { tx } if rec.node == reference => {
                    t.txs
                        .entry(tx)
                        .or_default()
                        .admitted_us
                        .get_or_insert(rec.at_us);
                }
                TraceEvent::TxIncluded { tx, block } if rec.node == reference => {
                    let span = t.txs.entry(tx).or_default();
                    span.included_us.get_or_insert(rec.at_us);
                    span.block.get_or_insert(block);
                }
                TraceEvent::FirstSeen { kind, id, from } => match kind {
                    EntityKind::Tx => {
                        t.txs
                            .entry(id)
                            .or_default()
                            .first_seen
                            .entry(rec.node)
                            .or_insert(rec.at_us);
                    }
                    EntityKind::Block => {
                        let span = t.blocks.entry(id).or_default();
                        span.first_seen.entry(rec.node).or_insert(rec.at_us);
                        // Hop = 0 at the origin, sender's hop + 1 otherwise.
                        // Records arrive in time order, so the sender's hop
                        // is already resolved whenever gossip is causal.
                        let hop = if from == ORIGIN {
                            Some(0)
                        } else {
                            span.hops.get(&from).map(|h| h + 1)
                        };
                        if let Some(h) = hop {
                            span.hops.entry(rec.node).or_insert(h);
                        }
                    }
                },
                TraceEvent::BlockProposed { block, height, txs } => {
                    let span = t.blocks.entry(block).or_default();
                    span.proposed_us.get_or_insert(rec.at_us);
                    span.height.get_or_insert(height);
                    span.tx_count.get_or_insert(txs);
                }
                TraceEvent::BlockImported { block, height, .. } => {
                    t.blocks
                        .entry(block)
                        .or_default()
                        .height
                        .get_or_insert(height);
                }
                TraceEvent::Reorg { reverted, applied } => {
                    t.reorgs.push(ReorgSpan {
                        at_us: rec.at_us,
                        node: rec.node,
                        reverted,
                        applied,
                    });
                }
                TraceEvent::Finalized { height } if rec.node == reference => {
                    finalized_at.push((height, rec.at_us));
                }
                _ => {}
            }
        }
        // Resolve block finalization: the first Finalized event whose
        // horizon reaches the block's height (events arrive height- and
        // time-monotone on one peer).
        for span in t.blocks.values_mut() {
            let Some(h) = span.height else { continue };
            span.finalized_us = finalized_at
                .iter()
                .find(|(fh, _)| *fh >= h)
                .map(|(_, at)| *at);
        }
        // Resolve tx commitment from the including block's finalization.
        let block_finalized: BTreeMap<Id, u64> = t
            .blocks
            .iter()
            .filter_map(|(id, s)| s.finalized_us.map(|at| (*id, at)))
            .collect();
        for span in t.txs.values_mut() {
            if let Some(block) = span.block {
                span.committed_us = block_finalized.get(&block).copied();
            }
        }
        t
    }

    /// Per-stage latency samples over transactions, each stage measured on
    /// the reference peer. A transaction contributes to a stage only once
    /// both boundaries exist.
    pub fn stage_samples(&self) -> StageSamples {
        let mut s = StageSamples::default();
        for span in self.txs.values() {
            if let (Some(sub), Some(adm)) = (span.submitted_us, span.admitted_us) {
                s.propagation_us.push(adm.saturating_sub(sub));
            }
            if let (Some(adm), Some(inc)) = (span.admitted_us, span.included_us) {
                s.mempool_wait_us.push(inc.saturating_sub(adm));
            }
            if let (Some(inc), Some(com)) = (span.included_us, span.committed_us) {
                s.confirmation_us.push(com.saturating_sub(inc));
            }
            if let (Some(sub), Some(com)) = (span.submitted_us, span.committed_us) {
                s.total_commit_us.push(com.saturating_sub(sub));
            }
        }
        s
    }

    /// Block propagation samples: per (block, peer), the delay from the
    /// proposal to that peer's first sighting — the input for a
    /// propagation CDF.
    pub fn block_propagation_us(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for span in self.blocks.values() {
            let Some(p) = span.proposed_us else { continue };
            for at in span.first_seen.values() {
                out.push(at.saturating_sub(p));
            }
        }
        out
    }

    /// Gossip hop-count distribution over every (block, peer) sighting
    /// with a derivable hop: `hist[h]` = number of sightings at hop `h`.
    pub fn hop_histogram(&self) -> Vec<u64> {
        let mut hist: Vec<u64> = Vec::new();
        for span in self.blocks.values() {
            for h in span.hops.values() {
                let h = *h as usize;
                if hist.len() <= h {
                    hist.resize(h + 1, 0);
                }
                hist[h] += 1;
            }
        }
        hist
    }
}

/// Convenience: category of every record in `records` equals `cat`.
/// Used by tests asserting sampling scoped to one category.
pub fn all_in_category(records: &[TraceRecord], cat: Category) -> bool {
    records.iter().all(|r| r.event.category() == cat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{ImportOutcome, TraceEvent};

    fn id(b: u8) -> Id {
        Id([b; 32])
    }

    fn rec(at_us: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { at_us, node, event }
    }

    /// One tx through the full lifecycle on a 3-peer network, reference 0.
    fn lifecycle() -> Vec<TraceRecord> {
        let tx = id(1);
        let blk = id(9);
        vec![
            rec(100, 0, TraceEvent::TxSubmitted { tx }),
            rec(
                100,
                0,
                TraceEvent::FirstSeen {
                    kind: EntityKind::Tx,
                    id: tx,
                    from: ORIGIN,
                },
            ),
            rec(100, 0, TraceEvent::TxAdmitted { tx }),
            rec(
                150,
                1,
                TraceEvent::FirstSeen {
                    kind: EntityKind::Tx,
                    id: tx,
                    from: 0,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::BlockProposed {
                    block: blk,
                    height: 1,
                    txs: 1,
                },
            ),
            rec(
                400,
                1,
                TraceEvent::FirstSeen {
                    kind: EntityKind::Block,
                    id: blk,
                    from: ORIGIN,
                },
            ),
            rec(
                450,
                0,
                TraceEvent::FirstSeen {
                    kind: EntityKind::Block,
                    id: blk,
                    from: 1,
                },
            ),
            rec(
                460,
                2,
                TraceEvent::FirstSeen {
                    kind: EntityKind::Block,
                    id: blk,
                    from: 0,
                },
            ),
            rec(
                450,
                0,
                TraceEvent::BlockImported {
                    block: blk,
                    height: 1,
                    outcome: ImportOutcome::Extended,
                },
            ),
            rec(450, 0, TraceEvent::TxIncluded { tx, block: blk }),
            rec(900, 0, TraceEvent::Finalized { height: 1 }),
        ]
    }

    #[test]
    fn stitches_full_tx_lifecycle() {
        let t = Timelines::build(&lifecycle(), 0);
        let span = &t.txs[&id(1)];
        assert_eq!(span.submitted_us, Some(100));
        assert_eq!(span.admitted_us, Some(100));
        assert_eq!(span.included_us, Some(450));
        assert_eq!(span.committed_us, Some(900));
        assert_eq!(span.block, Some(id(9)));
        assert_eq!(span.first_seen.len(), 2);

        let s = t.stage_samples();
        assert_eq!(s.propagation_us, vec![0]);
        assert_eq!(s.mempool_wait_us, vec![350]);
        assert_eq!(s.confirmation_us, vec![450]);
        assert_eq!(s.total_commit_us, vec![800]);
    }

    #[test]
    fn block_span_and_hops() {
        let t = Timelines::build(&lifecycle(), 0);
        let span = &t.blocks[&id(9)];
        assert_eq!(span.height, Some(1));
        assert_eq!(span.tx_count, Some(1));
        assert_eq!(span.proposed_us, Some(400));
        assert_eq!(span.finalized_us, Some(900));
        // Producer 1 at hop 0, peer 0 at hop 1 (from 1), peer 2 at hop 2
        // (from 0).
        assert_eq!(span.hops[&1], 0);
        assert_eq!(span.hops[&0], 1);
        assert_eq!(span.hops[&2], 2);
        assert_eq!(t.hop_histogram(), vec![1, 1, 1]);
        let mut prop = t.block_propagation_us();
        prop.sort_unstable();
        assert_eq!(prop, vec![0, 50, 60]);
    }

    #[test]
    fn reorg_spans_are_collected_in_order() {
        let records = vec![
            rec(
                10,
                2,
                TraceEvent::Reorg {
                    reverted: 2,
                    applied: 3,
                },
            ),
            rec(
                20,
                0,
                TraceEvent::Reorg {
                    reverted: 1,
                    applied: 2,
                },
            ),
        ];
        let t = Timelines::build(&records, 0);
        assert_eq!(
            t.reorgs,
            vec![
                ReorgSpan {
                    at_us: 10,
                    node: 2,
                    reverted: 2,
                    applied: 3
                },
                ReorgSpan {
                    at_us: 20,
                    node: 0,
                    reverted: 1,
                    applied: 2
                },
            ]
        );
    }

    #[test]
    fn incomplete_spans_contribute_no_samples() {
        let tx = id(4);
        let records = vec![rec(5, 0, TraceEvent::TxSubmitted { tx })];
        let t = Timelines::build(&records, 0);
        let s = t.stage_samples();
        assert!(s.propagation_us.is_empty());
        assert!(s.total_commit_us.is_empty());
    }
}
