//! The typed event taxonomy and the canonical record encoding.
//!
//! Every variant carries only `Copy` data (fixed-size ids, counters), so a
//! record is a flat value: recording one is a bounds check and a few moves,
//! never a format or an allocation.

/// A 32-byte content identifier (a transaction id or block hash), kept as
/// raw bytes so this crate needs no dependency on `dcs-crypto`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Id(pub [u8; 32]);

impl Id {
    /// The first eight bytes rendered as hex — a compact, collision-safe
    /// label for exports and logs.
    pub fn short_hex(&self) -> String {
        let mut s = String::with_capacity(16);
        for b in &self.0[..8] {
            push_hex(&mut s, *b);
        }
        s
    }
}

fn push_hex(s: &mut String, b: u8) {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    s.push(HEX[(b >> 4) as usize] as char);
    s.push(HEX[(b & 0xf) as usize] as char);
}

impl core::fmt::Debug for Id {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Id({})", self.short_hex())
    }
}

/// The actor id carried by events emitted on behalf of the network fabric
/// (sends, drops) rather than a peer.
pub const NETWORK_ACTOR: u32 = u32::MAX;

/// The actor id for the discrete-event queue itself (dispatch events).
pub const SIM_ACTOR: u32 = u32::MAX - 1;

/// The sender value in [`TraceEvent::FirstSeen`] when the entity originated
/// locally (a self-produced block, a directly submitted transaction) rather
/// than arriving from a peer. Origins anchor hop counting at hop 0.
pub const ORIGIN: u32 = u32::MAX;

/// Event categories, used for counters and per-category sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Discrete-event queue dispatch.
    Sim,
    /// Message fabric: send, deliver, drop, partition.
    Net,
    /// Mempool admission, proposals, PBFT phases.
    Consensus,
    /// Block import, orphans, reorgs, inclusion, finality.
    Chain,
    /// Workload submission and middleware events.
    App,
}

impl Category {
    /// Number of categories (the length of per-category arrays).
    pub const COUNT: usize = 5;

    /// Dense index for per-category arrays.
    pub fn index(self) -> usize {
        match self {
            Category::Sim => 0,
            Category::Net => 1,
            Category::Consensus => 2,
            Category::Chain => 3,
            Category::App => 4,
        }
    }

    /// Stable lowercase name, used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Category::Sim => "sim",
            Category::Net => "net",
            Category::Consensus => "consensus",
            Category::Chain => "chain",
            Category::App => "app",
        }
    }
}

/// What kind of entity a gossip first-sighting refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntityKind {
    /// A client transaction.
    Tx,
    /// A block.
    Block,
}

/// Why the mempool refused a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The pool is at capacity.
    Full,
    /// The transaction id is already pooled.
    Duplicate,
    /// An admission pipeline refused a carried witness.
    BadWitness,
}

/// How an imported block landed relative to the canonical chain. Reorgs
/// and orphans have their own events ([`TraceEvent::Reorg`],
/// [`TraceEvent::BlockOrphaned`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportOutcome {
    /// The canonical chain grew by this block.
    Extended,
    /// The block joined a non-canonical branch.
    SideChain,
}

/// A PBFT protocol phase transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbftPhase {
    /// Leader broadcast a proposal.
    PrePrepare,
    /// Replica broadcast its prepare vote.
    Prepare,
    /// Replica broadcast its commit vote.
    Commit,
    /// Replica entered a new view.
    ViewChange,
}

/// One structured trace event. See [`Category`] for the grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The event queue dispatched one event (`pending` left behind).
    SimDispatch {
        /// Events still pending after this dispatch.
        pending: u32,
    },
    /// The fabric accepted a message for delivery.
    MsgSent {
        /// Destination peer.
        to: u32,
        /// Payload size in bytes.
        bytes: u32,
    },
    /// A message reached its destination (the emitting actor is the
    /// receiver).
    MsgDelivered {
        /// Source peer.
        from: u32,
    },
    /// A message was lost to the drop probability.
    MsgDropped {
        /// Intended destination.
        to: u32,
    },
    /// A message was blocked by a partition.
    MsgPartitioned {
        /// Intended destination.
        to: u32,
    },
    /// A client handed a transaction to its point-of-contact peer.
    TxSubmitted {
        /// Transaction id.
        tx: Id,
    },
    /// First sighting of an entity at this peer — the edges of the gossip
    /// propagation tree (`from` is [`ORIGIN`] at the producing peer).
    FirstSeen {
        /// Transaction or block.
        kind: EntityKind,
        /// Entity id.
        id: Id,
        /// Peer it arrived from, or [`ORIGIN`].
        from: u32,
    },
    /// The mempool admitted a transaction.
    TxAdmitted {
        /// Transaction id.
        tx: Id,
    },
    /// The mempool refused a transaction.
    TxRejected {
        /// Transaction id.
        tx: Id,
        /// Why it was refused.
        reason: RejectReason,
    },
    /// This peer assembled and proposed a block.
    BlockProposed {
        /// Block hash.
        block: Id,
        /// Block height.
        height: u64,
        /// Client transactions carried (coinbase excluded).
        txs: u32,
    },
    /// A PBFT phase transition at this replica.
    Pbft {
        /// The phase entered.
        phase: PbftPhase,
        /// View number.
        view: u64,
        /// Sequence number (0 for view changes).
        seq: u64,
    },
    /// A block was imported into the local replica.
    BlockImported {
        /// Block hash.
        block: Id,
        /// Block height.
        height: u64,
        /// Where it landed.
        outcome: ImportOutcome,
    },
    /// A block with unknown ancestry was parked in the orphan pool.
    BlockOrphaned {
        /// Block hash.
        block: Id,
    },
    /// The local replica switched branches.
    Reorg {
        /// Blocks reverted from the old branch (the reorg depth).
        reverted: u64,
        /// Blocks applied from the new branch.
        applied: u64,
    },
    /// A transaction joined this replica's canonical chain.
    TxIncluded {
        /// Transaction id.
        tx: Id,
        /// Including block hash.
        block: Id,
    },
    /// The local finality horizon advanced to `height`.
    Finalized {
        /// New finalized height.
        height: u64,
    },
    /// The middleware event bus delivered an application notification.
    AppEvent {
        /// Emitting transaction id.
        tx: Id,
    },
    /// The node fail-stopped: inbound deliveries and timers are suppressed
    /// until a matching [`TraceEvent::NodeRestarted`].
    NodeCrashed,
    /// The node came back up and began rebuilding from its block store.
    NodeRestarted,
    /// The fabric delivered an extra copy of a message (duplication fault;
    /// the original delivery is traced separately).
    MsgDuplicated {
        /// Destination peer.
        to: u32,
    },
    /// A message was corrupted in flight and discarded at the checksum
    /// (corruption fault).
    MsgCorrupted {
        /// Intended destination.
        to: u32,
    },
    /// The engine dispatched one event to this actor. Carries only the
    /// event's `(source, sequence)` ordering key — data that is identical
    /// no matter how actors are sharded — so the dispatch stream digests
    /// match across worker counts.
    EngineDispatch {
        /// Logical source actor of the dispatched event.
        src: u32,
        /// The source's per-event sequence number.
        seq: u64,
    },
    /// A schedule requested an instant in the past and was clamped to the
    /// current time (the clock never moves backwards).
    SimClamped {
        /// How far in the past the requested instant was, in microseconds.
        lag_us: u64,
    },
}

impl TraceEvent {
    /// The category this event counts and samples under.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::SimDispatch { .. }
            | TraceEvent::EngineDispatch { .. }
            | TraceEvent::SimClamped { .. } => Category::Sim,
            TraceEvent::MsgSent { .. }
            | TraceEvent::MsgDelivered { .. }
            | TraceEvent::MsgDropped { .. }
            | TraceEvent::MsgPartitioned { .. }
            | TraceEvent::NodeCrashed
            | TraceEvent::NodeRestarted
            | TraceEvent::MsgDuplicated { .. }
            | TraceEvent::MsgCorrupted { .. } => Category::Net,
            TraceEvent::FirstSeen { .. }
            | TraceEvent::TxAdmitted { .. }
            | TraceEvent::TxRejected { .. }
            | TraceEvent::BlockProposed { .. }
            | TraceEvent::Pbft { .. } => Category::Consensus,
            TraceEvent::BlockImported { .. }
            | TraceEvent::BlockOrphaned { .. }
            | TraceEvent::Reorg { .. }
            | TraceEvent::TxIncluded { .. }
            | TraceEvent::Finalized { .. } => Category::Chain,
            TraceEvent::TxSubmitted { .. } | TraceEvent::AppEvent { .. } => Category::App,
        }
    }

    /// Stable snake_case event name, used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SimDispatch { .. } => "sim_dispatch",
            TraceEvent::MsgSent { .. } => "msg_sent",
            TraceEvent::MsgDelivered { .. } => "msg_delivered",
            TraceEvent::MsgDropped { .. } => "msg_dropped",
            TraceEvent::MsgPartitioned { .. } => "msg_partitioned",
            TraceEvent::TxSubmitted { .. } => "tx_submitted",
            TraceEvent::FirstSeen { .. } => "first_seen",
            TraceEvent::TxAdmitted { .. } => "tx_admitted",
            TraceEvent::TxRejected { .. } => "tx_rejected",
            TraceEvent::BlockProposed { .. } => "block_proposed",
            TraceEvent::Pbft { .. } => "pbft",
            TraceEvent::BlockImported { .. } => "block_imported",
            TraceEvent::BlockOrphaned { .. } => "block_orphaned",
            TraceEvent::Reorg { .. } => "reorg",
            TraceEvent::TxIncluded { .. } => "tx_included",
            TraceEvent::Finalized { .. } => "finalized",
            TraceEvent::AppEvent { .. } => "app_event",
            TraceEvent::NodeCrashed => "node_crashed",
            TraceEvent::NodeRestarted => "node_restarted",
            TraceEvent::MsgDuplicated { .. } => "msg_duplicated",
            TraceEvent::MsgCorrupted { .. } => "msg_corrupted",
            TraceEvent::EngineDispatch { .. } => "engine_dispatch",
            TraceEvent::SimClamped { .. } => "sim_clamped",
        }
    }

    /// Appends the canonical byte encoding (tag + little-endian fields) —
    /// the digest input. Any representational change here intentionally
    /// changes every digest.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            TraceEvent::SimDispatch { pending } => {
                out.push(0);
                out.extend_from_slice(&pending.to_le_bytes());
            }
            TraceEvent::MsgSent { to, bytes } => {
                out.push(1);
                out.extend_from_slice(&to.to_le_bytes());
                out.extend_from_slice(&bytes.to_le_bytes());
            }
            TraceEvent::MsgDelivered { from } => {
                out.push(2);
                out.extend_from_slice(&from.to_le_bytes());
            }
            TraceEvent::MsgDropped { to } => {
                out.push(3);
                out.extend_from_slice(&to.to_le_bytes());
            }
            TraceEvent::MsgPartitioned { to } => {
                out.push(4);
                out.extend_from_slice(&to.to_le_bytes());
            }
            TraceEvent::TxSubmitted { tx } => {
                out.push(5);
                out.extend_from_slice(&tx.0);
            }
            TraceEvent::FirstSeen { kind, id, from } => {
                out.push(6);
                out.push(matches!(kind, EntityKind::Block) as u8);
                out.extend_from_slice(&id.0);
                out.extend_from_slice(&from.to_le_bytes());
            }
            TraceEvent::TxAdmitted { tx } => {
                out.push(7);
                out.extend_from_slice(&tx.0);
            }
            TraceEvent::TxRejected { tx, reason } => {
                out.push(8);
                out.extend_from_slice(&tx.0);
                out.push(*reason as u8);
            }
            TraceEvent::BlockProposed { block, height, txs } => {
                out.push(9);
                out.extend_from_slice(&block.0);
                out.extend_from_slice(&height.to_le_bytes());
                out.extend_from_slice(&txs.to_le_bytes());
            }
            TraceEvent::Pbft { phase, view, seq } => {
                out.push(10);
                out.push(*phase as u8);
                out.extend_from_slice(&view.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            TraceEvent::BlockImported {
                block,
                height,
                outcome,
            } => {
                out.push(11);
                out.extend_from_slice(&block.0);
                out.extend_from_slice(&height.to_le_bytes());
                out.push(*outcome as u8);
            }
            TraceEvent::BlockOrphaned { block } => {
                out.push(12);
                out.extend_from_slice(&block.0);
            }
            TraceEvent::Reorg { reverted, applied } => {
                out.push(13);
                out.extend_from_slice(&reverted.to_le_bytes());
                out.extend_from_slice(&applied.to_le_bytes());
            }
            TraceEvent::TxIncluded { tx, block } => {
                out.push(14);
                out.extend_from_slice(&tx.0);
                out.extend_from_slice(&block.0);
            }
            TraceEvent::Finalized { height } => {
                out.push(15);
                out.extend_from_slice(&height.to_le_bytes());
            }
            TraceEvent::AppEvent { tx } => {
                out.push(16);
                out.extend_from_slice(&tx.0);
            }
            TraceEvent::NodeCrashed => {
                out.push(17);
            }
            TraceEvent::NodeRestarted => {
                out.push(18);
            }
            TraceEvent::MsgDuplicated { to } => {
                out.push(19);
                out.extend_from_slice(&to.to_le_bytes());
            }
            TraceEvent::MsgCorrupted { to } => {
                out.push(20);
                out.extend_from_slice(&to.to_le_bytes());
            }
            TraceEvent::EngineDispatch { src, seq } => {
                out.push(21);
                out.extend_from_slice(&src.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
            }
            TraceEvent::SimClamped { lag_us } => {
                out.push(22);
                out.extend_from_slice(&lag_us.to_le_bytes());
            }
        }
    }
}

/// One recorded event: when, who, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Sim-time timestamp in microseconds.
    pub at_us: u64,
    /// Emitting actor: a peer index, [`NETWORK_ACTOR`], or [`SIM_ACTOR`].
    pub node: u32,
    /// The event.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// Appends the canonical byte encoding (the digest input).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.at_us.to_le_bytes());
        out.extend_from_slice(&self.node.to_le_bytes());
        self.event.encode_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_dense_and_named() {
        let cats = [
            Category::Sim,
            Category::Net,
            Category::Consensus,
            Category::Chain,
            Category::App,
        ];
        for (i, c) in cats.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(!c.name().is_empty());
        }
        assert_eq!(cats.len(), Category::COUNT);
    }

    #[test]
    fn encodings_are_distinct_per_variant() {
        let id = Id([7u8; 32]);
        let events = [
            TraceEvent::SimDispatch { pending: 1 },
            TraceEvent::MsgSent { to: 1, bytes: 1 },
            TraceEvent::MsgDelivered { from: 1 },
            TraceEvent::MsgDropped { to: 1 },
            TraceEvent::MsgPartitioned { to: 1 },
            TraceEvent::TxSubmitted { tx: id },
            TraceEvent::FirstSeen {
                kind: EntityKind::Tx,
                id,
                from: 1,
            },
            TraceEvent::TxAdmitted { tx: id },
            TraceEvent::TxRejected {
                tx: id,
                reason: RejectReason::Full,
            },
            TraceEvent::BlockProposed {
                block: id,
                height: 1,
                txs: 1,
            },
            TraceEvent::Pbft {
                phase: PbftPhase::Prepare,
                view: 1,
                seq: 1,
            },
            TraceEvent::BlockImported {
                block: id,
                height: 1,
                outcome: ImportOutcome::Extended,
            },
            TraceEvent::BlockOrphaned { block: id },
            TraceEvent::Reorg {
                reverted: 1,
                applied: 2,
            },
            TraceEvent::TxIncluded { tx: id, block: id },
            TraceEvent::Finalized { height: 1 },
            TraceEvent::AppEvent { tx: id },
            TraceEvent::NodeCrashed,
            TraceEvent::NodeRestarted,
            TraceEvent::MsgDuplicated { to: 1 },
            TraceEvent::MsgCorrupted { to: 1 },
            TraceEvent::EngineDispatch { src: 1, seq: 1 },
            TraceEvent::SimClamped { lag_us: 1 },
        ];
        let mut seen = std::collections::BTreeSet::new();
        for (i, ev) in events.iter().enumerate() {
            let mut buf = Vec::new();
            ev.encode_into(&mut buf);
            assert_eq!(buf[0] as usize, i, "tags are assigned in catalogue order");
            assert!(seen.insert(buf), "duplicate encoding for {ev:?}");
            assert!(!ev.name().is_empty());
        }
    }

    #[test]
    fn id_short_hex() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        bytes[7] = 0x01;
        let id = Id(bytes);
        assert_eq!(id.short_hex(), "ab00000000000001");
        assert_eq!(format!("{id:?}"), "Id(ab00000000000001)");
    }
}
