//! # dcs-metrics — live observability instruments
//!
//! A dependency-free metrics layer for watching a ledger *while it runs*
//! (DESIGN.md §16). Three instrument kinds — [`Counter`], [`Gauge`], and
//! fixed-bucket [`Histogram`] — hang off a shared [`Registry`] that renders
//! the Prometheus text exposition format, plus a bounded [`Ring`] flight
//! recorder for "what just happened" lines.
//!
//! ## Determinism contract
//!
//! Instrument updates are plain `Ordering::Relaxed` atomic arithmetic:
//! they never branch, never allocate, and never feed a value back into the
//! caller. Instrumented code therefore takes the *same* execution path
//! whether a registry is attached or not, which is what lets
//! `tests/determinism.rs` assert bit-identical same-seed digests with
//! metrics on vs off. Reading the registry (snapshots, exposition) is the
//! observer's job — it happens on the serve thread, off the simulation hot
//! path, and tolerates torn cross-instrument views by design.
//!
//! All snapshot reads happen inside `*Stats`-returning functions — the
//! workspace `atomic-ordering` lint recognises that shape as metrics
//! plumbing and requires it.

mod exposition;
mod instrument;
mod registry;
mod ring;

pub use exposition::{escape_help, escape_label_value};
pub use instrument::{Counter, CounterStats, Gauge, GaugeStats, Histogram, HistogramStats};
pub use registry::{Kind, Registry, RegistryStats};
pub use ring::{Ring, RingStats};
