//! The registry: named families of labeled series, rendered as Prometheus
//! text exposition.
//!
//! Registration is idempotent — asking for the same name + label set again
//! returns a handle to the *same* underlying series, so instrumented
//! components don't need to coordinate who registers first. A kind
//! conflict (the same family name registered as two different instrument
//! kinds) returns a detached instrument — updates still work, they just
//! aren't exported — and bumps a conflict counter surfaced in
//! [`RegistryStats`] so the bug is visible rather than silent.
//!
//! The registry mutex guards only the family map (registration and render
//! walks); instrument *updates* never touch it.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::exposition::{escape_help, label_block};
use crate::instrument::{Counter, Gauge, Histogram};

/// Instrument kind, for family typing and the `# TYPE` line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotone event count.
    Counter,
    /// Up/down level.
    Gauge,
    /// Fixed-bucket distribution.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    help: String,
    kind: Kind,
    /// Keyed by the label set in registration order (sorted by caller).
    series: BTreeMap<Vec<(String, String)>, Series>,
}

#[derive(Default)]
struct Inner {
    families: BTreeMap<String, Family>,
    kind_conflicts: u64,
}

/// A shared, cloneable handle to the metric families.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl core::fmt::Debug for Registry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "Registry(families={}, series={}, kind_conflicts={})",
            s.families, s.series, s.kind_conflicts
        )
    }
}

/// Point-in-time summary of registry shape (not series values).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegistryStats {
    /// Number of registered families.
    pub families: usize,
    /// Total series across all families.
    pub series: usize,
    /// Registrations rejected because the family already had another kind.
    pub kind_conflicts: u64,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A poisoned registry mutex only means a panic elsewhere while
        // registering; the map itself is still structurally sound.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn canonical_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
        let mut v: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        v.sort();
        v
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        let key = Self::canonical_labels(labels);
        let mut inner = self.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind: Kind::Counter,
                series: BTreeMap::new(),
            });
        if family.kind != Kind::Counter {
            inner.kind_conflicts += 1;
            return Counter::new();
        }
        let series = family
            .series
            .entry(key)
            .or_insert_with(|| Series::Counter(Counter::new()));
        match series {
            Series::Counter(c) => c.clone(),
            // Unreachable in practice (family kind gates the variant), but
            // degrade to a detached handle rather than panic.
            _ => Counter::new(),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = Self::canonical_labels(labels);
        let mut inner = self.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind: Kind::Gauge,
                series: BTreeMap::new(),
            });
        if family.kind != Kind::Gauge {
            inner.kind_conflicts += 1;
            return Gauge::new();
        }
        let series = family
            .series
            .entry(key)
            .or_insert_with(|| Series::Gauge(Gauge::new()));
        match series {
            Series::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    /// Registers (or retrieves) a histogram series with the given bounds.
    ///
    /// Bounds are fixed by the first registration; later callers receive
    /// the existing series regardless of the bounds they pass.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        let key = Self::canonical_labels(labels);
        let mut inner = self.lock();
        let family = inner
            .families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                help: help.to_string(),
                kind: Kind::Histogram,
                series: BTreeMap::new(),
            });
        if family.kind != Kind::Histogram {
            inner.kind_conflicts += 1;
            return Histogram::new(bounds);
        }
        let series = family
            .series
            .entry(key)
            .or_insert_with(|| Series::Histogram(Histogram::new(bounds)));
        match series {
            Series::Histogram(h) => h.clone(),
            _ => Histogram::new(bounds),
        }
    }

    /// Registry shape summary.
    pub fn stats(&self) -> RegistryStats {
        let inner = self.lock();
        RegistryStats {
            families: inner.families.len(),
            series: inner.families.values().map(|f| f.series.len()).sum(),
            kind_conflicts: inner.kind_conflicts,
        }
    }

    /// Renders the full Prometheus text exposition (format 0.0.4).
    ///
    /// Families and series render in name/label order (BTreeMap), so the
    /// output layout is stable across calls; the *values* are whatever the
    /// relaxed atomics held at read time.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, family) in &inner.families {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            label_block(labels, None),
                            c.stats().value
                        );
                    }
                    Series::Gauge(g) => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            label_block(labels, None),
                            g.stats().value
                        );
                    }
                    Series::Histogram(h) => {
                        let s = h.stats();
                        for (le, cum) in s.cumulative() {
                            let le_text = match le {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let _ = writeln!(
                                out,
                                "{name}_bucket{} {cum}",
                                label_block(labels, Some(("le", &le_text)))
                            );
                        }
                        let _ = writeln!(out, "{name}_sum{} {}", label_block(labels, None), s.sum);
                        let _ =
                            writeln!(out, "{name}_count{} {}", label_block(labels, None), s.count);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_per_name_and_labels() {
        let r = Registry::new();
        let a = r.counter("dcs_tx_admitted_total", "admitted txs", &[("shard", "0")]);
        let b = r.counter("dcs_tx_admitted_total", "admitted txs", &[("shard", "0")]);
        let other = r.counter("dcs_tx_admitted_total", "admitted txs", &[("shard", "1")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.stats().value, 2, "same labels share one series");
        assert_eq!(other.stats().value, 5);
        let s = r.stats();
        assert_eq!((s.families, s.series, s.kind_conflicts), (1, 2, 0));
    }

    #[test]
    fn label_order_does_not_split_series() {
        let r = Registry::new();
        let a = r.gauge("g", "h", &[("a", "1"), ("b", "2")]);
        let b = r.gauge("g", "h", &[("b", "2"), ("a", "1")]);
        a.set(9);
        assert_eq!(b.stats().value, 9);
    }

    #[test]
    fn kind_conflict_returns_detached_and_counts() {
        let r = Registry::new();
        let c = r.counter("m", "h", &[]);
        c.inc();
        let g = r.gauge("m", "h", &[]);
        g.set(42);
        assert_eq!(c.stats().value, 1, "registered series unaffected");
        assert_eq!(r.stats().kind_conflicts, 1);
        assert!(
            !r.render().contains("42"),
            "detached instrument must not be exported"
        );
    }

    #[test]
    fn render_produces_parseable_exposition_lines() {
        let r = Registry::new();
        r.counter("dcs_blocks_total", "blocks imported", &[]).add(3);
        r.gauge("dcs_chain_height", "canonical height", &[("node", "n-0")])
            .set(17);
        let h = r.histogram("dcs_commit_us", "commit latency", &[], &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(500);
        let text = r.render();
        for line in text.lines() {
            let ok = line.starts_with("# HELP ")
                || line.starts_with("# TYPE ")
                || parses_as_sample(line);
            assert!(ok, "unparseable exposition line: {line:?}");
        }
        assert!(text.contains("dcs_blocks_total 3"));
        assert!(text.contains("dcs_chain_height{node=\"n-0\"} 17"));
        assert!(text.contains("dcs_commit_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("dcs_commit_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("dcs_commit_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("dcs_commit_us_sum 555"));
        assert!(text.contains("dcs_commit_us_count 3"));
    }

    #[test]
    fn render_escapes_label_values() {
        let r = Registry::new();
        r.counter("m", "h", &[("path", "a\\b\"c\nd")]).inc();
        let text = r.render();
        assert!(text.contains(r#"m{path="a\\b\"c\nd"} 1"#), "got: {text}");
    }

    /// Minimal `name{labels} value` parser mirroring the CI smoke check.
    fn parses_as_sample(line: &str) -> bool {
        let (name_part, value_part) = match line.rsplit_once(' ') {
            Some(p) => p,
            None => return false,
        };
        if value_part.parse::<i64>().is_err() {
            return false;
        }
        let name_end = name_part.find('{').unwrap_or(name_part.len());
        let name = &name_part[..name_end];
        !name.is_empty()
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }
}
