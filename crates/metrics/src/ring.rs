//! A bounded flight recorder: the last N formatted event lines, oldest
//! dropped first. Serves `/recent` — the "what just happened" view that
//! complements the cumulative registry.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

struct Inner {
    buf: VecDeque<String>,
    cap: usize,
    dropped: u64,
}

/// A shared, cloneable bounded ring of recent event lines.
#[derive(Clone)]
pub struct Ring {
    inner: Arc<Mutex<Inner>>,
}

impl core::fmt::Debug for Ring {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        write!(f, "Ring(len={}, capacity={})", s.len, s.capacity)
    }
}

/// Point-in-time summary of the ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RingStats {
    /// Lines currently held.
    pub len: usize,
    /// Maximum lines held before the oldest is dropped.
    pub capacity: usize,
    /// Lines evicted to make room since creation.
    pub dropped: u64,
}

impl Ring {
    /// Creates a ring holding at most `capacity` lines (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        Self {
            inner: Arc::new(Mutex::new(Inner {
                buf: VecDeque::with_capacity(cap),
                cap,
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends a line, evicting the oldest when full.
    pub fn push(&self, line: impl Into<String>) {
        let mut inner = self.lock();
        if inner.buf.len() == inner.cap {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        let line = line.into();
        inner.buf.push_back(line);
    }

    /// Copies the current contents, oldest first.
    pub fn snapshot(&self) -> Vec<String> {
        self.lock().buf.iter().cloned().collect()
    }

    /// Ring occupancy summary.
    pub fn stats(&self) -> RingStats {
        let inner = self.lock();
        RingStats {
            len: inner.buf.len(),
            capacity: inner.cap,
            dropped: inner.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_bounded_and_ordered() {
        let r = Ring::new(3);
        for i in 0..5 {
            r.push(format!("line-{i}"));
        }
        assert_eq!(r.snapshot(), vec!["line-2", "line-3", "line-4"]);
        let s = r.stats();
        assert_eq!((s.len, s.capacity, s.dropped), (3, 3, 2));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let r = Ring::new(0);
        r.push("a");
        r.push("b");
        assert_eq!(r.snapshot(), vec!["b"]);
    }
}
