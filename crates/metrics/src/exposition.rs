//! Prometheus text exposition (format 0.0.4) helpers: escaping and line
//! formatting. The [`Registry`](crate::Registry) drives rendering; the
//! functions here are pure string work so they can be unit-tested against
//! the format's escaping rules directly.

/// Escapes a label *value*: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes `# HELP` text: `\` → `\\`, newline → `\n` (quotes are legal).
pub fn escape_help(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a sorted label set as `{k1="v1",k2="v2"}`, or `""` when empty.
/// `extra` appends one more pair (used for histogram `le`).
pub fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_escape_backslash_quote_newline() {
        assert_eq!(escape_label_value(r#"a\b"#), r#"a\\b"#);
        assert_eq!(escape_label_value(r#"say "hi""#), r#"say \"hi\""#);
        assert_eq!(escape_label_value("line1\nline2"), r"line1\nline2");
        // All three at once, order preserved.
        assert_eq!(escape_label_value("\\\"\n"), r#"\\\"\n"#);
    }

    #[test]
    fn help_escapes_backslash_and_newline_only() {
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
    }

    #[test]
    fn label_block_renders_sorted_pairs_and_extra() {
        let labels = vec![
            ("shard".to_string(), "3".to_string()),
            ("reason".to_string(), "full".to_string()),
        ];
        assert_eq!(label_block(&labels, None), r#"{shard="3",reason="full"}"#);
        assert_eq!(
            label_block(&labels, Some(("le", "+Inf"))),
            r#"{shard="3",reason="full",le="+Inf"}"#
        );
        assert_eq!(label_block(&[], None), "");
        assert_eq!(label_block(&[], Some(("le", "10"))), r#"{le="10"}"#);
    }
}
