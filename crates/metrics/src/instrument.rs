//! The three instrument kinds: counter, gauge, fixed-bucket histogram.
//!
//! Instruments are cheap `Arc` handles; cloning one yields another view of
//! the same underlying atomics, which is how the [`Registry`](crate::Registry)
//! hands the *same* series to every caller that registers the same
//! name+labels. Updates are `Relaxed` stores/RMWs — no fences, no branches
//! on loaded values — so instrumented code never changes behaviour based on
//! metric state. Reads are confined to `*Stats`-returning snapshot
//! functions per the workspace `atomic-ordering` lint contract.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl core::fmt::Debug for Counter {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Counter({})", self.stats().value)
    }
}

/// Point-in-time snapshot of a [`Counter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterStats {
    /// Total count observed so far.
    pub value: u64,
}

impl Counter {
    /// Creates a detached counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Mirrors an externally maintained monotone total into the counter.
    ///
    /// Samplers that copy an existing statistic (e.g. `NetStats::delivered`)
    /// call this instead of `add`; `fetch_max` keeps the series monotone
    /// even if two samplers race or a snapshot arrives out of order.
    pub fn set_total(&self, total: u64) {
        self.value.fetch_max(total, Ordering::Relaxed);
    }

    /// Snapshot for exposition.
    pub fn stats(&self) -> CounterStats {
        CounterStats {
            value: self.value.load(Ordering::Relaxed),
        }
    }
}

/// A value that can go up and down (depths, heights, lags).
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl core::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Gauge({})", self.stats().value)
    }
}

/// Point-in-time snapshot of a [`Gauge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GaugeStats {
    /// Current gauge level.
    pub value: i64,
}

impl Gauge {
    /// Creates a detached gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Snapshot for exposition.
    pub fn stats(&self) -> GaugeStats {
        GaugeStats {
            value: self.value.load(Ordering::Relaxed),
        }
    }
}

struct HistogramInner {
    /// Strictly ascending upper bounds; bucket `i` counts observations
    /// `v <= bounds[i]` (exclusive of smaller buckets). One extra slot at
    /// the end counts the `+Inf` overflow.
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// A fixed-bucket histogram over `u64` observations (typically µs or bytes).
///
/// Bucket bounds are fixed at construction — there is no resizing, so
/// `observe` is two relaxed `fetch_add`s and a binary search over a small
/// immutable slice.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl core::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        write!(f, "Histogram(count={}, sum={})", s.count, s.sum)
    }
}

/// Point-in-time snapshot of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramStats {
    /// The configured upper bounds (ascending, not cumulative).
    pub bounds: Vec<u64>,
    /// Per-bucket observation counts, `bounds.len() + 1` entries; the last
    /// entry is the `+Inf` overflow bucket.
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Histogram {
    /// Creates a detached histogram with the given upper bounds.
    ///
    /// Bounds are sorted and deduplicated defensively; an empty slice
    /// yields a single `+Inf` bucket (count + sum only).
    pub fn new(bounds: &[u64]) -> Self {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        // First bound >= v, i.e. the smallest `le` bucket that admits `v`;
        // past-the-end lands in the +Inf overflow slot.
        let idx = self.inner.bounds.partition_point(|b| *b < v);
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Snapshot for exposition.
    pub fn stats(&self) -> HistogramStats {
        let buckets: Vec<u64> = self
            .inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramStats {
            bounds: self.inner.bounds.clone(),
            buckets,
            sum: self.inner.sum.load(Ordering::Relaxed),
            count,
        }
    }
}

impl HistogramStats {
    /// Cumulative `(le, count)` pairs in exposition order; `None` is `+Inf`.
    pub fn cumulative(&self) -> Vec<(Option<u64>, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.buckets.len());
        for (i, c) in self.buckets.iter().enumerate() {
            acc += c;
            out.push((self.bounds.get(i).copied(), acc));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_inc_add_and_monotone_mirror() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.stats().value, 5);
        // Mirroring a monotone external total never regresses.
        c.set_total(3);
        assert_eq!(c.stats().value, 5);
        c.set_total(10);
        assert_eq!(c.stats().value, 10);
        // Clones view the same series.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.stats().value, 11);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(7);
        g.add(-10);
        assert_eq!(g.stats().value, -3);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_le() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.observe(1); // le=10
        h.observe(10); // le=10 (boundary is inclusive)
        h.observe(11); // le=100
        h.observe(100); // le=100
        h.observe(1000); // le=1000
        h.observe(1001); // +Inf
        let s = h.stats();
        assert_eq!(s.buckets, vec![2, 2, 1, 1]);
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1 + 10 + 11 + 100 + 1000 + 1001);
        assert_eq!(
            s.cumulative(),
            vec![(Some(10), 2), (Some(100), 4), (Some(1000), 5), (None, 6)]
        );
    }

    #[test]
    fn histogram_zero_and_empty_bounds() {
        let h = Histogram::new(&[]);
        h.observe(0);
        h.observe(u64::MAX);
        let s = h.stats();
        assert_eq!(s.buckets, vec![2]);
        assert_eq!(s.cumulative(), vec![(None, 2)]);

        // Zero observations land in the smallest bucket, not below it.
        let h = Histogram::new(&[5]);
        h.observe(0);
        assert_eq!(h.stats().buckets, vec![1, 0]);
    }

    #[test]
    fn histogram_unsorted_bounds_are_normalised() {
        let h = Histogram::new(&[100, 10, 100]);
        assert_eq!(h.stats().bounds, vec![10, 100]);
    }
}
