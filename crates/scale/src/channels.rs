//! Off-chain payment channels (§5.4, \[30\] — the Lightning network): two
//! parties lock funds on-chain once, then exchange dual-signed balance
//! updates off-chain at arbitrary rate, settling on-chain only at close.
//! Multi-hop payments route through a [`ChannelNetwork`] with HTLCs, so
//! parties without a direct channel still pay each other with **zero**
//! on-chain transactions — the offloading experiment E8 measures.
//!
//! Disputes use the standard scheme: a unilateral close publishes the
//! closer's latest dual-signed state and opens a dispute window during
//! which the counterparty may publish a *newer* dual-signed state, which
//! wins.

use dcs_crypto::codec::Encode;
use dcs_crypto::{sha256, Address, Hash256, KeyPair, PublicKey, Signature};
use dcs_primitives::Amount;
use dcs_state::AccountDb;
use std::collections::BTreeMap;

/// A dual-signed channel state: the `seq`-th balance split of the channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelState {
    /// The channel this state belongs to.
    pub channel_id: u64,
    /// Monotonic sequence number; higher wins disputes.
    pub seq: u64,
    /// Balance of the `a` side.
    pub balance_a: Amount,
    /// Balance of the `b` side.
    pub balance_b: Amount,
}

impl ChannelState {
    /// The digest both parties sign.
    pub fn digest(&self) -> Hash256 {
        let mut bytes = Vec::with_capacity(32);
        self.channel_id.encode(&mut bytes);
        self.seq.encode(&mut bytes);
        self.balance_a.encode(&mut bytes);
        self.balance_b.encode(&mut bytes);
        sha256(&bytes)
    }
}

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// A signature over the state failed verification.
    BadSignature,
    /// State update rejected (stale seq or balance mismatch).
    BadState(String),
    /// The channel is not in the phase required for this operation.
    WrongPhase,
    /// Routing failed: no path with enough capacity.
    NoRoute,
    /// Unknown party or channel.
    Unknown,
    /// Signing failed (one-time keys exhausted).
    Crypto(dcs_crypto::CryptoError),
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::BadSignature => write!(f, "bad state signature"),
            ChannelError::BadState(m) => write!(f, "bad state: {m}"),
            ChannelError::WrongPhase => write!(f, "operation invalid in this channel phase"),
            ChannelError::NoRoute => write!(f, "no route with sufficient capacity"),
            ChannelError::Unknown => write!(f, "unknown party or channel"),
            ChannelError::Crypto(e) => write!(f, "crypto failure: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Channel lifecycle phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Funds locked, updates flowing.
    Open,
    /// A unilateral close was published; the dispute window is running.
    Disputed {
        /// The published state (so far winning).
        state: ChannelState,
        /// Ledger height at which the window closes.
        deadline: u64,
    },
    /// Settled on-chain.
    Closed,
}

/// A two-party payment channel.
#[derive(Debug)]
pub struct PaymentChannel {
    /// Channel id.
    pub id: u64,
    /// The `a` party's address.
    pub a: Address,
    /// The `b` party's address.
    pub b: Address,
    key_a: PublicKey,
    key_b: PublicKey,
    /// Latest accepted dual-signed state.
    pub state: ChannelState,
    /// Lifecycle phase.
    pub phase: Phase,
}

impl PaymentChannel {
    /// A freshly opened channel between `a` and `b` with the given public
    /// keys and funding split. Public so on-chain channel applications (the
    /// middleware `ChannelApp`) can host channels without owning the
    /// parties' signing keys the way [`ChannelNetwork`] does.
    pub fn open(
        id: u64,
        a: Address,
        b: Address,
        key_a: PublicKey,
        key_b: PublicKey,
        fund_a: Amount,
        fund_b: Amount,
    ) -> Self {
        PaymentChannel {
            id,
            a,
            b,
            key_a,
            key_b,
            state: ChannelState {
                channel_id: id,
                seq: 0,
                balance_a: fund_a,
                balance_b: fund_b,
            },
            phase: Phase::Open,
        }
    }

    /// Total locked capacity.
    pub fn capacity(&self) -> Amount {
        self.state.balance_a + self.state.balance_b
    }

    /// Verifies a dual-signed state against this channel's keys, id, and
    /// capacity (shared by the close and challenge paths).
    fn check_signed_state(
        &self,
        state: &ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
    ) -> Result<(), ChannelError> {
        let digest = state.digest();
        if !self.key_a.verify(&digest, sig_a) || !self.key_b.verify(&digest, sig_b) {
            return Err(ChannelError::BadSignature);
        }
        if state.channel_id != self.id || state.balance_a + state.balance_b != self.capacity() {
            return Err(ChannelError::BadState("invalid published state".into()));
        }
        Ok(())
    }

    /// Cooperative close: settles the latest state. Returns the final
    /// `(a, b)` payout.
    ///
    /// # Errors
    ///
    /// [`ChannelError::WrongPhase`] if not open.
    pub fn settle_cooperative(&mut self) -> Result<(Amount, Amount), ChannelError> {
        if self.phase != Phase::Open {
            return Err(ChannelError::WrongPhase);
        }
        self.phase = Phase::Closed;
        Ok((self.state.balance_a, self.state.balance_b))
    }

    /// Unilateral close: publishes a dual-signed state and opens the
    /// dispute window until `deadline` (a ledger height).
    ///
    /// # Errors
    ///
    /// Signature, state, or phase errors.
    pub fn publish_close(
        &mut self,
        state: ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
        deadline: u64,
    ) -> Result<(), ChannelError> {
        if self.phase != Phase::Open {
            return Err(ChannelError::WrongPhase);
        }
        self.check_signed_state(&state, sig_a, sig_b)?;
        self.phase = Phase::Disputed { state, deadline };
        Ok(())
    }

    /// Challenges a disputed close with a strictly newer dual-signed state,
    /// at ledger height `height`.
    ///
    /// # Errors
    ///
    /// Not newer, window expired, or signature errors.
    pub fn challenge_close(
        &mut self,
        newer: ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
        height: u64,
    ) -> Result<(), ChannelError> {
        let Phase::Disputed { state, deadline } = &self.phase else {
            return Err(ChannelError::WrongPhase);
        };
        if height > *deadline {
            return Err(ChannelError::BadState("dispute window expired".into()));
        }
        if newer.seq <= state.seq {
            return Err(ChannelError::BadState("challenge is not newer".into()));
        }
        let deadline = *deadline;
        self.check_signed_state(&newer, sig_a, sig_b)?;
        self.phase = Phase::Disputed {
            state: newer,
            deadline,
        };
        Ok(())
    }

    /// Finalizes a disputed close once its window has passed `height`.
    /// Returns the winning `(a, b)` payout.
    ///
    /// # Errors
    ///
    /// Window still open or wrong phase.
    pub fn finalize(&mut self, height: u64) -> Result<(Amount, Amount), ChannelError> {
        let Phase::Disputed { state, deadline } = &self.phase else {
            return Err(ChannelError::WrongPhase);
        };
        if height <= *deadline {
            return Err(ChannelError::BadState("dispute window still open".into()));
        }
        let payout = (state.balance_a, state.balance_b);
        self.phase = Phase::Closed;
        Ok(payout)
    }

    /// Verifies and applies a dual-signed state update.
    ///
    /// # Errors
    ///
    /// Stale sequence, altered capacity, or bad signatures.
    pub fn apply_update(
        &mut self,
        state: ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
    ) -> Result<(), ChannelError> {
        if self.phase != Phase::Open {
            return Err(ChannelError::WrongPhase);
        }
        if state.channel_id != self.id {
            return Err(ChannelError::BadState("wrong channel id".into()));
        }
        if state.seq <= self.state.seq {
            return Err(ChannelError::BadState(format!(
                "stale seq {} (current {})",
                state.seq, self.state.seq
            )));
        }
        if state.balance_a + state.balance_b != self.capacity() {
            return Err(ChannelError::BadState("capacity changed".into()));
        }
        let digest = state.digest();
        if !self.key_a.verify(&digest, sig_a) || !self.key_b.verify(&digest, sig_b) {
            return Err(ChannelError::BadSignature);
        }
        self.state = state;
        Ok(())
    }
}

/// The whole channel network: parties (with their signing keys, since this
/// simulates all of them), channels, and the settlement ledger.
#[derive(Debug)]
pub struct ChannelNetwork {
    // BTreeMap, not HashMap: party iteration order feeds signing-key use
    // and replay digests (the PR 3 determinism sweep).
    parties: BTreeMap<Address, KeyPair>,
    channels: Vec<PaymentChannel>,
    ledger: AccountDb,
    height: u64,
    dispute_window: u64,
    /// On-chain transactions consumed (opens, closes, disputes) — the E8
    /// numerator.
    pub onchain_txs: u64,
    /// Off-chain state updates exchanged.
    pub offchain_updates: u64,
    /// Completed payments.
    pub payments: u64,
}

impl ChannelNetwork {
    /// An empty network with the given dispute window (in ledger heights).
    pub fn new(dispute_window: u64) -> Self {
        ChannelNetwork {
            parties: BTreeMap::new(),
            channels: Vec::new(),
            ledger: AccountDb::new(),
            height: 0,
            dispute_window,
            onchain_txs: 0,
            offchain_updates: 0,
            payments: 0,
        }
    }

    /// Registers a party with on-chain funds; returns its address.
    /// `key_height` bounds its lifetime signature count at `2^key_height`.
    pub fn add_party(&mut self, seed: [u8; 32], key_height: u8, funds: Amount) -> Address {
        let kp = KeyPair::generate(seed, key_height);
        let addr = kp.address();
        self.ledger.credit(&addr, funds);
        self.parties.insert(addr, kp);
        addr
    }

    /// On-chain balance of a party.
    pub fn onchain_balance(&self, addr: &Address) -> Amount {
        self.ledger.balance(addr)
    }

    /// Advances the settlement ledger height (time passing on-chain).
    pub fn advance_height(&mut self, blocks: u64) {
        self.height += blocks;
    }

    /// Opens a channel funded `fund_a` + `fund_b` (one on-chain tx).
    ///
    /// # Errors
    ///
    /// Unknown parties or insufficient on-chain funds.
    pub fn open_channel(
        &mut self,
        a: Address,
        b: Address,
        fund_a: Amount,
        fund_b: Amount,
    ) -> Result<u64, ChannelError> {
        let key_a = self
            .parties
            .get(&a)
            .ok_or(ChannelError::Unknown)?
            .public_key();
        let key_b = self
            .parties
            .get(&b)
            .ok_or(ChannelError::Unknown)?
            .public_key();
        self.ledger
            .debit(&a, fund_a)
            .and_then(|()| self.ledger.debit(&b, fund_b))
            .map_err(|e| ChannelError::BadState(e.to_string()))?;
        let id = self.channels.len() as u64;
        self.onchain_txs += 1;
        self.channels
            .push(PaymentChannel::open(id, a, b, key_a, key_b, fund_a, fund_b));
        Ok(id)
    }

    fn sign_state(
        &mut self,
        who: &Address,
        state: &ChannelState,
    ) -> Result<Signature, ChannelError> {
        self.parties
            .get_mut(who)
            .ok_or(ChannelError::Unknown)?
            .sign(&state.digest())
            .map_err(ChannelError::Crypto)
    }

    /// One direct off-chain payment over an open channel (no on-chain tx).
    ///
    /// # Errors
    ///
    /// Insufficient channel balance or signature/phase errors.
    pub fn channel_pay(
        &mut self,
        channel_id: u64,
        from: Address,
        amount: Amount,
    ) -> Result<(), ChannelError> {
        let (a, b, mut new_state) = {
            let ch = self
                .channels
                .get(channel_id as usize)
                .ok_or(ChannelError::Unknown)?;
            (ch.a, ch.b, ch.state.clone())
        };
        new_state.seq += 1;
        if from == a {
            if new_state.balance_a < amount {
                return Err(ChannelError::BadState(
                    "insufficient channel balance".into(),
                ));
            }
            new_state.balance_a -= amount;
            new_state.balance_b += amount;
        } else if from == b {
            if new_state.balance_b < amount {
                return Err(ChannelError::BadState(
                    "insufficient channel balance".into(),
                ));
            }
            new_state.balance_b -= amount;
            new_state.balance_a += amount;
        } else {
            return Err(ChannelError::Unknown);
        }
        let sig_a = self.sign_state(&a, &new_state)?;
        let sig_b = self.sign_state(&b, &new_state)?;
        let ch = self
            .channels
            .get_mut(channel_id as usize)
            .expect("checked above");
        ch.apply_update(new_state, &sig_a, &sig_b)?;
        self.offchain_updates += 1;
        self.payments += 1;
        Ok(())
    }

    /// Cooperative close: both parties settle the latest state on-chain
    /// (one on-chain tx).
    ///
    /// # Errors
    ///
    /// [`ChannelError::WrongPhase`] if not open.
    pub fn cooperative_close(&mut self, channel_id: u64) -> Result<(), ChannelError> {
        let ch = self
            .channels
            .get_mut(channel_id as usize)
            .ok_or(ChannelError::Unknown)?;
        let (pa, pb) = ch.settle_cooperative()?;
        let (a, b) = (ch.a, ch.b);
        self.ledger.credit(&a, pa);
        self.ledger.credit(&b, pb);
        self.onchain_txs += 1;
        Ok(())
    }

    /// Unilateral close: publish a dual-signed state and start the dispute
    /// window (one on-chain tx).
    ///
    /// # Errors
    ///
    /// Signature or phase errors.
    pub fn unilateral_close(
        &mut self,
        channel_id: u64,
        state: ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
    ) -> Result<(), ChannelError> {
        let deadline = self.height + self.dispute_window;
        let ch = self
            .channels
            .get_mut(channel_id as usize)
            .ok_or(ChannelError::Unknown)?;
        ch.publish_close(state, sig_a, sig_b, deadline)?;
        self.onchain_txs += 1;
        Ok(())
    }

    /// Challenge a disputed close with a newer dual-signed state (one
    /// on-chain tx).
    ///
    /// # Errors
    ///
    /// Not newer, window expired, or signature errors.
    pub fn challenge(
        &mut self,
        channel_id: u64,
        newer: ChannelState,
        sig_a: &Signature,
        sig_b: &Signature,
    ) -> Result<(), ChannelError> {
        let height = self.height;
        let ch = self
            .channels
            .get_mut(channel_id as usize)
            .ok_or(ChannelError::Unknown)?;
        ch.challenge_close(newer, sig_a, sig_b, height)?;
        self.onchain_txs += 1;
        Ok(())
    }

    /// Finalizes a disputed close after its window (one on-chain tx).
    ///
    /// # Errors
    ///
    /// Window still open or wrong phase.
    pub fn finalize_close(&mut self, channel_id: u64) -> Result<(), ChannelError> {
        let height = self.height;
        let ch = self
            .channels
            .get_mut(channel_id as usize)
            .ok_or(ChannelError::Unknown)?;
        let (pa, pb) = ch.finalize(height)?;
        let (a, b) = (ch.a, ch.b);
        self.ledger.credit(&a, pa);
        self.ledger.credit(&b, pb);
        self.onchain_txs += 1;
        Ok(())
    }

    /// Finds a route of open channels from `from` to `to` with directional
    /// capacity ≥ `amount` on every hop (breadth-first, fewest hops).
    pub fn find_route(&self, from: Address, to: Address, amount: Amount) -> Option<Vec<u64>> {
        // BTreeMap keeps the search — and therefore the chosen route on
        // ties — independent of hash order.
        let mut visited: BTreeMap<Address, (Address, u64)> = BTreeMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                // Reconstruct channel path.
                let mut path = Vec::new();
                let mut node = to;
                while node != from {
                    let (prev, ch) = visited[&node];
                    path.push(ch);
                    node = prev;
                }
                path.reverse();
                return Some(path);
            }
            for ch in &self.channels {
                if ch.phase != Phase::Open {
                    continue;
                }
                let next = if ch.a == cur && ch.state.balance_a >= amount {
                    ch.b
                } else if ch.b == cur && ch.state.balance_b >= amount {
                    ch.a
                } else {
                    continue;
                };
                if next != from && !visited.contains_key(&next) {
                    visited.insert(next, (cur, ch.id));
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// A multi-hop payment: routes HTLC-style through intermediate
    /// channels. All hops settle atomically once the recipient reveals the
    /// preimage — entirely off-chain.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NoRoute`] or per-hop update failures.
    pub fn pay(
        &mut self,
        from: Address,
        to: Address,
        amount: Amount,
    ) -> Result<usize, ChannelError> {
        let route = self
            .find_route(from, to, amount)
            .ok_or(ChannelError::NoRoute)?;
        // The recipient's preimage reveal triggers hop-by-hop settlement —
        // in this simulation all parties are honest, so settle directly.
        let mut sender = from;
        for &ch_id in &route {
            let counterparty = {
                let ch = &self.channels[ch_id as usize];
                if ch.a == sender {
                    ch.b
                } else {
                    ch.a
                }
            };
            self.channel_pay(ch_id, sender, amount)?;
            self.payments -= 1; // channel_pay counted a payment per hop
            sender = counterparty;
        }
        self.payments += 1;
        Ok(route.len())
    }

    /// Access to a channel (for inspection in tests/benches).
    pub fn channel(&self, id: u64) -> Option<&PaymentChannel> {
        self.channels.get(id as usize)
    }

    /// The dual-signed current state of a channel (utility for unilateral
    /// close flows).
    ///
    /// # Errors
    ///
    /// Unknown channel or exhausted signing keys.
    pub fn signed_current_state(
        &mut self,
        channel_id: u64,
    ) -> Result<(ChannelState, Signature, Signature), ChannelError> {
        let (a, b, state) = {
            let ch = self
                .channels
                .get(channel_id as usize)
                .ok_or(ChannelError::Unknown)?;
            (ch.a, ch.b, ch.state.clone())
        };
        let sig_a = self.sign_state(&a, &state)?;
        let sig_b = self.sign_state(&b, &state)?;
        Ok((state, sig_a, sig_b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network_with_parties(n: u8) -> (ChannelNetwork, Vec<Address>) {
        let mut net = ChannelNetwork::new(10);
        let parties: Vec<Address> = (0..n)
            .map(|i| net.add_party([i + 1; 32], 6, 100_000))
            .collect();
        (net, parties)
    }

    #[test]
    fn open_pay_cooperative_close() {
        let (mut net, p) = network_with_parties(2);
        let (a, b) = (p[0], p[1]);
        let ch = net.open_channel(a, b, 10_000, 5_000).unwrap();
        assert_eq!(net.onchain_balance(&a), 90_000);

        for _ in 0..20 {
            net.channel_pay(ch, a, 100).unwrap();
        }
        net.channel_pay(ch, b, 500).unwrap();
        let state = &net.channel(ch).unwrap().state;
        assert_eq!(state.balance_a, 10_000 - 2_000 + 500);
        assert_eq!(state.balance_b, 5_000 + 2_000 - 500);

        net.cooperative_close(ch).unwrap();
        assert_eq!(net.onchain_balance(&a), 90_000 + 8_500);
        assert_eq!(net.onchain_balance(&b), 95_000 + 6_500);
        // 21 payments, 2 on-chain txs total — the E8 offloading claim.
        assert_eq!(net.onchain_txs, 2);
        assert_eq!(net.offchain_updates, 21);
    }

    #[test]
    fn stale_update_rejected() {
        let (mut net, p) = network_with_parties(2);
        let ch = net.open_channel(p[0], p[1], 1_000, 1_000).unwrap();
        net.channel_pay(ch, p[0], 10).unwrap();
        // Replay the same (now stale) state.
        let (state, sa, sb) = net.signed_current_state(ch).unwrap();
        let stale = ChannelState {
            seq: state.seq,
            ..state
        };
        let err = net.channels[ch as usize]
            .apply_update(stale, &sa, &sb)
            .unwrap_err();
        assert!(matches!(err, ChannelError::BadState(_)));
    }

    #[test]
    fn unilateral_close_with_stale_state_is_challenged() {
        let (mut net, p) = network_with_parties(2);
        let (a, b) = (p[0], p[1]);
        let ch = net.open_channel(a, b, 10_000, 0).unwrap();
        // a pays b 4000 over time; a keeps the old (richer-for-a) state.
        let (old_state, old_sa, old_sb) = net.signed_current_state(ch).unwrap();
        for _ in 0..4 {
            net.channel_pay(ch, a, 1_000).unwrap();
        }
        let (new_state, new_sa, new_sb) = net.signed_current_state(ch).unwrap();

        // a tries to cheat with the stale state.
        net.unilateral_close(ch, old_state, &old_sa, &old_sb)
            .unwrap();
        // b challenges inside the window with the newer state.
        net.challenge(ch, new_state, &new_sa, &new_sb).unwrap();
        net.advance_height(11);
        net.finalize_close(ch).unwrap();
        assert_eq!(
            net.onchain_balance(&b),
            100_000 + 4_000,
            "the newer state won"
        );
    }

    #[test]
    fn finalize_respects_dispute_window() {
        let (mut net, p) = network_with_parties(2);
        let ch = net.open_channel(p[0], p[1], 1_000, 1_000).unwrap();
        let (state, sa, sb) = net.signed_current_state(ch).unwrap();
        net.unilateral_close(ch, state, &sa, &sb).unwrap();
        assert!(matches!(
            net.finalize_close(ch),
            Err(ChannelError::BadState(_))
        ));
        net.advance_height(11);
        net.finalize_close(ch).unwrap();
    }

    #[test]
    fn multi_hop_routing() {
        // a — b — c — d line; a pays d through two intermediaries.
        let (mut net, p) = network_with_parties(4);
        let (a, b, c, d) = (p[0], p[1], p[2], p[3]);
        net.open_channel(a, b, 5_000, 5_000).unwrap();
        net.open_channel(b, c, 5_000, 5_000).unwrap();
        net.open_channel(c, d, 5_000, 5_000).unwrap();

        let onchain_before = net.onchain_txs;
        let hops = net.pay(a, d, 700).unwrap();
        assert_eq!(hops, 3);
        assert_eq!(
            net.onchain_txs, onchain_before,
            "routing is fully off-chain"
        );
        // d's channel balance with c grew.
        let ch_cd = net.channel(2).unwrap();
        assert_eq!(ch_cd.state.balance_b, 5_700);
        // Intermediaries are net flat.
        let ch_ab = net.channel(0).unwrap();
        let ch_bc = net.channel(1).unwrap();
        let b_total = ch_ab.state.balance_b + ch_bc.state.balance_a;
        assert_eq!(b_total, 10_000);
    }

    #[test]
    fn routing_respects_capacity() {
        let (mut net, p) = network_with_parties(3);
        let (a, b, c) = (p[0], p[1], p[2]);
        net.open_channel(a, b, 100, 0).unwrap();
        net.open_channel(b, c, 5_000, 0).unwrap();
        // a→c needs 500 through the a—b hop which only has 100.
        assert_eq!(net.pay(a, c, 500), Err(ChannelError::NoRoute));
        assert!(net.pay(a, c, 50).is_ok());
    }

    #[test]
    fn route_prefers_fewest_hops() {
        let (mut net, p) = network_with_parties(4);
        let (a, b, c, d) = (p[0], p[1], p[2], p[3]);
        net.open_channel(a, b, 1_000, 1_000).unwrap();
        net.open_channel(b, c, 1_000, 1_000).unwrap();
        net.open_channel(c, d, 1_000, 1_000).unwrap();
        net.open_channel(a, d, 1_000, 1_000).unwrap(); // direct channel
        let route = net.find_route(a, d, 100).unwrap();
        assert_eq!(route.len(), 1, "direct channel beats the 3-hop path");
    }
}
