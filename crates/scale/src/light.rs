//! Light clients (§2.2: Merkle trees "provide fast lookups of transaction
//! inclusion for lightweight clients, who do not possess a full copy of the
//! ledger" — Bitcoin's Simple Payment Verification). A [`LightClient`]
//! holds headers only, verifies chain linkage (and PoW targets when real
//! mining is in use), checks transaction inclusion with Merkle proofs, and
//! can bootstrap from a checkpoint instead of genesis (§5.4's bootstrap
//! problem). Every byte downloaded is accounted — the E10 measurand.

use dcs_crypto::codec::Encode;
use dcs_crypto::{Hash256, MerkleProof};
use dcs_primitives::BlockHeader;

/// Errors from light-client operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LightError {
    /// A header does not link to its predecessor.
    BrokenLink {
        /// The offending header's height.
        height: u64,
    },
    /// A header's height is not parent height + 1.
    BadHeight {
        /// Expected height.
        expected: u64,
        /// Got height.
        got: u64,
    },
    /// A PoW header hash misses its difficulty target.
    BadPow {
        /// The offending height.
        height: u64,
    },
    /// Queried a height the client has no header for.
    UnknownHeight(u64),
}

impl core::fmt::Display for LightError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            LightError::BrokenLink { height } => write!(f, "header {height} does not link"),
            LightError::BadHeight { expected, got } => {
                write!(f, "bad height {got}, expected {expected}")
            }
            LightError::BadPow { height } => write!(f, "header {height} misses its PoW target"),
            LightError::UnknownHeight(h) => write!(f, "no header at height {h}"),
        }
    }
}

impl std::error::Error for LightError {}

/// A header-only chain client.
#[derive(Debug)]
pub struct LightClient {
    headers: Vec<BlockHeader>,
    /// Height of `headers[0]`.
    base_height: u64,
    /// Verify `Seal::Work` targets (on for real-mined chains, off for
    /// simulated solve-time chains; see DESIGN.md substitution).
    pub check_pow: bool,
    /// Total bytes this client has downloaded (headers + proofs).
    pub bytes_downloaded: u64,
}

impl LightClient {
    /// A client starting from a trusted genesis header.
    pub fn new(genesis: BlockHeader) -> Self {
        let mut c = LightClient {
            headers: Vec::new(),
            base_height: genesis.height,
            check_pow: false,
            bytes_downloaded: 0,
        };
        c.bytes_downloaded += genesis.encoded().len() as u64;
        c.headers.push(genesis);
        c
    }

    /// Bootstraps from a trusted checkpoint header at any height — the
    /// fast-sync answer to "a full download of the blockchain ... will
    /// continue to grow over time" (§5.4).
    pub fn from_checkpoint(checkpoint: BlockHeader) -> Self {
        Self::new(checkpoint)
    }

    /// Height of the latest synced header.
    pub fn tip_height(&self) -> u64 {
        self.base_height + self.headers.len() as u64 - 1
    }

    /// The synced header at `height`, if held.
    pub fn header_at(&self, height: u64) -> Option<&BlockHeader> {
        height
            .checked_sub(self.base_height)
            .and_then(|i| self.headers.get(i as usize))
    }

    /// Verifies and appends a run of consecutive headers.
    ///
    /// # Errors
    ///
    /// Linkage, height, or PoW errors; headers before the first failure are
    /// kept.
    pub fn sync(&mut self, headers: &[BlockHeader]) -> Result<(), LightError> {
        for header in headers {
            let tip = self
                .headers
                .last()
                .expect("client always holds >= 1 header");
            if header.parent != tip.hash() {
                return Err(LightError::BrokenLink {
                    height: header.height,
                });
            }
            let expected = tip.height + 1;
            if header.height != expected {
                return Err(LightError::BadHeight {
                    expected,
                    got: header.height,
                });
            }
            if self.check_pow && !header.meets_pow_target() {
                return Err(LightError::BadPow {
                    height: header.height,
                });
            }
            self.bytes_downloaded += header.encoded().len() as u64;
            self.headers.push(header.clone());
        }
        Ok(())
    }

    /// SPV check: is transaction `tx_id` included in the block at `height`?
    /// Accounts the proof's download size.
    ///
    /// # Errors
    ///
    /// [`LightError::UnknownHeight`] if the header is not synced.
    pub fn verify_inclusion(
        &mut self,
        tx_id: &Hash256,
        height: u64,
        proof: &MerkleProof,
    ) -> Result<bool, LightError> {
        let header = self
            .header_at(height)
            .ok_or(LightError::UnknownHeight(height))?
            .clone();
        self.bytes_downloaded += proof.encoded_len() as u64;
        Ok(proof.verify(tx_id, &header.tx_root))
    }

    /// Confirmations of the block at `height` (0 if it is the tip).
    pub fn confirmations(&self, height: u64) -> Option<u64> {
        (height <= self.tip_height() && height >= self.base_height)
            .then(|| self.tip_height() - height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_chain::{Chain, NullMachine};
    use dcs_crypto::{Address, MerkleTree};
    use dcs_primitives::{AccountTx, Block, ChainConfig, Seal, Transaction};

    /// Builds a real chain with a few txs per block and returns it.
    fn build_chain(blocks: u64) -> Chain<NullMachine> {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut chain = Chain::new(genesis, cfg, NullMachine);
        for h in 1..=blocks {
            let txs: Vec<Transaction> = (0..4)
                .map(|i| {
                    Transaction::Account(AccountTx::transfer(
                        Address::from_index(h * 10 + i),
                        Address::from_index(1),
                        h,
                        0,
                    ))
                })
                .collect();
            let header = BlockHeader::new(
                chain.tip_hash(),
                h,
                h * 1_000,
                Address::from_index(9),
                Seal::None,
            );
            chain.import(Block::new(header, txs)).unwrap();
        }
        chain
    }

    fn headers_of(chain: &Chain<NullMachine>, from: u64) -> Vec<BlockHeader> {
        chain.canonical()[from as usize..]
            .iter()
            .map(|h| chain.tree().get(h).unwrap().header().clone())
            .collect()
    }

    #[test]
    fn sync_and_spv_verify() {
        let chain = build_chain(20);
        let genesis_header = chain
            .tree()
            .get(&chain.canonical_at(0).unwrap())
            .unwrap()
            .header()
            .clone();
        let mut client = LightClient::new(genesis_header);
        client.sync(&headers_of(&chain, 1)).unwrap();
        assert_eq!(client.tip_height(), 20);

        // Prove a tx from block 7.
        let block = chain
            .tree()
            .get(&chain.canonical_at(7).unwrap())
            .unwrap()
            .block();
        let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
        let tree = MerkleTree::from_leaves(leaves.clone());
        let proof = tree.prove(2).unwrap();
        assert!(client.verify_inclusion(&leaves[2], 7, &proof).unwrap());
        // A different tx fails against the same proof.
        assert!(!client.verify_inclusion(&leaves[3], 7, &proof).unwrap());
        assert_eq!(client.confirmations(7), Some(13));
    }

    #[test]
    fn broken_link_rejected() {
        let chain = build_chain(5);
        let genesis_header = chain
            .tree()
            .get(&chain.canonical_at(0).unwrap())
            .unwrap()
            .header()
            .clone();
        let mut client = LightClient::new(genesis_header);
        let mut headers = headers_of(&chain, 1);
        headers[2].parent = dcs_crypto::sha256(b"severed");
        let err = client.sync(&headers).unwrap_err();
        assert!(matches!(err, LightError::BrokenLink { height: 3 }));
        assert_eq!(client.tip_height(), 2, "prefix before the break was kept");
    }

    #[test]
    fn checkpoint_bootstrap_downloads_less() {
        let chain = build_chain(50);
        let g = chain
            .tree()
            .get(&chain.canonical_at(0).unwrap())
            .unwrap()
            .header()
            .clone();
        let cp = chain
            .tree()
            .get(&chain.canonical_at(40).unwrap())
            .unwrap()
            .header()
            .clone();

        let mut from_genesis = LightClient::new(g);
        from_genesis.sync(&headers_of(&chain, 1)).unwrap();

        let mut from_checkpoint = LightClient::from_checkpoint(cp);
        from_checkpoint.sync(&headers_of(&chain, 41)).unwrap();

        assert_eq!(from_genesis.tip_height(), from_checkpoint.tip_height());
        assert!(
            from_checkpoint.bytes_downloaded < from_genesis.bytes_downloaded / 4,
            "checkpoint sync: {} vs full header sync: {}",
            from_checkpoint.bytes_downloaded,
            from_genesis.bytes_downloaded
        );
    }

    #[test]
    fn spv_is_cheaper_than_full_blocks() {
        // The E10 comparison in miniature: headers + one proof ≪ full chain.
        let chain = build_chain(30);
        let full_bytes: u64 = chain.canonical()[1..]
            .iter()
            .map(|h| chain.tree().get(h).unwrap().block().encoded_len() as u64)
            .sum();
        let g = chain
            .tree()
            .get(&chain.canonical_at(0).unwrap())
            .unwrap()
            .header()
            .clone();
        let mut client = LightClient::new(g);
        client.sync(&headers_of(&chain, 1)).unwrap();
        let block = chain
            .tree()
            .get(&chain.canonical_at(15).unwrap())
            .unwrap()
            .block();
        let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
        let proof = MerkleTree::from_leaves(leaves.clone()).prove(0).unwrap();
        client.verify_inclusion(&leaves[0], 15, &proof).unwrap();
        assert!(
            client.bytes_downloaded < full_bytes / 2,
            "SPV {} bytes vs full {} bytes",
            client.bytes_downloaded,
            full_bytes
        );
    }

    #[test]
    fn pow_check_enforced_when_enabled() {
        use dcs_primitives::BlockHeader;
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let mut client = LightClient::new(genesis.header.clone());
        client.check_pow = true;

        // A structurally valid but unmined header must be rejected.
        let fake = BlockHeader {
            tx_root: Hash256::ZERO,
            state_root: Hash256::ZERO,
            ..BlockHeader::new(
                genesis.hash(),
                1,
                1,
                Address::ZERO,
                Seal::Work {
                    nonce: 1,
                    difficulty: 1 << 20,
                },
            )
        };
        assert!(matches!(
            client.sync(&[fake]),
            Err(LightError::BadPow { height: 1 })
        ));
    }
}
