//! Scalable system innovations (§5.4 of the paper): "the performance of the
//! system can be improved by introducing parallelism, such as sharding and
//! side-chains", plus offloading "transactions outside the blockchain, as in
//! the Lightning network", and the light-client/bootstrap problem.
//!
//! * [`sharding`] — hash-partitioned account shards with two-phase
//!   cross-shard transfers (experiment E7).
//! * [`channels`] — off-chain payment channels with signed state updates,
//!   cooperative/unilateral close with dispute window, and multi-hop HTLC
//!   routing over a channel graph (experiment E8).
//! * [`sidechain`] — a two-way peg: lock on the main chain, mint on the
//!   side chain against an SPV inclusion proof, burn to withdraw.
//! * [`light`] — SPV light clients: header-only sync, Merkle transaction
//!   proofs, checkpoint bootstrap, and the download-size accounting of
//!   experiment E10.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beacon;
pub mod channels;
pub mod light;
pub mod sharding;
pub mod sidechain;

pub use beacon::{BeaconNet, BeaconParams, BeaconRunStats, ScaleMsg, ScalePeer};
pub use channels::{ChannelNetwork, PaymentChannel};
pub use light::LightClient;
pub use sharding::{ShardedLedger, Transfer};
pub use sidechain::PeggedSidechain;
