//! Side-chains with a two-way peg (§5.4, \[39\]): value locks on the main
//! chain and mints on a side chain against an **SPV proof** of the lock
//! transaction's inclusion — the side chain's bridge runs a [`LightClient`]
//! of the main chain, so no trusted third party vouches for deposits.
//! Burning on the side chain unlocks the escrow back on the main chain.

use crate::light::LightClient;
use dcs_chain::Chain;
use dcs_contracts::AccountMachine;
use dcs_crypto::{sha256, Address, Hash256, MerkleTree};
use dcs_primitives::{
    AccountTx, Amount, Block, BlockHeader, ChainConfig, GasSchedule, Seal, Transaction,
};
use std::collections::{BTreeMap, BTreeSet};

/// Errors from peg operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PegError {
    /// The SPV proof did not verify against the synced main-chain header.
    BadProof,
    /// The lock transaction was already pegged in (replay).
    AlreadyPegged(Hash256),
    /// The referenced transaction is not a lock to the bridge.
    NotALock,
    /// The burn transaction was already pegged out.
    AlreadyBurned(Hash256),
    /// A transfer failed.
    Transfer(String),
    /// The bridge's light client has not synced the relevant header.
    HeaderMissing(u64),
}

impl core::fmt::Display for PegError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PegError::BadProof => write!(f, "SPV proof failed"),
            PegError::AlreadyPegged(h) => write!(f, "lock {h} already pegged in"),
            PegError::NotALock => write!(f, "transaction is not a bridge lock"),
            PegError::AlreadyBurned(h) => write!(f, "burn {h} already pegged out"),
            PegError::Transfer(e) => write!(f, "transfer failed: {e}"),
            PegError::HeaderMissing(h) => write!(f, "main header {h} not synced"),
        }
    }
}

impl std::error::Error for PegError {}

/// A main chain plus a pegged side chain.
#[derive(Debug)]
pub struct PeggedSidechain {
    /// The main ("parent") chain.
    pub main: Chain<AccountMachine>,
    /// The side chain.
    pub side: Chain<AccountMachine>,
    bridge_client: LightClient,
    // BTree collections, not hash ones: replay-protection sets and nonce
    // maps are consensus state here, and iteration order must never vary
    // between runs (the PR 3 determinism sweep).
    pegged_in: BTreeSet<Hash256>,
    pegged_out: BTreeSet<Hash256>,
    main_nonces: BTreeMap<Address, u64>,
    side_nonces: BTreeMap<Address, u64>,
    minted_total: Amount,
    burned_total: Amount,
}

/// The escrow address locking pegged funds on the main chain.
pub fn bridge_address() -> Address {
    Address::from_hash(&sha256(b"two-way-peg-bridge"))
}

/// The burn address on the side chain.
pub fn burn_address() -> Address {
    Address::from_hash(&sha256(b"side-chain-burn"))
}

impl PeggedSidechain {
    /// Creates the pair of chains; `alloc` funds main-chain accounts.
    pub fn new(alloc: &[(Address, Amount)]) -> Self {
        let mut main_cfg = ChainConfig::hyperledger_like();
        main_cfg.chain_id = 100;
        let mut side_cfg = ChainConfig::hyperledger_like();
        side_cfg.chain_id = 200;
        let main_genesis = dcs_chain::genesis_block(&main_cfg);
        let side_genesis = dcs_chain::genesis_block(&side_cfg);
        let mut main_machine = AccountMachine::with_alloc(alloc);
        main_machine.schedule = GasSchedule::free();
        let mut side_machine = AccountMachine::new();
        side_machine.schedule = GasSchedule::free();
        let bridge_client = LightClient::new(main_genesis.header.clone());
        PeggedSidechain {
            main: Chain::new(main_genesis, main_cfg, main_machine),
            side: Chain::new(side_genesis, side_cfg, side_machine),
            bridge_client,
            pegged_in: BTreeSet::new(),
            pegged_out: BTreeSet::new(),
            main_nonces: BTreeMap::new(),
            side_nonces: BTreeMap::new(),
            minted_total: 0,
            burned_total: 0,
        }
    }

    fn next_main_nonce(&mut self, who: &Address) -> u64 {
        let e = self.main_nonces.entry(*who).or_insert(0);
        let n = *e;
        *e += 1;
        n
    }

    fn next_side_nonce(&mut self, who: &Address) -> u64 {
        let e = self.side_nonces.entry(*who).or_insert(0);
        let n = *e;
        *e += 1;
        n
    }

    fn seal(chain: &mut Chain<AccountMachine>, txs: Vec<Transaction>) -> Block {
        let header = BlockHeader::new(
            chain.tip_hash(),
            chain.height() + 1,
            chain.height() + 1,
            Address::ZERO,
            Seal::Authority {
                view: 0,
                sequence: chain.height() + 1,
                votes: 1,
            },
        );
        let block = Block::new(header, txs);
        chain
            .import(block.clone())
            .expect("sequencer blocks are valid");
        block
    }

    /// Step 1 of peg-in: the user locks `amount` to the bridge escrow on
    /// the main chain. Returns the lock transaction and its block height.
    ///
    /// # Errors
    ///
    /// [`PegError::Transfer`] if the user lacks funds.
    pub fn lock_on_main(
        &mut self,
        user: Address,
        amount: Amount,
    ) -> Result<(Transaction, u64), PegError> {
        if self.main.machine().db.balance(&user) < amount {
            return Err(PegError::Transfer("insufficient main-chain balance".into()));
        }
        let nonce = self.next_main_nonce(&user);
        let mut tx = AccountTx::transfer(user, bridge_address(), amount, nonce);
        tx.gas_limit = 0;
        tx.gas_price = 0;
        let tx = Transaction::Account(tx);
        let block = Self::seal(&mut self.main, vec![tx.clone()]);
        // The bridge's light client follows the main chain.
        self.bridge_client
            .sync(std::slice::from_ref(&block.header))
            .expect("sequencer headers link");
        Ok((tx, block.header.height))
    }

    /// Step 2 of peg-in: present the lock tx with an SPV proof; the bridge
    /// verifies it against its light client and mints on the side chain.
    ///
    /// # Errors
    ///
    /// Bad proofs, replays, non-lock transactions, unsynced headers.
    pub fn peg_in(
        &mut self,
        lock_tx: &Transaction,
        height: u64,
        proof: &dcs_crypto::MerkleProof,
    ) -> Result<(), PegError> {
        let tx_id = lock_tx.id();
        if self.pegged_in.contains(&tx_id) {
            return Err(PegError::AlreadyPegged(tx_id));
        }
        let Transaction::Account(acct) = lock_tx else {
            return Err(PegError::NotALock);
        };
        if acct.to != Some(bridge_address()) || acct.value == 0 {
            return Err(PegError::NotALock);
        }
        let header = self
            .bridge_client
            .header_at(height)
            .ok_or(PegError::HeaderMissing(height))?;
        if !proof.verify(&tx_id, &header.tx_root) {
            return Err(PegError::BadProof);
        }
        self.pegged_in.insert(tx_id);
        // Mint on the side chain: a coinbase creates the pegged supply.
        let mint = Transaction::Coinbase {
            to: acct.from,
            value: acct.value,
            height: self.side.height() + 1,
        };
        Self::seal(&mut self.side, vec![mint]);
        self.minted_total += acct.value;
        Ok(())
    }

    /// Convenience: full peg-in (lock, prove, mint) in one call.
    ///
    /// # Errors
    ///
    /// Any peg error.
    pub fn deposit(&mut self, user: Address, amount: Amount) -> Result<(), PegError> {
        let (tx, height) = self.lock_on_main(user, amount)?;
        let proof = self
            .prove_on_main(&tx.id(), height)
            .ok_or(PegError::BadProof)?;
        self.peg_in(&tx, height, &proof)
    }

    /// Builds an SPV proof for a main-chain transaction.
    pub fn prove_on_main(&self, tx_id: &Hash256, height: u64) -> Option<dcs_crypto::MerkleProof> {
        let hash = self.main.canonical_at(height)?;
        let block = self.main.tree().get(&hash)?.body()?;
        let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
        let index = leaves.iter().position(|l| l == tx_id)?;
        MerkleTree::from_leaves(leaves).prove(index)
    }

    /// Peg-out: the user burns side-chain funds; the bridge releases the
    /// escrow on the main chain.
    ///
    /// # Errors
    ///
    /// Insufficient side balance or replayed burns.
    pub fn withdraw(&mut self, user: Address, amount: Amount) -> Result<(), PegError> {
        if self.side.machine().db.balance(&user) < amount {
            return Err(PegError::Transfer("insufficient side-chain balance".into()));
        }
        let nonce = self.next_side_nonce(&user);
        let mut burn = AccountTx::transfer(user, burn_address(), amount, nonce);
        burn.gas_limit = 0;
        burn.gas_price = 0;
        let burn = Transaction::Account(burn);
        let burn_id = burn.id();
        if self.pegged_out.contains(&burn_id) {
            return Err(PegError::AlreadyBurned(burn_id));
        }
        Self::seal(&mut self.side, vec![burn]);
        self.pegged_out.insert(burn_id);
        self.burned_total += amount;

        // Release escrow on the main chain.
        let nonce = self.next_main_nonce(&bridge_address());
        let mut release = AccountTx::transfer(bridge_address(), user, amount, nonce);
        release.gas_limit = 0;
        release.gas_price = 0;
        let block = Self::seal(&mut self.main, vec![Transaction::Account(release)]);
        self.bridge_client
            .sync(std::slice::from_ref(&block.header))
            .expect("sequencer headers link");
        Ok(())
    }

    /// Peg invariant: main-chain escrow equals the side chain's circulating
    /// (minted − burned) supply — no value is created or destroyed by the
    /// bridge.
    pub fn peg_balanced(&self) -> bool {
        let escrow = self.main.machine().db.balance(&bridge_address());
        escrow == self.minted_total - self.burned_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user() -> Address {
        Address::from_index(1)
    }

    fn setup() -> PeggedSidechain {
        PeggedSidechain::new(&[(user(), 10_000)])
    }

    #[test]
    fn deposit_mints_on_side() {
        let mut peg = setup();
        peg.deposit(user(), 4_000).unwrap();
        assert_eq!(peg.main.machine().db.balance(&user()), 6_000);
        assert_eq!(peg.main.machine().db.balance(&bridge_address()), 4_000);
        assert_eq!(peg.side.machine().db.balance(&user()), 4_000);
    }

    #[test]
    fn replayed_peg_in_rejected() {
        let mut peg = setup();
        let (tx, height) = peg.lock_on_main(user(), 1_000).unwrap();
        let proof = peg.prove_on_main(&tx.id(), height).unwrap();
        peg.peg_in(&tx, height, &proof).unwrap();
        assert_eq!(
            peg.peg_in(&tx, height, &proof),
            Err(PegError::AlreadyPegged(tx.id()))
        );
        assert_eq!(peg.side.machine().db.balance(&user()), 1_000, "minted once");
    }

    #[test]
    fn forged_proof_rejected() {
        let mut peg = setup();
        let (tx, height) = peg.lock_on_main(user(), 1_000).unwrap();
        let (_tx2, height2) = peg.lock_on_main(user(), 500).unwrap();
        let proof = peg.prove_on_main(&tx.id(), height).unwrap();
        // Presenting the lock against the *wrong block's* header fails:
        // the proof does not connect tx to that block's Merkle root.
        assert_eq!(peg.peg_in(&tx, height2, &proof), Err(PegError::BadProof));
    }

    #[test]
    fn non_lock_tx_rejected() {
        let mut peg = setup();
        // A transfer to someone other than the bridge cannot peg in.
        let nonce = peg.next_main_nonce(&user());
        let mut tx = AccountTx::transfer(user(), Address::from_index(2), 100, nonce);
        tx.gas_limit = 0;
        tx.gas_price = 0;
        let tx = Transaction::Account(tx);
        let block = PeggedSidechain::seal(&mut peg.main, vec![tx.clone()]);
        peg.bridge_client
            .sync(std::slice::from_ref(&block.header))
            .unwrap();
        let proof = peg.prove_on_main(&tx.id(), block.header.height).unwrap();
        assert_eq!(
            peg.peg_in(&tx, block.header.height, &proof),
            Err(PegError::NotALock)
        );
    }

    #[test]
    fn round_trip_returns_funds() {
        let mut peg = setup();
        peg.deposit(user(), 3_000).unwrap();
        assert!(peg.peg_balanced());
        peg.withdraw(user(), 3_000).unwrap();
        assert!(peg.peg_balanced());
        assert_eq!(peg.main.machine().db.balance(&user()), 10_000);
        assert_eq!(peg.main.machine().db.balance(&bridge_address()), 0);
        assert_eq!(peg.side.machine().db.balance(&user()), 0);
        assert_eq!(peg.side.machine().db.balance(&burn_address()), 3_000);
    }

    #[test]
    fn cannot_withdraw_more_than_side_balance() {
        let mut peg = setup();
        peg.deposit(user(), 1_000).unwrap();
        assert!(matches!(
            peg.withdraw(user(), 2_000),
            Err(PegError::Transfer(_))
        ));
    }
}
