//! Beacon-coordinated sharding over the simulated network (§5.4, \[38\]).
//!
//! [`ShardedLedger`](crate::ShardedLedger) models sharding as a sequential
//! accounting exercise; this module runs it for real: `k` shard *sequencer*
//! nodes seal blocks on timers, a *beacon* node tracks every shard
//! header-chain and arbitrates cross-shard transfers, and a *light* node
//! syncs headers + SPV proofs against a pruned shard — all over
//! [`dcs_net`]'s discrete-event network, so the sharded event engine (PR 6)
//! schedules the whole system.
//!
//! Cross-shard transfers use a lock/receipt two-phase protocol carried in
//! real blocks:
//!
//! 1. **Lock** — the source shard seals a transfer into the per-pair bridge
//!    escrow and sends the beacon a [`LockReceipt`]: the lock transaction
//!    id, its Merkle inclusion proof, and the block height.
//! 2. **Grant** — the beacon verifies the proof against the shard header it
//!    tracks (the same SPV check a pegged sidechain performs) and forwards
//!    a `MintGrant` to the destination shard, which seals a mint for the
//!    recipient and acks the source.
//! 3. **Timeout-refund** — a lock unresolved past its timeout makes the
//!    source shard query the beacon; a lock the beacon never granted is
//!    *voided* (never granted later), and the source shard seals a refund
//!    from the escrow back to the sender. Value is conserved either way:
//!    at quiescence the sum of user balances equals the genesis allocation,
//!    and bridge escrows hold exactly the minted amounts.
//!
//! Everything is deterministic under a seed: all protocol state lives in
//! `BTreeMap`/`BTreeSet`, timestamps are simulated time, and the run digest
//! is bit-identical across engine worker counts (the PR 10 gate).

use crate::{LightClient, ShardedLedger, Transfer};
use dcs_chain::{genesis_block, Chain, NullMachine, PrunedStore};
use dcs_contracts::AccountMachine;
use dcs_crypto::codec::Encode;
use dcs_crypto::{sha256, Address, Hash256, MerkleProof, MerkleTree};
use dcs_net::{Ctx, LatencyModel, NetConfig, NodeId, Protocol, Runner, Topology};
use dcs_primitives::{
    AccountTx, Amount, Block, BlockHeader, ChainConfig, GasSchedule, Seal, Transaction, TxPayload,
};
use dcs_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// Timer tags (per-role, so overlap across roles is fine).
const TAG_SHARD_SEAL: u64 = 1;
const TAG_BEACON_SEAL: u64 = 2;
const TAG_LIGHT_SYNC: u64 = 3;

/// Coinbase heights for cross-shard mints start here so they can never
/// collide with a real block-reward coinbase (sequencer chains mint none,
/// but the offset keeps the invariant explicit).
const MINT_HEIGHT_BASE: u64 = 1 << 32;

/// Cap on headers returned per [`ScaleMsg::HeadersResponse`].
const HEADERS_PER_RESPONSE: usize = 256;

/// A lock receipt: everything the beacon needs to verify that a cross-shard
/// lock really sealed on its source shard.
#[derive(Debug, Clone)]
pub struct LockReceipt {
    /// Transaction id of the lock (sender → bridge escrow).
    pub lock_id: Hash256,
    /// The transfer the lock backs.
    pub transfer: Transfer,
    /// Shard the lock sealed on.
    pub src_shard: u32,
    /// Shard that should mint.
    pub dst_shard: u32,
    /// Height of the source-shard block holding the lock.
    pub height: u64,
    /// Merkle inclusion proof of `lock_id` under that block's tx root.
    pub proof: MerkleProof,
}

impl LockReceipt {
    fn wire_size(&self) -> usize {
        // lock_id + transfer + shard ids + height + proof.
        32 + 48 + 8 + 8 + self.proof.encoded_len()
    }
}

/// Messages of the beacon/shard/light protocol.
#[derive(Debug, Clone)]
pub enum ScaleMsg {
    /// A client transfer, injected at its home (source) shard.
    Submit(Transfer),
    /// A shard anchors a sealed block header at the beacon.
    Anchor {
        /// The sealing shard.
        shard: u32,
        /// The sealed header.
        header: BlockHeader,
    },
    /// A shard reports a sealed cross-shard lock to the beacon.
    Lock(LockReceipt),
    /// Beacon → destination shard: the lock verified; mint it.
    MintGrant(LockReceipt),
    /// Beacon → source shard: the lock is void; refund the sender.
    MintDenied {
        /// The voided lock.
        lock_id: Hash256,
    },
    /// Destination → source shard: the mint is queued; release the lock.
    MintAck {
        /// The minted lock.
        lock_id: Hash256,
    },
    /// Source shard → beacon: this lock is past its timeout — decide.
    LockStatus {
        /// The overdue lock.
        lock_id: Hash256,
        /// Its receipt, in case the beacon never saw the original.
        receipt: LockReceipt,
    },
    /// Light client → shard: send a checkpoint and the headers above it.
    SnapshotRequest,
    /// Shard → light client: checkpoint header plus headers above it.
    SnapshotResponse {
        /// Trusted checkpoint header (finalized depth).
        checkpoint: BlockHeader,
        /// Consecutive headers from checkpoint+1 to the tip.
        headers: Vec<BlockHeader>,
    },
    /// Light client → shard: headers from this height on.
    HeadersRequest {
        /// First wanted height.
        from: u64,
    },
    /// Shard → light client: consecutive headers.
    HeadersResponse {
        /// The headers, oldest first.
        headers: Vec<BlockHeader>,
    },
    /// Light client → shard: prove a transaction in this block.
    ProofRequest {
        /// The block height to prove from.
        height: u64,
    },
    /// Shard → light client: an inclusion proof for `tx_id` at `height`.
    ProofResponse {
        /// The proven block height.
        height: u64,
        /// The proven transaction id.
        tx_id: Hash256,
        /// Its Merkle proof.
        proof: MerkleProof,
    },
}

impl ScaleMsg {
    /// Approximate wire size, for the simulator's bandwidth accounting.
    fn wire_size(&self) -> usize {
        match self {
            ScaleMsg::Submit(_) => 48,
            ScaleMsg::Anchor { header, .. } => 4 + header.encoded().len(),
            ScaleMsg::Lock(r) | ScaleMsg::MintGrant(r) => r.wire_size(),
            ScaleMsg::MintDenied { .. } | ScaleMsg::MintAck { .. } => 32,
            ScaleMsg::LockStatus { receipt, .. } => 32 + receipt.wire_size(),
            ScaleMsg::SnapshotRequest => 8,
            ScaleMsg::SnapshotResponse {
                checkpoint,
                headers,
            } => {
                checkpoint.encoded().len()
                    + headers.iter().map(|h| h.encoded().len()).sum::<usize>()
            }
            ScaleMsg::HeadersRequest { .. } => 16,
            ScaleMsg::HeadersResponse { headers } => {
                headers.iter().map(|h| h.encoded().len()).sum::<usize>()
            }
            ScaleMsg::ProofRequest { .. } => 16,
            ScaleMsg::ProofResponse { proof, .. } => 48 + proof.encoded_len(),
        }
    }
}

/// Tunables for a beacon-coordinated run.
#[derive(Debug, Clone)]
pub struct BeaconParams {
    /// Worker shard count (`k`).
    pub shards: usize,
    /// Transactions per sealed block.
    pub block_tx_limit: usize,
    /// Shard seal cadence.
    pub block_interval: SimDuration,
    /// Beacon seal cadence (anchors per beacon block).
    pub beacon_interval: SimDuration,
    /// How long a source shard waits before querying an unresolved lock.
    pub lock_timeout: SimDuration,
    /// Body retention depth of each shard's [`PrunedStore`].
    pub keep_depth: u64,
    /// Confirmation depth driving automatic finalization/pruning.
    pub confirmation_depth: u64,
    /// Light-client poll cadence.
    pub sync_interval: SimDuration,
    /// How many blocks below the serving tip the snapshot checkpoint sits.
    pub checkpoint_lag: u64,
    /// Timers stop re-arming (absent pending work) after this instant.
    pub horizon: SimTime,
    /// Per-hop latency model. Must be strictly positive so the sharded
    /// event engine has a conservative lookahead window.
    pub latency: LatencyModel,
    /// Shards whose inbound lock receipts the beacon silently drops — the
    /// fault knob that forces the timeout-refund path deterministically.
    pub silent_shards: Vec<u32>,
}

impl Default for BeaconParams {
    fn default() -> Self {
        BeaconParams {
            shards: 2,
            block_tx_limit: 64,
            block_interval: SimDuration::from_millis(50),
            beacon_interval: SimDuration::from_millis(100),
            lock_timeout: SimDuration::from_millis(400),
            keep_depth: 16,
            confirmation_depth: 8,
            sync_interval: SimDuration::from_millis(150),
            checkpoint_lag: 8,
            horizon: SimTime::from_micros(3_000_000),
            latency: LatencyModel::Constant(SimDuration::from_millis(2)),
            silent_shards: Vec::new(),
        }
    }
}

/// The chain config every shard sequencer (and the beacon's trackers) use.
fn shard_config(shard: usize, params: &BeaconParams) -> ChainConfig {
    let mut config = ChainConfig::hyperledger_like();
    config.chain_id = 7_000 + shard as u32;
    config.block_tx_limit = params.block_tx_limit;
    config.confirmation_depth = params.confirmation_depth;
    config
}

fn beacon_config() -> ChainConfig {
    let mut config = ChainConfig::hyperledger_like();
    config.chain_id = 6_999;
    config
}

/// Counters a shard sequencer accumulates (E22 measurands).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardNodeStats {
    /// Intra-shard transfers committed.
    pub intra: u64,
    /// Cross-shard locks sealed.
    pub locks: u64,
    /// Mints sealed on behalf of other shards' locks.
    pub mints: u64,
    /// Locks refunded after a beacon denial.
    pub refunds: u64,
    /// Locks acknowledged as minted by their destination shard.
    pub acks: u64,
    /// Submissions rejected at admission (insufficient effective balance).
    pub rejected: u64,
    /// Blocks sealed.
    pub blocks: u64,
}

/// What a queued transaction is, so sealed locks can be located for proofs.
#[derive(Debug)]
enum PendingTx {
    Plain(Transaction),
    Lock {
        tx: Transaction,
        transfer: Transfer,
        dst: u32,
    },
}

impl PendingTx {
    fn tx(&self) -> &Transaction {
        match self {
            PendingTx::Plain(tx) | PendingTx::Lock { tx, .. } => tx,
        }
    }
}

#[derive(Debug)]
struct PendingLock {
    receipt: LockReceipt,
    deadline: SimTime,
}

/// A shard sequencer: the sole block producer of one shard chain, running
/// over a pruned store so old bodies fall away beneath the finality horizon.
#[derive(Debug)]
pub struct ShardNode {
    shard: u32,
    k: u32,
    chain: Chain<AccountMachine, PrunedStore>,
    pending: Vec<PendingTx>,
    // BTree everywhere: admission order + map iteration feed block contents,
    // and block contents feed the cross-worker digest gate.
    nonces: BTreeMap<Address, u64>,
    pending_spend: BTreeMap<Address, Amount>,
    pending_locks: BTreeMap<Hash256, PendingLock>,
    minted: BTreeSet<Hash256>,
    refunded: BTreeSet<Hash256>,
    mint_seq: u64,
    timer_armed: bool,
    params: BeaconParams,
    /// Run counters.
    pub stats: ShardNodeStats,
}

impl ShardNode {
    fn new(shard: usize, params: &BeaconParams, alloc: &[(Address, Amount)]) -> Self {
        let config = shard_config(shard, params);
        let genesis = genesis_block(&config);
        let mut machine = AccountMachine::new();
        machine.schedule = GasSchedule::free();
        for (addr, amount) in alloc {
            if ShardedLedger::home_shard(addr, params.shards) == shard {
                machine.db.credit(addr, *amount);
            }
        }
        machine.db.clear_journal();
        let chain = Chain::with_store(
            genesis,
            config,
            machine,
            PrunedStore::new(params.keep_depth),
        );
        ShardNode {
            shard: shard as u32,
            k: params.shards as u32,
            chain,
            pending: Vec::new(),
            nonces: BTreeMap::new(),
            pending_spend: BTreeMap::new(),
            pending_locks: BTreeMap::new(),
            minted: BTreeSet::new(),
            refunded: BTreeSet::new(),
            mint_seq: 0,
            timer_armed: false,
            params: params.clone(),
            stats: ShardNodeStats::default(),
        }
    }

    /// The shard chain (tests and experiments read it).
    pub fn chain(&self) -> &Chain<AccountMachine, PrunedStore> {
        &self.chain
    }

    /// Locks still awaiting a grant or denial.
    pub fn open_locks(&self) -> usize {
        self.pending_locks.len()
    }

    fn next_tx(&mut self, from: Address, to: Address, value: Amount) -> Transaction {
        let nonce = self.nonces.entry(from).or_insert(0);
        let mut tx = AccountTx::transfer(from, to, value, *nonce);
        *nonce += 1;
        tx.gas_limit = 0;
        tx.gas_price = 0;
        Transaction::Account(tx)
    }

    /// Effective balance: on-chain minus what queued txs will spend.
    fn effective_balance(&self, addr: &Address) -> Amount {
        self.chain
            .machine()
            .db
            .balance(addr)
            .saturating_sub(self.pending_spend.get(addr).copied().unwrap_or(0))
    }

    fn admit(&mut self, t: Transfer) {
        if self.effective_balance(&t.from) < t.value {
            self.stats.rejected += 1;
            return;
        }
        *self.pending_spend.entry(t.from).or_insert(0) += t.value;
        let dst = ShardedLedger::home_shard(&t.to, self.k as usize) as u32;
        if dst == self.shard {
            self.stats.intra += 1;
            let tx = self.next_tx(t.from, t.to, t.value);
            self.pending.push(PendingTx::Plain(tx));
        } else {
            let bridge = ShardedLedger::bridge_address(self.shard as usize, dst as usize);
            let tx = self.next_tx(t.from, bridge, t.value);
            self.pending.push(PendingTx::Lock {
                tx,
                transfer: t,
                dst,
            });
        }
    }

    fn header(&self, timestamp_us: u64) -> BlockHeader {
        let height = self.chain.height() + 1;
        BlockHeader::new(
            self.chain.tip_hash(),
            height,
            timestamp_us,
            Address::ZERO,
            Seal::Authority {
                view: 0,
                sequence: height,
                votes: 1,
            },
        )
    }

    /// Seals everything pending, anchoring each block at the beacon and
    /// reporting lock receipts; then chases overdue locks.
    fn seal(&mut self, ctx: &mut Ctx<'_, ScaleMsg>) {
        let mut queue = std::mem::take(&mut self.pending);
        self.pending_spend.clear();
        while !queue.is_empty() {
            let take = queue.len().min(self.params.block_tx_limit);
            let batch: Vec<PendingTx> = queue.drain(..take).collect();
            let txs: Vec<Transaction> = batch.iter().map(|p| p.tx().clone()).collect();
            let header = self.header(ctx.now.as_micros());
            let block = Block::new(header, txs);
            let sealed_header = block.header.clone();
            let height = sealed_header.height;
            let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
            self.chain
                .import(block)
                .expect("sequencer blocks are valid by construction");
            self.stats.blocks += 1;
            let anchor = ScaleMsg::Anchor {
                shard: self.shard,
                header: sealed_header,
            };
            let size = anchor.wire_size();
            ctx.send(NodeId(0), anchor, size);
            // Receipts for the locks this block sealed.
            let tree = MerkleTree::from_leaves(leaves.clone());
            for (i, entry) in batch.iter().enumerate() {
                if let PendingTx::Lock { transfer, dst, .. } = entry {
                    let receipt = LockReceipt {
                        lock_id: leaves[i],
                        transfer: *transfer,
                        src_shard: self.shard,
                        dst_shard: *dst,
                        height,
                        proof: tree.prove(i).expect("leaf index in range"),
                    };
                    self.stats.locks += 1;
                    self.pending_locks.insert(
                        receipt.lock_id,
                        PendingLock {
                            receipt: receipt.clone(),
                            deadline: ctx.now + self.params.lock_timeout,
                        },
                    );
                    let msg = ScaleMsg::Lock(receipt);
                    let size = msg.wire_size();
                    ctx.send(NodeId(0), msg, size);
                }
            }
        }
        // Chase locks past their deadline; push the deadline forward so a
        // lost answer is re-queried instead of spinning every tick.
        let now = ctx.now;
        let overdue: Vec<Hash256> = self
            .pending_locks
            .iter()
            .filter(|(_, p)| p.deadline <= now)
            .map(|(id, _)| *id)
            .collect();
        for lock_id in overdue {
            let pending = self
                .pending_locks
                .get_mut(&lock_id)
                .expect("collected from this map");
            pending.deadline = now + self.params.lock_timeout;
            let msg = ScaleMsg::LockStatus {
                lock_id,
                receipt: pending.receipt.clone(),
            };
            let size = msg.wire_size();
            ctx.send(NodeId(0), msg, size);
        }
    }

    fn grant(&mut self, receipt: LockReceipt, ctx: &mut Ctx<'_, ScaleMsg>) {
        if !self.minted.insert(receipt.lock_id) {
            return; // Duplicate grant (status re-query raced the first).
        }
        self.stats.mints += 1;
        self.mint_seq += 1;
        self.pending.push(PendingTx::Plain(Transaction::Coinbase {
            to: receipt.transfer.to,
            value: receipt.transfer.value,
            height: MINT_HEIGHT_BASE + self.mint_seq,
        }));
        let ack = ScaleMsg::MintAck {
            lock_id: receipt.lock_id,
        };
        let size = ack.wire_size();
        ctx.send(NodeId(1 + receipt.src_shard as usize), ack, size);
        self.arm(ctx);
    }

    fn deny(&mut self, lock_id: Hash256, ctx: &mut Ctx<'_, ScaleMsg>) {
        let Some(pending) = self.pending_locks.remove(&lock_id) else {
            return; // Already refunded or acked.
        };
        if !self.refunded.insert(lock_id) {
            return;
        }
        self.stats.refunds += 1;
        let t = pending.receipt.transfer;
        let bridge =
            ShardedLedger::bridge_address(self.shard as usize, pending.receipt.dst_shard as usize);
        let refund = self.next_tx(bridge, t.from, t.value);
        self.pending.push(PendingTx::Plain(refund));
        self.arm(ctx);
    }

    fn ack(&mut self, lock_id: Hash256) {
        if self.pending_locks.remove(&lock_id).is_some() {
            self.stats.acks += 1;
        }
    }

    fn header_at(&self, height: u64) -> Option<BlockHeader> {
        let hash = self.chain.canonical_at(height)?;
        Some(self.chain.tree().get(&hash)?.header().clone())
    }

    fn headers_range(&self, from: u64) -> Vec<BlockHeader> {
        let tip = self.chain.height();
        (from..=tip)
            .take(HEADERS_PER_RESPONSE)
            .filter_map(|h| self.header_at(h))
            .collect()
    }

    fn serve_snapshot(&self, from: NodeId, ctx: &mut Ctx<'_, ScaleMsg>) {
        let tip = self.chain.height();
        let cp_height = tip.saturating_sub(self.params.checkpoint_lag);
        let Some(checkpoint) = self.header_at(cp_height) else {
            return;
        };
        let msg = ScaleMsg::SnapshotResponse {
            checkpoint,
            headers: self.headers_range(cp_height + 1),
        };
        let size = msg.wire_size();
        ctx.send(from, msg, size);
    }

    fn serve_proof(&self, from: NodeId, height: u64, ctx: &mut Ctx<'_, ScaleMsg>) {
        let Some(hash) = self.chain.canonical_at(height) else {
            return;
        };
        let Some(stored) = self.chain.tree().get(&hash) else {
            return;
        };
        // Pruned bodies cannot be proven from — the light client simply
        // gets no answer for heights below the retention window.
        let Some(body) = stored.body() else {
            return;
        };
        if body.txs.is_empty() {
            return;
        }
        let leaves: Vec<Hash256> = body.txs.iter().map(Transaction::id).collect();
        let proof = MerkleTree::from_leaves(leaves.clone())
            .prove(0)
            .expect("non-empty body has leaf 0");
        let msg = ScaleMsg::ProofResponse {
            height,
            tx_id: leaves[0],
            proof,
        };
        let size = msg.wire_size();
        ctx.send(from, msg, size);
    }

    fn has_work(&self) -> bool {
        !self.pending.is_empty() || !self.pending_locks.is_empty()
    }

    fn arm(&mut self, ctx: &mut Ctx<'_, ScaleMsg>) {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.params.block_interval, TAG_SHARD_SEAL);
        }
    }
}

/// Counters the beacon accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BeaconStats {
    /// Shard headers anchored (and tracked).
    pub anchors: u64,
    /// Lock receipts verified and granted.
    pub grants: u64,
    /// Locks voided by timeout queries.
    pub timeout_denials: u64,
    /// Receipts whose Merkle proof failed verification.
    pub invalid_receipts: u64,
    /// Receipts dropped by the `silent_shards` fault knob.
    pub suppressed: u64,
}

/// The beacon: tracks every shard header-chain, arbitrates cross-shard
/// locks, and seals anchor blocks of its own.
#[derive(Debug)]
pub struct BeaconNode {
    chain: Chain<NullMachine>,
    /// One header tracker per shard, fed by anchors — the same SPV stance a
    /// pegged sidechain takes toward its mainchain.
    trackers: Vec<LightClient>,
    /// Anchors that arrived ahead of their predecessor (per-message latency
    /// can reorder same-source sends under non-constant models).
    anchor_buf: BTreeMap<(u32, u64), BlockHeader>,
    /// Receipts waiting for the anchor covering their height.
    receipt_buf: BTreeMap<(u32, u64), Vec<LockReceipt>>,
    granted: BTreeMap<Hash256, LockReceipt>,
    voided: BTreeSet<Hash256>,
    pending_anchor_txs: Vec<Transaction>,
    anchor_nonce: u64,
    timer_armed: bool,
    silent: BTreeSet<u32>,
    params: BeaconParams,
    /// Run counters.
    pub stats: BeaconStats,
}

impl BeaconNode {
    fn new(params: &BeaconParams) -> Self {
        let config = beacon_config();
        let genesis = genesis_block(&config);
        let chain = Chain::new(genesis, config, NullMachine);
        let trackers = (0..params.shards)
            .map(|s| LightClient::new(genesis_block(&shard_config(s, params)).header.clone()))
            .collect();
        BeaconNode {
            chain,
            trackers,
            anchor_buf: BTreeMap::new(),
            receipt_buf: BTreeMap::new(),
            granted: BTreeMap::new(),
            voided: BTreeSet::new(),
            pending_anchor_txs: Vec::new(),
            anchor_nonce: 0,
            timer_armed: false,
            silent: params.silent_shards.iter().copied().collect(),
            params: params.clone(),
            stats: BeaconStats::default(),
        }
    }

    /// The beacon chain of anchor blocks.
    pub fn chain(&self) -> &Chain<NullMachine> {
        &self.chain
    }

    /// The tracked tip height of a shard.
    pub fn tracked_tip(&self, shard: usize) -> u64 {
        self.trackers[shard].tip_height()
    }

    /// The well-known account beacon anchor transactions spend from.
    pub fn anchor_authority() -> Address {
        Address::from_hash(&sha256(b"beacon-anchor-authority"))
    }

    fn on_anchor(&mut self, shard: u32, header: BlockHeader, ctx: &mut Ctx<'_, ScaleMsg>) {
        self.anchor_buf.insert((shard, header.height), header);
        loop {
            let next_height = self.trackers[shard as usize].tip_height() + 1;
            let Some(next) = self.anchor_buf.remove(&(shard, next_height)) else {
                break;
            };
            let mut payload = Vec::with_capacity(44);
            payload.extend_from_slice(&shard.to_le_bytes());
            payload.extend_from_slice(&next.height.to_le_bytes());
            payload.extend_from_slice(next.hash().as_bytes());
            self.trackers[shard as usize]
                .sync(std::slice::from_ref(&next))
                .expect("sequencer headers link by construction");
            self.stats.anchors += 1;
            let mut tx = AccountTx::transfer(
                Self::anchor_authority(),
                Address::ZERO,
                0,
                self.anchor_nonce,
            );
            self.anchor_nonce += 1;
            tx.gas_limit = 0;
            tx.gas_price = 0;
            tx.payload = TxPayload::Data(payload);
            self.pending_anchor_txs.push(Transaction::Account(tx));
            let covered = self.trackers[shard as usize].tip_height();
            if let Some(receipts) = self.receipt_buf.remove(&(shard, covered)) {
                for receipt in receipts {
                    self.decide(receipt, ctx);
                }
            }
        }
        self.arm(ctx);
    }

    fn on_lock(&mut self, receipt: LockReceipt, ctx: &mut Ctx<'_, ScaleMsg>) {
        if self.silent.contains(&receipt.dst_shard) {
            self.stats.suppressed += 1;
            return;
        }
        if self.trackers[receipt.src_shard as usize].tip_height() >= receipt.height {
            self.decide(receipt, ctx);
        } else {
            self.receipt_buf
                .entry((receipt.src_shard, receipt.height))
                .or_default()
                .push(receipt);
        }
    }

    /// Verifies a receipt against the tracked shard header and grants or
    /// voids it. Only called once the covering anchor is tracked.
    fn decide(&mut self, receipt: LockReceipt, ctx: &mut Ctx<'_, ScaleMsg>) {
        if self.granted.contains_key(&receipt.lock_id) || self.voided.contains(&receipt.lock_id) {
            return;
        }
        let header = self.trackers[receipt.src_shard as usize]
            .header_at(receipt.height)
            .expect("caller checked coverage");
        if receipt.proof.verify(&receipt.lock_id, &header.tx_root) {
            self.stats.grants += 1;
            let dst = NodeId(1 + receipt.dst_shard as usize);
            self.granted.insert(receipt.lock_id, receipt.clone());
            let msg = ScaleMsg::MintGrant(receipt);
            let size = msg.wire_size();
            ctx.send(dst, msg, size);
        } else {
            self.stats.invalid_receipts += 1;
            self.voided.insert(receipt.lock_id);
            let src = NodeId(1 + receipt.src_shard as usize);
            let msg = ScaleMsg::MintDenied {
                lock_id: receipt.lock_id,
            };
            let size = msg.wire_size();
            ctx.send(src, msg, size);
        }
    }

    /// Timeout policy: a queried lock the beacon already granted is
    /// re-granted (idempotent at the mint shard); anything else is voided
    /// *permanently* — it can never be granted afterwards, so mint and
    /// refund are mutually exclusive.
    fn on_status(&mut self, lock_id: Hash256, receipt: LockReceipt, ctx: &mut Ctx<'_, ScaleMsg>) {
        if let Some(granted) = self.granted.get(&lock_id) {
            let dst = NodeId(1 + granted.dst_shard as usize);
            let msg = ScaleMsg::MintGrant(granted.clone());
            let size = msg.wire_size();
            ctx.send(dst, msg, size);
            return;
        }
        if self.voided.insert(lock_id) {
            self.stats.timeout_denials += 1;
        }
        let src = NodeId(1 + receipt.src_shard as usize);
        let msg = ScaleMsg::MintDenied { lock_id };
        let size = msg.wire_size();
        ctx.send(src, msg, size);
    }

    fn seal(&mut self, now: SimTime) {
        while !self.pending_anchor_txs.is_empty() {
            let limit = self.chain.config().block_tx_limit;
            let take = self.pending_anchor_txs.len().min(limit);
            let batch: Vec<Transaction> = self.pending_anchor_txs.drain(..take).collect();
            let height = self.chain.height() + 1;
            let header = BlockHeader::new(
                self.chain.tip_hash(),
                height,
                now.as_micros(),
                Address::ZERO,
                Seal::Authority {
                    view: 0,
                    sequence: height,
                    votes: 1,
                },
            );
            self.chain
                .import(Block::new(header, batch))
                .expect("beacon blocks are valid by construction");
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_, ScaleMsg>) {
        if !self.timer_armed {
            self.timer_armed = true;
            ctx.set_timer(self.params.beacon_interval, TAG_BEACON_SEAL);
        }
    }
}

/// A light client node: header-first snapshot sync from a shard, then
/// incremental header pulls and periodic SPV spot-checks.
#[derive(Debug)]
pub struct LightNode {
    /// The shard node this client syncs from.
    target: NodeId,
    /// The header chain, once the snapshot arrived.
    client: Option<LightClient>,
    sync_interval: SimDuration,
    horizon: SimTime,
    polls: u64,
    /// SPV proofs requested.
    pub proofs_requested: u64,
    /// SPV proofs that verified.
    pub proofs_verified: u64,
}

impl LightNode {
    fn new(params: &BeaconParams) -> Self {
        LightNode {
            target: NodeId(1),
            client: None,
            sync_interval: params.sync_interval,
            horizon: params.horizon,
            polls: 0,
            proofs_requested: 0,
            proofs_verified: 0,
        }
    }

    /// The synced header chain (None until the snapshot arrives).
    pub fn client(&self) -> Option<&LightClient> {
        self.client.as_ref()
    }

    fn poll(&mut self, ctx: &mut Ctx<'_, ScaleMsg>) {
        self.polls += 1;
        match &self.client {
            None => {
                let msg = ScaleMsg::SnapshotRequest;
                let size = msg.wire_size();
                ctx.send(self.target, msg, size);
            }
            Some(client) => {
                let msg = ScaleMsg::HeadersRequest {
                    from: client.tip_height() + 1,
                };
                let size = msg.wire_size();
                ctx.send(self.target, msg, size);
                // Spot-check inclusion every fourth poll.
                if self.polls.is_multiple_of(4) {
                    self.proofs_requested += 1;
                    let msg = ScaleMsg::ProofRequest {
                        height: client.tip_height(),
                    };
                    let size = msg.wire_size();
                    ctx.send(self.target, msg, size);
                }
            }
        }
        if ctx.now < self.horizon {
            ctx.set_timer(self.sync_interval, TAG_LIGHT_SYNC);
        }
    }

    /// Adopts the first checkpoint offered; later snapshots are ignored.
    fn bootstrap(&mut self, checkpoint: BlockHeader, headers: &[BlockHeader]) {
        if self.client.is_none() {
            self.client = Some(LightClient::from_checkpoint(checkpoint));
            self.absorb(headers);
        }
    }

    /// Appends only the headers that extend the current tip — responses to
    /// overlapping requests may arrive out of order.
    fn absorb(&mut self, headers: &[BlockHeader]) {
        let Some(client) = self.client.as_mut() else {
            return;
        };
        for header in headers {
            if header.height == client.tip_height() + 1 {
                client
                    .sync(std::slice::from_ref(header))
                    .expect("serving shard is honest");
            }
        }
    }
}

/// One peer of the beacon-coordinated network. Node 0 is the beacon, nodes
/// `1..=k` are the shard sequencers, node `k + 1` is the light client.
///
/// One value exists per simulated node, so the variant size skew does not
/// matter for memory.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum ScalePeer {
    /// The coordinator.
    Beacon(BeaconNode),
    /// One shard sequencer.
    Shard(ShardNode),
    /// The light client.
    Light(LightNode),
}

impl Protocol for ScalePeer {
    type Msg = ScaleMsg;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        match self {
            ScalePeer::Beacon(b) => b.arm(ctx),
            ScalePeer::Shard(s) => s.arm(ctx),
            ScalePeer::Light(l) => ctx.set_timer(l.sync_interval, TAG_LIGHT_SYNC),
        }
    }

    fn on_message(&mut self, from: NodeId, msg: Self::Msg, ctx: &mut Ctx<'_, Self::Msg>) {
        match (self, msg) {
            (ScalePeer::Shard(s), ScaleMsg::Submit(t)) => {
                s.admit(t);
                s.arm(ctx);
            }
            (ScalePeer::Shard(s), ScaleMsg::MintGrant(receipt)) => s.grant(receipt, ctx),
            (ScalePeer::Shard(s), ScaleMsg::MintDenied { lock_id }) => s.deny(lock_id, ctx),
            (ScalePeer::Shard(s), ScaleMsg::MintAck { lock_id }) => s.ack(lock_id),
            (ScalePeer::Shard(s), ScaleMsg::SnapshotRequest) => s.serve_snapshot(from, ctx),
            (ScalePeer::Shard(s), ScaleMsg::HeadersRequest { from: h }) => {
                let headers = s.headers_range(h);
                if !headers.is_empty() {
                    let msg = ScaleMsg::HeadersResponse { headers };
                    let size = msg.wire_size();
                    ctx.send(from, msg, size);
                }
            }
            (ScalePeer::Shard(s), ScaleMsg::ProofRequest { height }) => {
                s.serve_proof(from, height, ctx)
            }
            (ScalePeer::Beacon(b), ScaleMsg::Anchor { shard, header }) => {
                b.on_anchor(shard, header, ctx)
            }
            (ScalePeer::Beacon(b), ScaleMsg::Lock(receipt)) => b.on_lock(receipt, ctx),
            (ScalePeer::Beacon(b), ScaleMsg::LockStatus { lock_id, receipt }) => {
                b.on_status(lock_id, receipt, ctx)
            }
            (
                ScalePeer::Light(l),
                ScaleMsg::SnapshotResponse {
                    checkpoint,
                    headers,
                },
            ) => l.bootstrap(checkpoint, &headers),
            (ScalePeer::Light(l), ScaleMsg::HeadersResponse { headers }) => l.absorb(&headers),
            (
                ScalePeer::Light(l),
                ScaleMsg::ProofResponse {
                    height,
                    tx_id,
                    proof,
                },
            ) => {
                if let Some(client) = l.client.as_mut() {
                    if client.verify_inclusion(&tx_id, height, &proof) == Ok(true) {
                        l.proofs_verified += 1;
                    }
                }
            }
            // Anything else (e.g. a stale response after a role change in
            // future extensions) is ignored.
            _ => {}
        }
    }

    fn on_timer(&mut self, tag: u64, ctx: &mut Ctx<'_, Self::Msg>) {
        match (self, tag) {
            (ScalePeer::Shard(s), TAG_SHARD_SEAL) => {
                s.seal(ctx);
                s.timer_armed = false;
                if ctx.now < s.params.horizon || s.has_work() {
                    s.arm(ctx);
                }
            }
            (ScalePeer::Beacon(b), TAG_BEACON_SEAL) => {
                b.seal(ctx.now);
                b.timer_armed = false;
                if ctx.now < b.params.horizon {
                    b.arm(ctx);
                }
            }
            (ScalePeer::Light(l), TAG_LIGHT_SYNC) => l.poll(ctx),
            _ => {}
        }
    }
}

/// Aggregate counters of a finished run (the E22 row).
#[derive(Debug, Clone, Copy, Default)]
pub struct BeaconRunStats {
    /// Intra-shard transfers committed.
    pub intra: u64,
    /// Cross-shard transfers minted end-to-end.
    pub minted: u64,
    /// Cross-shard transfers refunded by timeout.
    pub refunded: u64,
    /// Submissions rejected at admission.
    pub rejected: u64,
    /// Blocks sealed across all shards.
    pub shard_blocks: u64,
    /// Beacon anchor blocks sealed.
    pub beacon_blocks: u64,
    /// Simulated events processed.
    pub events: u64,
}

/// A fully wired beacon + shards + light-client network.
pub struct BeaconNet {
    runner: Runner<ScalePeer>,
    params: BeaconParams,
    events: u64,
}

impl BeaconNet {
    /// Builds the network: beacon at node 0, `k` shard sequencers, one
    /// light client. `alloc` funds user accounts on their home shards.
    pub fn new(params: &BeaconParams, seed: u64, alloc: &[(Address, Amount)]) -> Self {
        let cfg = NetConfig {
            nodes: params.shards + 2,
            topology: Topology::Complete,
            latency: params.latency,
            drop_probability: 0.0,
            bandwidth_bytes_per_sec: None,
        };
        let runner = Runner::new(cfg, seed, |id: NodeId| {
            if id.0 == 0 {
                ScalePeer::Beacon(BeaconNode::new(params))
            } else if id.0 <= params.shards {
                ScalePeer::Shard(ShardNode::new(id.0 - 1, params, alloc))
            } else {
                ScalePeer::Light(LightNode::new(params))
            }
        });
        BeaconNet {
            runner,
            params: params.clone(),
            events: 0,
        }
    }

    /// Overrides the event-engine worker count (the determinism sweep).
    pub fn set_engine_workers(&mut self, workers: usize) {
        self.runner.set_shards(workers);
    }

    /// Injects a transfer at its home shard at simulated time `at`.
    pub fn submit_at(&mut self, at: SimTime, t: Transfer) {
        let shard = ShardedLedger::home_shard(&t.from, self.params.shards);
        let msg = ScaleMsg::Submit(t);
        let size = msg.wire_size();
        self.runner
            .net_mut()
            .inject(at, NodeId(1 + shard), msg, size);
    }

    /// Runs to quiescence (every timer expired, every message delivered).
    pub fn run(&mut self) -> u64 {
        let n = self.runner.run_to_quiescence();
        self.events += n;
        n
    }

    /// The beacon node.
    pub fn beacon(&self) -> &BeaconNode {
        match self.runner.node(NodeId(0)) {
            ScalePeer::Beacon(b) => b,
            _ => unreachable!("node 0 is the beacon"),
        }
    }

    /// Shard sequencer `i`.
    pub fn shard(&self, i: usize) -> &ShardNode {
        match self.runner.node(NodeId(1 + i)) {
            ScalePeer::Shard(s) => s,
            _ => unreachable!("nodes 1..=k are shards"),
        }
    }

    /// The light client node.
    pub fn light(&self) -> &LightNode {
        match self.runner.node(NodeId(1 + self.params.shards)) {
            ScalePeer::Light(l) => l,
            _ => unreachable!("last node is the light client"),
        }
    }

    /// Balance of a user account, read from its home shard.
    pub fn balance(&self, addr: &Address) -> Amount {
        let shard = ShardedLedger::home_shard(addr, self.params.shards);
        self.shard(shard).chain.machine().db.balance(addr)
    }

    /// Sum of the given accounts' balances — the conservation measurand:
    /// at quiescence it equals the genesis allocation total.
    pub fn user_total(&self, accounts: &[Address]) -> u128 {
        accounts.iter().map(|a| u128::from(self.balance(a))).sum()
    }

    /// Total value held in bridge escrows across all shards. At quiescence
    /// this equals the total value minted on destination shards.
    pub fn escrow_total(&self) -> u128 {
        let k = self.params.shards;
        let mut total = 0u128;
        for src in 0..k {
            for dst in 0..k {
                if src != dst {
                    let bridge = ShardedLedger::bridge_address(src, dst);
                    total += u128::from(self.shard(src).chain.machine().db.balance(&bridge));
                }
            }
        }
        total
    }

    /// Aggregate run counters.
    pub fn stats(&self) -> BeaconRunStats {
        let mut s = BeaconRunStats {
            beacon_blocks: self.beacon().chain.height(),
            events: self.events,
            ..BeaconRunStats::default()
        };
        for i in 0..self.params.shards {
            let shard = self.shard(i);
            s.intra += shard.stats.intra;
            s.minted += shard.stats.mints;
            s.refunded += shard.stats.refunds;
            s.rejected += shard.stats.rejected;
            s.shard_blocks += shard.stats.blocks;
        }
        s
    }

    /// A digest over everything observable: shard tips, state roots, and
    /// counters; the beacon chain; the light client's view. Bit-identical
    /// across engine worker counts for the same seed and workload — the
    /// cross-worker determinism gate.
    pub fn digest(&self) -> Hash256 {
        use dcs_chain::StateMachine;
        let mut buf = Vec::new();
        for i in 0..self.params.shards {
            let shard = self.shard(i);
            buf.extend_from_slice(shard.chain.tip_hash().as_bytes());
            buf.extend_from_slice(&shard.chain.height().to_le_bytes());
            buf.extend_from_slice(shard.chain.machine().state_root().as_bytes());
            for c in [
                shard.stats.intra,
                shard.stats.locks,
                shard.stats.mints,
                shard.stats.refunds,
                shard.stats.acks,
                shard.stats.rejected,
                shard.stats.blocks,
                shard.pending_locks.len() as u64,
            ] {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        let beacon = self.beacon();
        buf.extend_from_slice(beacon.chain.tip_hash().as_bytes());
        for c in [
            beacon.stats.anchors,
            beacon.stats.grants,
            beacon.stats.timeout_denials,
            beacon.stats.invalid_receipts,
            beacon.stats.suppressed,
        ] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        let light = self.light();
        if let Some(client) = light.client() {
            buf.extend_from_slice(&client.tip_height().to_le_bytes());
            buf.extend_from_slice(&client.bytes_downloaded.to_le_bytes());
        }
        buf.extend_from_slice(&light.proofs_verified.to_le_bytes());
        sha256(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accounts(n: u64) -> Vec<Address> {
        (0..n).map(Address::from_index).collect()
    }

    fn funded(accounts: &[Address]) -> Vec<(Address, Amount)> {
        accounts.iter().map(|a| (*a, 1_000_000)).collect()
    }

    fn cross_pair(k: usize, accounts: &[Address]) -> (Address, Address) {
        let a = accounts[0];
        let b = *accounts[1..]
            .iter()
            .find(|x| ShardedLedger::home_shard(x, k) != ShardedLedger::home_shard(&a, k))
            .expect("some pair crosses shards");
        (a, b)
    }

    #[test]
    fn intra_shard_transfer_commits() {
        let accts = accounts(16);
        let k = 2;
        let a = accts[0];
        let b = *accts[1..]
            .iter()
            .find(|x| ShardedLedger::home_shard(x, k) == ShardedLedger::home_shard(&a, k))
            .expect("some pair shares a shard");
        let mut net = BeaconNet::new(&BeaconParams::default(), 11, &funded(&accts));
        net.submit_at(
            SimTime::from_micros(10_000),
            Transfer {
                from: a,
                to: b,
                value: 777,
            },
        );
        net.run();
        assert_eq!(net.balance(&a), 1_000_000 - 777);
        assert_eq!(net.balance(&b), 1_000_000 + 777);
        assert_eq!(net.stats().intra, 1);
    }

    #[test]
    fn cross_shard_transfer_locks_and_mints() {
        let accts = accounts(16);
        let (a, b) = cross_pair(2, &accts);
        let mut net = BeaconNet::new(&BeaconParams::default(), 12, &funded(&accts));
        net.submit_at(
            SimTime::from_micros(10_000),
            Transfer {
                from: a,
                to: b,
                value: 555,
            },
        );
        net.run();
        assert_eq!(net.balance(&a), 1_000_000 - 555);
        assert_eq!(net.balance(&b), 1_000_000 + 555);
        let stats = net.stats();
        assert_eq!(stats.minted, 1);
        assert_eq!(stats.refunded, 0);
        // The lock sits in escrow, matched by the mint on the other side.
        assert_eq!(net.escrow_total(), 555);
        // No lock left open anywhere.
        for i in 0..2 {
            assert_eq!(net.shard(i).open_locks(), 0);
        }
        // Conservation: user balances still sum to the allocation.
        assert_eq!(net.user_total(&accts), 16 * 1_000_000);
    }

    #[test]
    fn silent_beacon_forces_timeout_refund() {
        let accts = accounts(16);
        let (a, b) = cross_pair(2, &accts);
        let dst = ShardedLedger::home_shard(&b, 2) as u32;
        let params = BeaconParams {
            silent_shards: vec![dst],
            ..BeaconParams::default()
        };
        let mut net = BeaconNet::new(&params, 13, &funded(&accts));
        net.submit_at(
            SimTime::from_micros(10_000),
            Transfer {
                from: a,
                to: b,
                value: 555,
            },
        );
        net.run();
        // The receipt was suppressed; the timeout query voided the lock and
        // the sender got refunded on-chain. Nothing minted anywhere.
        assert_eq!(net.balance(&a), 1_000_000, "sender made whole");
        assert_eq!(net.balance(&b), 1_000_000, "recipient uncredited");
        let stats = net.stats();
        assert_eq!(stats.minted, 0);
        assert_eq!(stats.refunded, 1);
        assert_eq!(net.beacon().stats.suppressed, 1);
        assert_eq!(net.beacon().stats.timeout_denials, 1);
        assert_eq!(net.escrow_total(), 0, "escrow emptied by the refund");
        assert_eq!(net.user_total(&accts), 16 * 1_000_000);
    }

    #[test]
    fn light_client_tracks_shard_zero() {
        let accts = accounts(24);
        let mut net = BeaconNet::new(&BeaconParams::default(), 14, &funded(&accts));
        // Enough traffic that shard 0 seals a stream of blocks.
        for i in 0..40u64 {
            net.submit_at(
                SimTime::from_micros(20_000 * (i + 1)),
                Transfer {
                    from: accts[(i % 24) as usize],
                    to: accts[((i + 1) % 24) as usize],
                    value: 5,
                },
            );
        }
        net.run();
        let served_tip = net.shard(0).chain().height();
        assert!(served_tip > 0, "shard 0 sealed blocks");
        let client = net.light().client().expect("snapshot sync completed");
        assert_eq!(client.tip_height(), served_tip, "light client caught up");
        assert!(
            net.light().proofs_verified > 0,
            "at least one SPV spot-check verified"
        );
        // Every byte the client pulled is accounted (the E23 measurand).
        assert!(client.bytes_downloaded > 0);
    }

    #[test]
    fn late_light_client_bootstraps_from_checkpoint() {
        let accts = accounts(24);
        let params = BeaconParams {
            // First poll lands after the shard has outrun the checkpoint
            // lag, so the snapshot must be a mid-chain checkpoint.
            sync_interval: SimDuration::from_millis(2_000),
            ..BeaconParams::default()
        };
        let mut net = BeaconNet::new(&params, 17, &funded(&accts));
        for i in 0..40u64 {
            net.submit_at(
                SimTime::from_micros(20_000 * (i + 1)),
                Transfer {
                    from: accts[(i % 24) as usize],
                    to: accts[((i + 1) % 24) as usize],
                    value: 5,
                },
            );
        }
        net.run();
        let client = net.light().client().expect("snapshot sync completed");
        assert!(
            client.header_at(0).is_none(),
            "checkpoint bootstrap skips the genesis-side headers"
        );
        assert_eq!(client.tip_height(), net.shard(0).chain().height());
    }

    #[test]
    fn mixed_workload_matches_single_chain() {
        use dcs_sim::Rng;
        let accts = accounts(32);
        let mut rng = Rng::seed_from(99);
        let transfers: Vec<Transfer> = (0..120)
            .map(|_| Transfer {
                from: accts[rng.below(32) as usize],
                to: accts[rng.below(32) as usize],
                value: 1 + rng.below(50),
            })
            .collect();
        let mut net = BeaconNet::new(&BeaconParams::default(), 15, &funded(&accts));
        for (i, t) in transfers.iter().enumerate() {
            net.submit_at(SimTime::from_micros(5_000 * (i as u64 + 1)), *t);
        }
        net.run();
        let stats = net.stats();
        assert_eq!(stats.rejected, 0, "ample funding: nothing rejected");
        assert_eq!(stats.refunded, 0, "healthy beacon: nothing refunded");
        // Amply funded transfers commute, so the sharded outcome must match
        // a sequential single-chain application of the same mix.
        let expected = single_chain_balances(&funded(&accts), &transfers);
        for a in &accts {
            assert_eq!(net.balance(a), expected[a], "balance of {a:?}");
        }
        assert_eq!(net.user_total(&accts), 32 * 1_000_000);
    }

    /// Applies the same transfer mix to one unsharded chain and returns the
    /// final balances (the equivalence oracle).
    pub(crate) fn single_chain_balances(
        alloc: &[(Address, Amount)],
        transfers: &[Transfer],
    ) -> BTreeMap<Address, Amount> {
        let mut ledger = ShardedLedger::new(1, 64, alloc);
        for t in transfers {
            ledger.submit(*t).expect("single shard never crosses");
        }
        ledger.seal_all();
        alloc.iter().map(|(a, _)| (*a, ledger.balance(a))).collect()
    }

    #[test]
    fn digest_stable_across_engine_workers() {
        let accts = accounts(24);
        let run = |workers: usize| {
            let mut net = BeaconNet::new(&BeaconParams::default(), 21, &funded(&accts));
            net.set_engine_workers(workers);
            for i in 0..60u64 {
                net.submit_at(
                    SimTime::from_micros(8_000 * (i + 1)),
                    Transfer {
                        from: accts[(i % 24) as usize],
                        to: accts[((i * 7 + 3) % 24) as usize],
                        value: 3,
                    },
                );
            }
            net.run();
            net.digest()
        };
        let d1 = run(1);
        assert_eq!(d1, run(2), "2 workers diverged from serial");
        assert_eq!(d1, run(8), "8 workers diverged from serial");
    }

    #[test]
    fn shard_store_prunes_old_bodies() {
        let accts = accounts(8);
        let params = BeaconParams {
            keep_depth: 4,
            confirmation_depth: 2,
            ..BeaconParams::default()
        };
        let mut net = BeaconNet::new(&params, 31, &funded(&accts));
        for i in 0..80u64 {
            net.submit_at(
                SimTime::from_micros(10_000 * (i + 1)),
                Transfer {
                    from: accts[(i % 8) as usize],
                    to: accts[((i + 1) % 8) as usize],
                    value: 1,
                },
            );
        }
        net.run();
        let shard = net.shard(0);
        let tip = shard.chain().height();
        assert!(tip > 12, "enough blocks to prune");
        let old = shard.chain().canonical_at(1).expect("height 1 exists");
        let stored = shard.chain().tree().get(&old).expect("header retained");
        assert!(stored.body().is_none(), "old body pruned");
    }
}
