//! Sharding (§5.4, \[38\]): accounts are hash-partitioned across `k` shard
//! chains that seal blocks independently — the throughput of the system
//! scales with the shard count, degraded by the fraction of cross-shard
//! traffic, which needs a two-phase (lock → mint) protocol with receipts.
//!
//! The ledger here is sequentially simulated, but block *slots* are
//! accounted per shard, so "parallel time" = the maximum slots any one
//! shard consumed — the quantity experiment E7 sweeps.

use dcs_chain::Chain;
use dcs_contracts::AccountMachine;
use dcs_crypto::{sha256, Address};
use dcs_primitives::{
    AccountTx, Amount, Block, BlockHeader, ChainConfig, GasSchedule, Seal, Transaction,
};
use std::collections::BTreeMap;

/// Errors from sharded-ledger operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A cross-shard mint would overdraw the destination shard's mint pool:
    /// committing it anyway would credit the recipient with value no lock
    /// backs, silently inflating the destination shard. The transfer is
    /// rejected whole — neither the lock nor the mint is queued.
    MintPoolUnderfunded {
        /// The destination shard whose pool is short.
        shard: usize,
        /// What the mint needed.
        needed: Amount,
        /// What the pool (minus already-queued mints) still covers.
        available: Amount,
    },
}

impl core::fmt::Display for ShardError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShardError::MintPoolUnderfunded {
                shard,
                needed,
                available,
            } => write!(
                f,
                "mint pool of shard {shard} underfunded: need {needed}, have {available}"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// A transfer request routed through the sharded ledger.
#[derive(Debug, Clone, Copy)]
pub struct Transfer {
    /// Sender.
    pub from: Address,
    /// Recipient.
    pub to: Address,
    /// Amount.
    pub value: Amount,
}

/// Outcome statistics of processing a batch (the E7 measurands).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Transfers that stayed within one shard.
    pub intra_shard: u64,
    /// Transfers that crossed shards (each costs two block slots).
    pub cross_shard: u64,
    /// Max block slots consumed by any single shard ("parallel time").
    pub parallel_slots: u64,
    /// Total block slots consumed across all shards ("total work").
    pub total_slots: u64,
    /// Cross-shard transfers rejected because the destination mint pool
    /// could not back the mint (fail-closed accounting).
    pub mint_failures: u64,
}

/// An account ledger partitioned over `k` shard chains.
#[derive(Debug)]
pub struct ShardedLedger {
    shards: Vec<Chain<AccountMachine>>,
    pending: Vec<Vec<Transaction>>,
    // BTreeMap, not HashMap: `submit` allocates nonces while iterating
    // callers' transfer mixes, and any hash-order state here would leak
    // into block contents and digests (the PR 3 determinism sweep).
    nonces: BTreeMap<Address, u64>,
    block_tx_limit: usize,
    slots_used: Vec<u64>,
    /// Mint-pool value already promised to queued (unsealed) mints, per
    /// shard — what keeps back-to-back submits from overdrawing a pool
    /// that looks full on-chain but is spoken for.
    mint_reserved: Vec<Amount>,
    stats: ShardStats,
}

impl ShardedLedger {
    /// Creates `k` shards, each with the free gas schedule, and funds the
    /// given accounts on their home shards.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize, block_tx_limit: usize, alloc: &[(Address, Amount)]) -> Self {
        assert!(k > 0, "need at least one shard");
        let shards = (0..k)
            .map(|i| {
                let mut config = ChainConfig::hyperledger_like();
                config.chain_id = 5_000 + i as u32;
                config.block_tx_limit = block_tx_limit;
                let genesis = dcs_chain::genesis_block(&config);
                let mut machine = AccountMachine::new();
                machine.schedule = GasSchedule::free();
                for (addr, amount) in alloc {
                    if Self::home_shard(addr, k) == i {
                        machine.db.credit(addr, *amount);
                    }
                }
                machine.db.clear_journal();
                Chain::new(genesis, config, machine)
            })
            .collect();
        ShardedLedger {
            shards,
            pending: vec![Vec::new(); k],
            nonces: BTreeMap::new(),
            block_tx_limit,
            slots_used: vec![0; k],
            mint_reserved: vec![0; k],
            stats: ShardStats::default(),
        }
    }

    /// Which shard owns an address: the hash partition of §5.4's data layer.
    pub fn home_shard(addr: &Address, k: usize) -> usize {
        (sha256(addr.as_bytes()).prefix_u64() % k as u64) as usize
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Balance of an account (read from its home shard).
    pub fn balance(&self, addr: &Address) -> Amount {
        let shard = Self::home_shard(addr, self.shards.len());
        self.shards[shard].machine().db.balance(addr)
    }

    fn transfer_tx(&mut self, from: Address, to: Address, value: Amount) -> Transaction {
        let nonce = self.nonces.entry(from).or_insert(0);
        let mut tx = AccountTx::transfer(from, to, value, *nonce);
        *nonce += 1;
        tx.gas_limit = 0;
        tx.gas_price = 0;
        Transaction::Account(tx)
    }

    /// Routes one transfer. Intra-shard transfers queue one transaction;
    /// cross-shard transfers queue the *lock* (burn) on the source shard
    /// and the *mint* on the destination shard — the two-phase pattern.
    ///
    /// # Errors
    ///
    /// [`ShardError::MintPoolUnderfunded`] when the destination shard's
    /// mint pool (minus mints already queued against it) cannot back the
    /// mint. The transfer is rejected whole: without this check the lock
    /// would seal, the mint would bounce at execution, and the sender's
    /// funds would sit in the bridge with nothing minted — a silent skew
    /// that only a total-supply audit would catch.
    pub fn submit(&mut self, t: Transfer) -> Result<(), ShardError> {
        let k = self.shards.len();
        let src = Self::home_shard(&t.from, k);
        let dst = Self::home_shard(&t.to, k);
        if src == dst {
            self.stats.intra_shard += 1;
            let tx = self.transfer_tx(t.from, t.to, t.value);
            self.pending[src].push(tx);
        } else {
            let pool = self.shards[dst].machine().db.balance(&Self::mint_pool(dst));
            let available = pool.saturating_sub(self.mint_reserved[dst]);
            if available < t.value {
                self.stats.mint_failures += 1;
                return Err(ShardError::MintPoolUnderfunded {
                    shard: dst,
                    needed: t.value,
                    available,
                });
            }
            self.stats.cross_shard += 1;
            self.mint_reserved[dst] += t.value;
            // Phase 1: lock/burn on the source shard (send to the bridge).
            let bridge = Self::bridge_address(src, dst);
            let lock = self.transfer_tx(t.from, bridge, t.value);
            self.pending[src].push(lock);
            // Phase 2: mint on the destination shard, backed by the lock
            // receipt (the bridge account is pre-funded as the mint pool).
            let mint = self.transfer_tx(Self::mint_pool(dst), t.to, t.value);
            self.pending[dst].push(mint);
        }
        Ok(())
    }

    /// The escrow address absorbing cross-shard locks between two shards.
    pub fn bridge_address(src: usize, dst: usize) -> Address {
        let mut bytes = b"shard-bridge".to_vec();
        bytes.extend_from_slice(&(src as u32).to_le_bytes());
        bytes.extend_from_slice(&(dst as u32).to_le_bytes());
        Address::from_hash(&sha256(&bytes))
    }

    /// The mint pool of a shard (pre-funded so mints always succeed; a real
    /// deployment verifies the lock receipt instead).
    pub fn mint_pool(shard: usize) -> Address {
        let mut bytes = b"shard-mint-pool".to_vec();
        bytes.extend_from_slice(&(shard as u32).to_le_bytes());
        Address::from_hash(&sha256(&bytes))
    }

    /// Pre-funds every shard's mint pool (call once before cross-shard
    /// traffic).
    pub fn fund_mint_pools(&mut self, amount: Amount) {
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.machine_mut().db.credit(&Self::mint_pool(i), amount);
            shard.machine_mut().db.clear_journal();
        }
    }

    /// Seals every shard's pending transactions into as many blocks as
    /// needed, updating the slot accounting.
    pub fn seal_all(&mut self) {
        for shard in 0..self.shards.len() {
            let mut txs = std::mem::take(&mut self.pending[shard]);
            while !txs.is_empty() {
                let take = txs.len().min(self.block_tx_limit);
                let batch: Vec<Transaction> = txs.drain(..take).collect();
                let chain = &mut self.shards[shard];
                let header = BlockHeader::new(
                    chain.tip_hash(),
                    chain.height() + 1,
                    chain.height() + 1,
                    Address::ZERO,
                    Seal::Authority {
                        view: 0,
                        sequence: chain.height() + 1,
                        votes: 1,
                    },
                );
                chain
                    .import(Block::new(header, batch))
                    .expect("sequencer blocks are valid");
                self.slots_used[shard] += 1;
            }
            // Queued mints for this shard are now on-chain; the pool
            // balance reflects them, so the reservation is spent.
            self.mint_reserved[shard] = 0;
        }
        self.stats.parallel_slots = self.slots_used.iter().copied().max().unwrap_or(0);
        self.stats.total_slots = self.slots_used.iter().sum();
    }

    /// Processing statistics.
    pub fn stats(&self) -> ShardStats {
        self.stats
    }

    /// Total value visible across the sharded system: the given user
    /// accounts plus every bridge escrow and mint pool on every shard.
    /// Cross-shard transfers move value between these buckets but must
    /// never change the sum — the conservation invariant the fail-closed
    /// mint check protects.
    pub fn audited_supply(&self, accounts: &[Address]) -> u128 {
        let k = self.shards.len();
        let mut total: u128 = accounts.iter().map(|a| u128::from(self.balance(a))).sum();
        for (i, shard) in self.shards.iter().enumerate() {
            total += u128::from(shard.machine().db.balance(&Self::mint_pool(i)));
            for src in 0..k {
                for dst in 0..k {
                    if src != dst {
                        total +=
                            u128::from(shard.machine().db.balance(&Self::bridge_address(src, dst)));
                    }
                }
            }
        }
        total
    }

    /// The speedup over a single chain with the same block size: sequential
    /// slots the traffic would have needed, divided by the parallel slots
    /// the shards actually consumed. A single chain needs just one
    /// transaction per transfer (no lock/mint split), which is exactly why
    /// cross-shard traffic erodes the speedup: each crossing costs the
    /// sharded system two slots' worth of work that the monolith does in
    /// one.
    pub fn speedup(&self) -> f64 {
        if self.stats.parallel_slots == 0 {
            return 1.0;
        }
        let total_transfers = self.stats.intra_shard + self.stats.cross_shard;
        let sequential_slots = total_transfers.div_ceil(self.block_tx_limit as u64);
        sequential_slots as f64 / self.stats.parallel_slots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::Rng;

    fn addrs(n: u64) -> Vec<Address> {
        (0..n).map(Address::from_index).collect()
    }

    fn ledger(k: usize, accounts: &[Address]) -> ShardedLedger {
        let alloc: Vec<(Address, Amount)> = accounts.iter().map(|a| (*a, 1_000_000)).collect();
        let mut l = ShardedLedger::new(k, 100, &alloc);
        l.fund_mint_pools(1_000_000_000);
        l
    }

    #[test]
    fn partition_is_stable_and_covers_all_shards() {
        let k = 4;
        let mut seen = vec![false; k];
        for a in addrs(200) {
            let s = ShardedLedger::home_shard(&a, k);
            assert_eq!(s, ShardedLedger::home_shard(&a, k));
            seen[s] = true;
        }
        assert!(seen.iter().all(|&s| s), "200 accounts hit all 4 shards");
    }

    #[test]
    fn intra_shard_transfer_moves_balance() {
        let accounts = addrs(50);
        let mut l = ledger(4, &accounts);
        // Find two accounts on the same shard.
        let a = accounts[0];
        let b = *accounts[1..]
            .iter()
            .find(|x| ShardedLedger::home_shard(x, 4) == ShardedLedger::home_shard(&a, 4))
            .expect("some pair shares a shard");
        l.submit(Transfer {
            from: a,
            to: b,
            value: 500,
        })
        .unwrap();
        l.seal_all();
        assert_eq!(l.balance(&a), 1_000_000 - 500);
        assert_eq!(l.balance(&b), 1_000_000 + 500);
        assert_eq!(l.stats().intra_shard, 1);
        assert_eq!(l.stats().cross_shard, 0);
    }

    #[test]
    fn cross_shard_transfer_locks_and_mints() {
        let accounts = addrs(50);
        let mut l = ledger(4, &accounts);
        let a = accounts[0];
        let b = *accounts[1..]
            .iter()
            .find(|x| ShardedLedger::home_shard(x, 4) != ShardedLedger::home_shard(&a, 4))
            .expect("some pair crosses shards");
        l.submit(Transfer {
            from: a,
            to: b,
            value: 700,
        })
        .unwrap();
        l.seal_all();
        assert_eq!(l.balance(&a), 1_000_000 - 700);
        assert_eq!(l.balance(&b), 1_000_000 + 700);
        assert_eq!(l.stats().cross_shard, 1);
        // The lock sits in the bridge escrow on the source shard.
        let src = ShardedLedger::home_shard(&a, 4);
        let dst = ShardedLedger::home_shard(&b, 4);
        let bridge = ShardedLedger::bridge_address(src, dst);
        assert_eq!(l.shards[src].machine().db.balance(&bridge), 700);
    }

    #[test]
    fn sharding_speeds_up_partitionable_traffic() {
        // 1000 random transfers over 200 accounts: 8 shards should beat 1.
        let accounts = addrs(200);
        let mut rng = Rng::seed_from(1);
        let transfers: Vec<Transfer> = (0..1_000)
            .map(|_| Transfer {
                from: accounts[rng.below(200) as usize],
                to: accounts[rng.below(200) as usize],
                value: 1,
            })
            .collect();
        let run = |k: usize| {
            let mut l = ledger(k, &accounts);
            for t in &transfers {
                l.submit(*t).unwrap();
            }
            l.seal_all();
            l
        };
        let single = run(1);
        let sharded = run(8);
        assert!(
            (single.speedup() - 1.0).abs() < 1e-9,
            "one shard is the baseline, got {}",
            single.speedup()
        );
        assert!(
            sharded.speedup() > 2.0,
            "8 shards should speed up ≥2x, got {:.2}",
            sharded.speedup()
        );
        // Conservation: total balances match across both runs.
        let total =
            |l: &ShardedLedger| -> u128 { accounts.iter().map(|a| u128::from(l.balance(a))).sum() };
        assert_eq!(total(&single), total(&sharded));
    }

    #[test]
    fn cross_shard_fraction_erodes_speedup() {
        // All-cross traffic (2 slots per transfer) vs all-intra.
        let accounts = addrs(100);
        let (intra, cross): (Vec<Address>, Vec<Address>) = {
            let shard0: Vec<Address> = accounts
                .iter()
                .copied()
                .filter(|a| ShardedLedger::home_shard(a, 2) == 0)
                .collect();
            let shard1: Vec<Address> = accounts
                .iter()
                .copied()
                .filter(|a| ShardedLedger::home_shard(a, 2) == 1)
                .collect();
            (shard0, shard1)
        };
        assert!(intra.len() >= 2 && cross.len() >= 2);

        let mut all_intra = ledger(2, &accounts);
        for i in 0..200 {
            all_intra
                .submit(Transfer {
                    from: intra[i % intra.len()],
                    to: intra[(i + 1) % intra.len()],
                    value: 1,
                })
                .unwrap();
        }
        all_intra.seal_all();

        let mut all_cross = ledger(2, &accounts);
        for i in 0..200 {
            all_cross
                .submit(Transfer {
                    from: intra[i % intra.len()],
                    to: cross[i % cross.len()],
                    value: 1,
                })
                .unwrap();
        }
        all_cross.seal_all();

        assert!(
            all_cross.stats().total_slots > all_intra.stats().total_slots,
            "cross-shard traffic costs more total slots ({} vs {})",
            all_cross.stats().total_slots,
            all_intra.stats().total_slots
        );
    }
}
