//! Property tests for the sharded stack (PR 10 gates).
//!
//! 1. **Equivalence**: a beacon-coordinated sharded run over the simulated
//!    network commits the same final balances as one unsharded chain
//!    applying the same transfer mix sequentially. Holds for amply funded
//!    accounts, where transfers commute regardless of seal interleaving.
//! 2. **Conservation**: no transfer mix — including overdraw attempts
//!    against underfunded mint pools — changes the audited total supply of
//!    a [`ShardedLedger`]; rejected transfers are rejected *whole*.
//! 3. **Conservation under faults**: even when the beacon silently drops
//!    every receipt bound for some shard (forcing timeout-refunds), user
//!    balances still sum to the genesis allocation at quiescence.

use dcs_crypto::Address;
use dcs_primitives::Amount;
use dcs_scale::beacon::{BeaconNet, BeaconParams};
use dcs_scale::{ShardedLedger, Transfer};
use dcs_sim::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

const ACCOUNTS: u64 = 24;
const FUNDING: Amount = 1_000_000;

fn accounts() -> Vec<Address> {
    (0..ACCOUNTS).map(Address::from_index).collect()
}

fn alloc() -> Vec<(Address, Amount)> {
    accounts().iter().map(|a| (*a, FUNDING)).collect()
}

fn to_transfers(mix: &[(u64, u64, u64)]) -> Vec<Transfer> {
    let accts = accounts();
    mix.iter()
        .map(|(f, t, v)| Transfer {
            from: accts[(f % ACCOUNTS) as usize],
            to: accts[(t % ACCOUNTS) as usize],
            value: 1 + v % 100,
        })
        .collect()
}

/// The oracle: one unsharded chain applying the mix in submission order.
fn single_chain_balances(transfers: &[Transfer]) -> BTreeMap<Address, Amount> {
    let mut ledger = ShardedLedger::new(1, 64, &alloc());
    for t in transfers {
        ledger.submit(*t).expect("a single shard never crosses");
    }
    ledger.seal_all();
    accounts().iter().map(|a| (*a, ledger.balance(a))).collect()
}

proptest! {
    // Each case spins up a full discrete-event network; keep the counts
    // low enough for the tier-1 budget.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn beacon_run_matches_single_chain(
        mix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..60),
        seed in 0u64..1_000,
        shards in 2usize..4,
    ) {
        let transfers = to_transfers(&mix);
        let params = BeaconParams { shards, ..BeaconParams::default() };
        let mut net = BeaconNet::new(&params, seed, &alloc());
        for (i, t) in transfers.iter().enumerate() {
            net.submit_at(SimTime::from_micros(4_000 * (i as u64 + 1)), *t);
        }
        net.run();
        let stats = net.stats();
        // With FUNDING ≫ 60 × 100 nothing can be rejected or refunded.
        prop_assert_eq!(stats.rejected, 0);
        prop_assert_eq!(stats.refunded, 0);
        let expected = single_chain_balances(&transfers);
        for a in &accounts() {
            prop_assert_eq!(net.balance(a), expected[a]);
        }
        // Conservation and lock closure at quiescence.
        prop_assert_eq!(net.user_total(&accounts()), u128::from(ACCOUNTS) * u128::from(FUNDING));
        for i in 0..shards {
            prop_assert_eq!(net.shard(i).open_locks(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn audited_supply_is_conserved(
        mix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..80),
        shards in 1usize..5,
        // Deliberately small pools so some cross-shard mints bounce.
        pool in 0u64..2_000,
        rounds in 1usize..4,
    ) {
        let accts = accounts();
        let transfers = to_transfers(&mix);
        let mut ledger = ShardedLedger::new(shards, 32, &alloc());
        ledger.fund_mint_pools(pool);
        let initial = ledger.audited_supply(&accts);
        let mut failures = 0u64;
        for round in 0..rounds {
            for t in &transfers {
                if ledger.submit(*t).is_err() {
                    failures += 1;
                }
            }
            ledger.seal_all();
            // Supply never moves, sealed or mid-stream.
            prop_assert_eq!(
                ledger.audited_supply(&accts), initial,
                "supply drifted after round {}", round
            );
        }
        prop_assert_eq!(ledger.stats().mint_failures, failures);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn user_balances_conserved_under_silent_beacon(
        mix in proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..40),
        seed in 0u64..1_000,
        silent in 0u32..2,
    ) {
        let transfers = to_transfers(&mix);
        let params = BeaconParams {
            shards: 2,
            silent_shards: vec![silent],
            ..BeaconParams::default()
        };
        let mut net = BeaconNet::new(&params, seed, &alloc());
        for (i, t) in transfers.iter().enumerate() {
            net.submit_at(SimTime::from_micros(4_000 * (i as u64 + 1)), *t);
        }
        net.run();
        // Locks toward the silent shard were refunded, the rest minted;
        // either way no value appeared or vanished and no lock stays open.
        prop_assert_eq!(net.user_total(&accounts()), u128::from(ACCOUNTS) * u128::from(FUNDING));
        for i in 0..2 {
            prop_assert_eq!(net.shard(i).open_locks(), 0);
        }
        let stats = net.stats();
        prop_assert_eq!(stats.refunded, net.beacon().stats.timeout_denials);
    }
}
