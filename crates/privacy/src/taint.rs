//! Taint analysis over the UTXO transaction graph — the traceability the
//! paper warns about (§5.3): "it is still possible to trace users based on
//! their activity, which is fully exposed since every transaction is
//! recorded", making Bitcoin "not a perfectly fungible system" where
//! "'clean' coins with little or no history are worth slightly more".
//!
//! Implements the *haircut* model: when a transaction mixes tainted and
//! clean inputs, every output inherits the value-weighted average taint.

use dcs_crypto::Hash256;
use dcs_primitives::{Transaction, UtxoTx};
use dcs_state::OutPoint;
use std::collections::HashMap;

/// Tracks per-output taint fractions across a stream of transactions.
#[derive(Debug, Default)]
pub struct TaintTracker {
    /// Taint fraction per outpoint, in `[0, 1]`.
    taint: HashMap<OutPoint, f64>,
    /// Output values (needed for value-weighted mixing).
    values: HashMap<OutPoint, u64>,
}

impl TaintTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        TaintTracker::default()
    }

    /// Registers a pristine (clean) output, e.g. a coinbase.
    pub fn add_clean(&mut self, op: OutPoint, value: u64) {
        self.taint.insert(op, 0.0);
        self.values.insert(op, value);
    }

    /// Marks an output as fully tainted (e.g. proceeds of a known theft).
    pub fn mark_tainted(&mut self, op: OutPoint) {
        self.taint.insert(op, 1.0);
    }

    /// The taint fraction of an output (0 if unknown).
    pub fn taint_of(&self, op: &OutPoint) -> f64 {
        self.taint.get(op).copied().unwrap_or(0.0)
    }

    /// Applies one UTXO transaction: outputs inherit the value-weighted
    /// average taint of the inputs (the haircut rule).
    pub fn apply(&mut self, tx: &UtxoTx, tx_id: Hash256) {
        let mut tainted_value = 0.0;
        let mut total_value = 0.0;
        for input in &tx.inputs {
            let op = OutPoint {
                tx: input.prev_tx,
                index: input.index,
            };
            let value = self.values.get(&op).copied().unwrap_or(0) as f64;
            tainted_value += self.taint_of(&op) * value;
            total_value += value;
            self.taint.remove(&op);
            self.values.remove(&op);
        }
        let fraction = if total_value > 0.0 {
            tainted_value / total_value
        } else {
            0.0
        };
        for (i, out) in tx.outputs.iter().enumerate() {
            let op = OutPoint {
                tx: tx_id,
                index: i as u32,
            };
            self.taint.insert(op, fraction);
            self.values.insert(op, out.value);
        }
    }

    /// Convenience: applies a wrapped transaction if it is a UTXO one.
    pub fn apply_transaction(&mut self, tx: &Transaction) {
        if let Transaction::Utxo(u) = tx {
            self.apply(u, tx.id());
        }
    }

    /// Fungibility report: fraction of total tracked value whose taint
    /// exceeds `threshold` — the "discounted coins" share.
    pub fn tainted_value_fraction(&self, threshold: f64) -> f64 {
        let mut tainted = 0.0;
        let mut total = 0.0;
        for (op, &value) in &self.values {
            total += value as f64;
            if self.taint_of(op) > threshold {
                tainted += value as f64;
            }
        }
        if total == 0.0 {
            0.0
        } else {
            tainted / total
        }
    }

    /// Number of live tracked outputs.
    pub fn tracked_outputs(&self) -> usize {
        self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::{sha256, Address};
    use dcs_primitives::{TxIn, TxOut};

    fn op(label: &str) -> OutPoint {
        OutPoint {
            tx: sha256(label.as_bytes()),
            index: 0,
        }
    }

    fn spend(inputs: &[OutPoint], outputs: &[u64]) -> UtxoTx {
        UtxoTx {
            inputs: inputs
                .iter()
                .map(|o| TxIn {
                    prev_tx: o.tx,
                    index: o.index,
                    auth: None,
                })
                .collect(),
            outputs: outputs
                .iter()
                .map(|&value| TxOut {
                    value,
                    recipient: Address::ZERO,
                })
                .collect(),
        }
    }

    #[test]
    fn full_taint_propagates() {
        let mut t = TaintTracker::new();
        let dirty = op("theft");
        t.add_clean(dirty, 100);
        t.mark_tainted(dirty);
        let tx = spend(&[dirty], &[60, 40]);
        let id = sha256(b"tx1");
        t.apply(&tx, id);
        assert_eq!(t.taint_of(&OutPoint { tx: id, index: 0 }), 1.0);
        assert_eq!(t.taint_of(&OutPoint { tx: id, index: 1 }), 1.0);
    }

    #[test]
    fn haircut_mixing_dilutes_taint() {
        let mut t = TaintTracker::new();
        let dirty = op("theft");
        let clean = op("mined");
        t.add_clean(dirty, 100);
        t.mark_tainted(dirty);
        t.add_clean(clean, 300);
        // Mix 100 tainted + 300 clean → every output 25% tainted.
        let tx = spend(&[dirty, clean], &[200, 200]);
        let id = sha256(b"mix");
        t.apply(&tx, id);
        assert!((t.taint_of(&OutPoint { tx: id, index: 0 }) - 0.25).abs() < 1e-12);
        assert!((t.taint_of(&OutPoint { tx: id, index: 1 }) - 0.25).abs() < 1e-12);
        // Inputs were consumed.
        assert_eq!(t.tracked_outputs(), 2);
    }

    #[test]
    fn repeated_mixing_decays_taint_geometrically() {
        let mut t = TaintTracker::new();
        let dirty = op("theft");
        t.add_clean(dirty, 100);
        t.mark_tainted(dirty);
        let mut current = dirty;
        let mut expected = 1.0;
        for round in 0..5 {
            let clean = op(&format!("fresh-{round}"));
            t.add_clean(clean, 100);
            // Split back into two 100-value outputs so each round mixes
            // equal values (taint halves every round).
            let tx = spend(&[current, clean], &[100, 100]);
            let id = sha256(format!("mix-{round}").as_bytes());
            t.apply(&tx, id);
            current = OutPoint { tx: id, index: 0 };
            expected /= 2.0;
            assert!(
                (t.taint_of(&current) - expected).abs() < 1e-9,
                "round {round}"
            );
        }
        assert!(
            t.taint_of(&current) < 0.05,
            "five 1:1 mixes leave ~3% taint"
        );
    }

    #[test]
    fn fungibility_report() {
        let mut t = TaintTracker::new();
        let dirty = op("theft");
        let clean = op("mined");
        t.add_clean(dirty, 100);
        t.mark_tainted(dirty);
        t.add_clean(clean, 900);
        assert!((t.tainted_value_fraction(0.5) - 0.1).abs() < 1e-12);
        assert_eq!(t.tainted_value_fraction(1.0), 0.0, "threshold is exclusive");
    }

    #[test]
    fn unknown_inputs_treated_as_clean() {
        let mut t = TaintTracker::new();
        let tx = spend(&[op("never-seen")], &[50]);
        let id = sha256(b"tx");
        t.apply(&tx, id);
        assert_eq!(t.taint_of(&OutPoint { tx: id, index: 0 }), 0.0);
    }
}
