//! Multi-channel ledgers (§5.3, \[37\]): "there is a need to explicitly
//! guarantee that the information will not be stored outside of defined
//! boundaries". Each channel is its own blockchain with its own membership;
//! non-members can neither submit to nor read a channel. Channels stay
//! independent, yet value can move *atomically* between them with a
//! hashlock-based swap (atomic cross-chain swaps, \[31\]).

use crate::commitments::Hashlock;
use dcs_chain::Chain;
use dcs_contracts::AccountMachine;
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{
    AccountTx, Amount, Block, BlockHeader, ChainConfig, Seal, Transaction, TxPayload,
};
use std::collections::{HashMap, HashSet};

/// Identifies a channel within a [`MultiChannel`] deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChannelId(pub u32);

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// The channel id is unknown.
    NoSuchChannel(u32),
    /// The actor is not a member of the channel (isolation boundary).
    NotAMember(Address),
    /// An HTLC id is unknown or already settled.
    NoSuchLock(u64),
    /// The preimage does not open the hashlock.
    WrongPreimage,
    /// The HTLC timed out (claim) or has not timed out yet (refund).
    TimeoutViolation,
    /// A transfer failed (insufficient funds etc.).
    Transfer(String),
}

impl core::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ChannelError::NoSuchChannel(id) => write!(f, "no such channel {id}"),
            ChannelError::NotAMember(a) => write!(f, "{a} is not a channel member"),
            ChannelError::NoSuchLock(id) => write!(f, "no such hashlock {id}"),
            ChannelError::WrongPreimage => write!(f, "preimage does not open the lock"),
            ChannelError::TimeoutViolation => write!(f, "timeout constraint violated"),
            ChannelError::Transfer(e) => write!(f, "transfer failed: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// A hash-time-locked payment inside one channel.
#[derive(Debug, Clone)]
pub struct Htlc {
    /// Funds source.
    pub payer: Address,
    /// Funds destination on successful claim.
    pub payee: Address,
    /// Locked amount.
    pub amount: Amount,
    /// The hashlock.
    pub lock: Hashlock,
    /// Channel height after which the payer may refund.
    pub timeout_height: u64,
    /// The preimage, once revealed by a claim (public within the channel —
    /// this is what makes the cross-channel swap atomic).
    pub revealed: Option<Vec<u8>>,
}

/// One channel: an ordered ledger plus its membership set.
#[derive(Debug)]
pub struct ChannelLedger {
    /// Human-readable name.
    pub name: String,
    chain: Chain<AccountMachine>,
    members: HashSet<Address>,
    pending: Vec<Transaction>,
    htlcs: HashMap<u64, Htlc>,
    next_htlc: u64,
    nonces: HashMap<Address, u64>,
}

/// The address escrowing HTLC funds inside a channel.
fn escrow_address(channel: u32) -> Address {
    Address::from_hash(&dcs_crypto::sha256(
        &[b"htlc-escrow".as_slice(), &channel.to_le_bytes()].concat(),
    ))
}

impl ChannelLedger {
    fn new(
        name: String,
        channel_id: u32,
        members: Vec<Address>,
        alloc: &[(Address, Amount)],
    ) -> Self {
        let mut config = ChainConfig::hyperledger_like();
        config.chain_id = channel_id + 1000;
        let genesis = dcs_chain::genesis_block(&config);
        let mut machine = AccountMachine::with_alloc(alloc);
        // Permissioned channels meter by policy, not payment (§2.4).
        machine.schedule = config.gas.clone();
        ChannelLedger {
            name,
            chain: Chain::new(genesis, config, machine),
            members: members.into_iter().collect(),
            pending: Vec::new(),
            htlcs: HashMap::new(),
            next_htlc: 0,
            nonces: HashMap::new(),
        }
    }

    /// Channel block height.
    pub fn height(&self) -> u64 {
        self.chain.height()
    }

    /// Is `who` a member?
    pub fn is_member(&self, who: &Address) -> bool {
        self.members.contains(who)
    }

    fn check_member(&self, who: &Address) -> Result<(), ChannelError> {
        if self.is_member(who) {
            Ok(())
        } else {
            Err(ChannelError::NotAMember(*who))
        }
    }

    fn next_nonce(&mut self, who: &Address) -> u64 {
        let e = self.nonces.entry(*who).or_insert(0);
        let n = *e;
        *e += 1;
        n
    }

    fn queue_transfer(&mut self, from: Address, to: Address, amount: Amount) {
        let nonce = self.next_nonce(&from);
        let mut tx = AccountTx::transfer(from, to, amount, nonce);
        tx.gas_limit = 0;
        tx.gas_price = 0;
        self.pending.push(Transaction::Account(tx));
    }

    /// Seals all pending transactions into the next block. Returns receipts
    /// count. Transfers that fail (e.g. insufficient funds) get failed
    /// receipts, visible to members.
    pub fn seal_block(&mut self) -> usize {
        let txs = std::mem::take(&mut self.pending);
        let header = BlockHeader::new(
            self.chain.tip_hash(),
            self.chain.height() + 1,
            self.chain.height() + 1,
            Address::ZERO,
            Seal::Authority {
                view: 0,
                sequence: self.chain.height() + 1,
                votes: 1,
            },
        );
        let block = Block::new(header, txs);
        self.chain
            .import(block)
            .expect("sequencer-built blocks are structurally valid");
        let receipts = self.chain.drain_receipts();
        receipts.last().map_or(0, |(_, r)| r.len())
    }

    fn db(&self) -> &dcs_state::AccountDb {
        &self.chain.machine().db
    }
}

/// A deployment of isolated channels over a shared sequencer.
#[derive(Debug, Default)]
pub struct MultiChannel {
    channels: HashMap<u32, ChannelLedger>,
    next_id: u32,
}

impl MultiChannel {
    /// An empty deployment.
    pub fn new() -> Self {
        MultiChannel::default()
    }

    /// Creates a channel with the given membership and genesis funding.
    pub fn create_channel(
        &mut self,
        name: &str,
        members: Vec<Address>,
        alloc: &[(Address, Amount)],
    ) -> ChannelId {
        let id = self.next_id;
        self.next_id += 1;
        self.channels
            .insert(id, ChannelLedger::new(name.to_string(), id, members, alloc));
        ChannelId(id)
    }

    fn channel(&self, id: ChannelId) -> Result<&ChannelLedger, ChannelError> {
        self.channels
            .get(&id.0)
            .ok_or(ChannelError::NoSuchChannel(id.0))
    }

    fn channel_mut(&mut self, id: ChannelId) -> Result<&mut ChannelLedger, ChannelError> {
        self.channels
            .get_mut(&id.0)
            .ok_or(ChannelError::NoSuchChannel(id.0))
    }

    /// Submits a member transfer to a channel (queued until the next seal).
    ///
    /// # Errors
    ///
    /// [`ChannelError::NotAMember`] if `from` is outside the channel.
    pub fn submit_transfer(
        &mut self,
        id: ChannelId,
        from: Address,
        to: Address,
        amount: Amount,
    ) -> Result<(), ChannelError> {
        let ch = self.channel_mut(id)?;
        ch.check_member(&from)?;
        ch.queue_transfer(from, to, amount);
        Ok(())
    }

    /// Seals pending transactions on a channel into a block.
    pub fn seal_block(&mut self, id: ChannelId) -> Result<usize, ChannelError> {
        Ok(self.channel_mut(id)?.seal_block())
    }

    /// A member reads a balance. Non-members are refused — the privacy
    /// domain boundary.
    ///
    /// # Errors
    ///
    /// [`ChannelError::NotAMember`] for outsiders.
    pub fn balance(
        &self,
        id: ChannelId,
        reader: Address,
        account: Address,
    ) -> Result<Amount, ChannelError> {
        let ch = self.channel(id)?;
        ch.check_member(&reader)?;
        Ok(ch.db().balance(&account))
    }

    /// Locks `amount` from `payer` under a hashlock, payable to `payee` on
    /// preimage reveal, refundable after `timeout_blocks` channel blocks.
    /// The lock transfer is sealed immediately. Returns the HTLC id.
    ///
    /// # Errors
    ///
    /// Membership or funding errors.
    pub fn lock(
        &mut self,
        id: ChannelId,
        payer: Address,
        payee: Address,
        amount: Amount,
        lock: Hashlock,
        timeout_blocks: u64,
    ) -> Result<u64, ChannelError> {
        let escrow = escrow_address(id.0);
        let ch = self.channel_mut(id)?;
        ch.check_member(&payer)?;
        if ch.db().balance(&payer) < amount {
            return Err(ChannelError::Transfer(
                "insufficient balance to lock".into(),
            ));
        }
        ch.queue_transfer(payer, escrow, amount);
        ch.seal_block();
        let htlc_id = ch.next_htlc;
        ch.next_htlc += 1;
        ch.htlcs.insert(
            htlc_id,
            Htlc {
                payer,
                payee,
                amount,
                lock,
                timeout_height: ch.height() + timeout_blocks,
                revealed: None,
            },
        );
        Ok(htlc_id)
    }

    /// Claims an HTLC with the preimage; pays the payee and publishes the
    /// preimage inside the channel.
    ///
    /// # Errors
    ///
    /// Wrong preimage, expired lock, unknown id, or non-member claimer.
    pub fn claim(
        &mut self,
        id: ChannelId,
        claimer: Address,
        htlc_id: u64,
        preimage: &[u8],
    ) -> Result<(), ChannelError> {
        let escrow = escrow_address(id.0);
        let ch = self.channel_mut(id)?;
        ch.check_member(&claimer)?;
        let htlc = ch
            .htlcs
            .get(&htlc_id)
            .ok_or(ChannelError::NoSuchLock(htlc_id))?;
        if htlc.revealed.is_some() {
            return Err(ChannelError::NoSuchLock(htlc_id));
        }
        if !htlc.lock.unlocks(preimage) {
            return Err(ChannelError::WrongPreimage);
        }
        if ch.height() > htlc.timeout_height {
            return Err(ChannelError::TimeoutViolation);
        }
        let (payee, amount) = (htlc.payee, htlc.amount);
        ch.queue_transfer(escrow, payee, amount);
        // Publish the preimage on-chain (a data transaction) so the
        // counterparty in the other channel learns it.
        let nonce = ch.next_nonce(&payee);
        let mut reveal = AccountTx::transfer(payee, Address::ZERO, 0, nonce);
        reveal.gas_limit = 0;
        reveal.gas_price = 0;
        reveal.payload = TxPayload::Data(preimage.to_vec());
        ch.pending.push(Transaction::Account(reveal));
        ch.seal_block();
        ch.htlcs.get_mut(&htlc_id).expect("present above").revealed = Some(preimage.to_vec());
        Ok(())
    }

    /// Refunds an expired HTLC back to the payer.
    ///
    /// # Errors
    ///
    /// [`ChannelError::TimeoutViolation`] before expiry; unknown id.
    pub fn refund(&mut self, id: ChannelId, htlc_id: u64) -> Result<(), ChannelError> {
        let escrow = escrow_address(id.0);
        let ch = self.channel_mut(id)?;
        let htlc = ch
            .htlcs
            .get(&htlc_id)
            .ok_or(ChannelError::NoSuchLock(htlc_id))?;
        if htlc.revealed.is_some() {
            return Err(ChannelError::NoSuchLock(htlc_id));
        }
        if ch.height() <= htlc.timeout_height {
            return Err(ChannelError::TimeoutViolation);
        }
        let (payer, amount) = (htlc.payer, htlc.amount);
        ch.queue_transfer(escrow, payer, amount);
        ch.seal_block();
        ch.htlcs.remove(&htlc_id);
        Ok(())
    }

    /// The revealed preimage of an HTLC, readable by channel members.
    ///
    /// # Errors
    ///
    /// Membership or unknown-lock errors.
    pub fn revealed_preimage(
        &self,
        id: ChannelId,
        reader: Address,
        htlc_id: u64,
    ) -> Result<Option<Vec<u8>>, ChannelError> {
        let ch = self.channel(id)?;
        ch.check_member(&reader)?;
        Ok(ch.htlcs.get(&htlc_id).and_then(|h| h.revealed.clone()))
    }

    /// Seals empty blocks to advance a channel's height (time passing).
    pub fn advance_blocks(&mut self, id: ChannelId, blocks: u64) -> Result<(), ChannelError> {
        let ch = self.channel_mut(id)?;
        for _ in 0..blocks {
            ch.seal_block();
        }
        Ok(())
    }

    /// State roots per channel — each channel's consistency is separately
    /// verifiable even though their contents are isolated.
    pub fn state_roots(&self) -> Vec<(ChannelId, Hash256)> {
        let mut v: Vec<_> = self
            .channels
            .iter()
            .map(|(&id, ch)| (ChannelId(id), ch.chain.machine().db.root()))
            .collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alice() -> Address {
        Address::from_index(1)
    }
    fn bob() -> Address {
        Address::from_index(2)
    }
    fn eve() -> Address {
        Address::from_index(66)
    }

    fn two_channels() -> (MultiChannel, ChannelId, ChannelId) {
        let mut mc = MultiChannel::new();
        // Channel A: alice-rich; Channel B: bob-rich. Both are members of
        // both channels (they trade across them); eve is in neither.
        let a = mc.create_channel("trade-a", vec![alice(), bob()], &[(alice(), 10_000)]);
        let b = mc.create_channel("trade-b", vec![alice(), bob()], &[(bob(), 10_000)]);
        (mc, a, b)
    }

    #[test]
    fn members_transact_outsiders_cannot() {
        let (mut mc, a, _) = two_channels();
        mc.submit_transfer(a, alice(), bob(), 100).unwrap();
        mc.seal_block(a).unwrap();
        assert_eq!(mc.balance(a, alice(), bob()).unwrap(), 100);

        assert_eq!(
            mc.submit_transfer(a, eve(), bob(), 1),
            Err(ChannelError::NotAMember(eve()))
        );
        assert_eq!(
            mc.balance(a, eve(), bob()),
            Err(ChannelError::NotAMember(eve()))
        );
    }

    #[test]
    fn channels_are_isolated() {
        let (mut mc, a, b) = two_channels();
        mc.submit_transfer(a, alice(), bob(), 500).unwrap();
        mc.seal_block(a).unwrap();
        // Nothing moved in channel B.
        assert_eq!(mc.balance(b, bob(), bob()).unwrap(), 10_000);
        assert_eq!(mc.balance(b, bob(), alice()).unwrap(), 0);
        // Roots evolve independently.
        let roots = mc.state_roots();
        assert_eq!(roots.len(), 2);
        assert_ne!(roots[0].1, roots[1].1);
    }

    #[test]
    fn atomic_swap_happy_path() {
        // Alice pays Bob 1000 in channel A; Bob pays Alice 800 in channel B;
        // both or neither (E14).
        let (mut mc, a, b) = two_channels();
        let secret = b"swap-secret-xyz";
        let lock = Hashlock::from_secret(secret);

        // 1. Alice locks in A (she knows the secret).
        let htlc_a = mc.lock(a, alice(), bob(), 1_000, lock, 10).unwrap();
        // 2. Bob sees the lock and mirrors it in B with the same hash.
        let htlc_b = mc.lock(b, bob(), alice(), 800, lock, 5).unwrap();
        // 3. Alice claims in B, revealing the secret there.
        mc.claim(b, alice(), htlc_b, secret).unwrap();
        assert_eq!(mc.balance(b, alice(), alice()).unwrap(), 800);
        // 4. Bob reads the preimage from channel B and claims in A.
        let revealed = mc.revealed_preimage(b, bob(), htlc_b).unwrap().unwrap();
        mc.claim(a, bob(), htlc_a, &revealed).unwrap();
        assert_eq!(mc.balance(a, bob(), bob()).unwrap(), 1_000);
        // Escrows are empty.
        assert_eq!(mc.balance(a, alice(), escrow_address(a.0)).unwrap(), 0);
        assert_eq!(mc.balance(b, bob(), escrow_address(b.0)).unwrap(), 0);
    }

    #[test]
    fn swap_aborts_safely_via_refund() {
        // Bob never claims; after the timeout both sides refund — neither
        // loses funds.
        let (mut mc, a, _) = two_channels();
        let lock = Hashlock::from_secret(b"never-revealed");
        let htlc = mc.lock(a, alice(), bob(), 1_000, lock, 3).unwrap();
        assert_eq!(mc.balance(a, alice(), alice()).unwrap(), 9_000);

        // Too early to refund.
        assert_eq!(mc.refund(a, htlc), Err(ChannelError::TimeoutViolation));
        mc.advance_blocks(a, 4).unwrap();
        mc.refund(a, htlc).unwrap();
        assert_eq!(mc.balance(a, alice(), alice()).unwrap(), 10_000);
        // Claim after refund is impossible.
        assert_eq!(
            mc.claim(a, bob(), htlc, b"never-revealed"),
            Err(ChannelError::NoSuchLock(htlc))
        );
    }

    #[test]
    fn wrong_preimage_rejected() {
        let (mut mc, a, _) = two_channels();
        let lock = Hashlock::from_secret(b"right");
        let htlc = mc.lock(a, alice(), bob(), 100, lock, 10).unwrap();
        assert_eq!(
            mc.claim(a, bob(), htlc, b"wrong"),
            Err(ChannelError::WrongPreimage)
        );
    }

    #[test]
    fn expired_claim_rejected() {
        let (mut mc, a, _) = two_channels();
        let lock = Hashlock::from_secret(b"s");
        let htlc = mc.lock(a, alice(), bob(), 100, lock, 2).unwrap();
        mc.advance_blocks(a, 5).unwrap();
        assert_eq!(
            mc.claim(a, bob(), htlc, b"s"),
            Err(ChannelError::TimeoutViolation)
        );
    }

    #[test]
    fn lock_requires_funds() {
        let (mut mc, a, _) = two_channels();
        let lock = Hashlock::from_secret(b"s");
        // Bob has no funds in channel A.
        assert!(matches!(
            mc.lock(a, bob(), alice(), 1, lock, 5),
            Err(ChannelError::Transfer(_))
        ));
    }
}
