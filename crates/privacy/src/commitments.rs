//! Hash commitments: hide a value on-chain now, reveal it later. The
//! primitive beneath the paper's §5.3 references to keeping "contract code
//! confidential, yet still allow transactions to be validated" — sealed
//! bids, committed documents, and the hashlocks used by payment channels
//! and cross-chain swaps (\[31\]) are all commitments.
//!
//! `commit = SHA-256(tag || value || blinding)`. Hiding comes from the
//! 32-byte random blinding factor; binding from collision resistance.

use dcs_crypto::{Hash256, Sha256};
use dcs_sim::Rng;
use serde::{Deserialize, Serialize};

const COMMIT_TAG: u8 = 0x20;

/// A commitment to a byte string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Commitment(Hash256);

/// The secret needed to open a commitment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Opening {
    /// The committed value.
    pub value: Vec<u8>,
    /// The blinding factor.
    pub blinding: [u8; 32],
}

impl Commitment {
    /// Commits to `value` with a fresh random blinding factor.
    pub fn commit(value: &[u8], rng: &mut Rng) -> (Commitment, Opening) {
        let mut blinding = [0u8; 32];
        for chunk in blinding.chunks_mut(8) {
            chunk.copy_from_slice(&rng.next_u64().to_le_bytes()[..chunk.len()]);
        }
        let c = Self::compute(value, &blinding);
        (
            c,
            Opening {
                value: value.to_vec(),
                blinding,
            },
        )
    }

    /// Deterministic commitment with an explicit blinding factor (e.g.
    /// derived from a shared secret).
    pub fn commit_with(value: &[u8], blinding: [u8; 32]) -> Commitment {
        Self::compute(value, &blinding)
    }

    fn compute(value: &[u8], blinding: &[u8; 32]) -> Commitment {
        let mut ctx = Sha256::new();
        ctx.update(&[COMMIT_TAG]);
        ctx.update(&(value.len() as u64).to_le_bytes());
        ctx.update(value);
        ctx.update(blinding);
        Commitment(ctx.finalize())
    }

    /// Verifies an opening against this commitment.
    pub fn open(&self, opening: &Opening) -> bool {
        Self::compute(&opening.value, &opening.blinding) == *self
    }

    /// The digest (what actually goes on-chain).
    pub fn digest(&self) -> Hash256 {
        self.0
    }
}

/// A hashlock: funds claimable by whoever reveals the preimage of `lock`
/// (the HTLC building block used by payment channels and atomic swaps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hashlock {
    /// SHA-256 of the secret preimage.
    pub lock: Hash256,
}

impl Hashlock {
    /// Creates a lock from a secret.
    pub fn from_secret(secret: &[u8]) -> Self {
        Hashlock {
            lock: dcs_crypto::sha256(secret),
        }
    }

    /// Checks a claimed preimage.
    pub fn unlocks(&self, preimage: &[u8]) -> bool {
        dcs_crypto::sha256(preimage) == self.lock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_open_round_trip() {
        let mut rng = Rng::seed_from(1);
        let (c, opening) = Commitment::commit(b"sealed bid: 450", &mut rng);
        assert!(c.open(&opening));
    }

    #[test]
    fn wrong_value_or_blinding_fails() {
        let mut rng = Rng::seed_from(2);
        let (c, opening) = Commitment::commit(b"value", &mut rng);
        let mut bad_value = opening.clone();
        bad_value.value = b"other".to_vec();
        assert!(!c.open(&bad_value));
        let mut bad_blinding = opening;
        bad_blinding.blinding[0] ^= 1;
        assert!(!c.open(&bad_blinding));
    }

    #[test]
    fn commitments_hide_equal_values() {
        // Two commitments to the same value with different blinding factors
        // are unlinkable digests.
        let mut rng = Rng::seed_from(3);
        let (c1, _) = Commitment::commit(b"100", &mut rng);
        let (c2, _) = Commitment::commit(b"100", &mut rng);
        assert_ne!(c1, c2);
    }

    #[test]
    fn length_prefix_prevents_boundary_games() {
        // commit("ab" || blinding-starting-with-c) must differ from
        // commit("abc" || shifted blinding): the length prefix separates
        // value bytes from blinding bytes.
        let b1 = [0x63u8; 32]; // 'c'
        let mut b2 = [0x63u8; 32];
        b2[31] = 0;
        let c1 = Commitment::commit_with(b"ab", b1);
        let c2 = Commitment::commit_with(b"abc", b2);
        assert_ne!(c1, c2);
    }

    #[test]
    fn hashlock_semantics() {
        let lock = Hashlock::from_secret(b"preimage-42");
        assert!(lock.unlocks(b"preimage-42"));
        assert!(!lock.unlocks(b"preimage-43"));
    }
}
