//! Security and privacy mechanisms (§5.3 of the paper):
//!
//! * [`mixer`] — mixer networks ("newer systems address these privacy
//!   concerns by introducing mixer networks to hide the transaction
//!   history"): round-based Chaumian mixing with quantified anonymity sets
//!   and latency cost (experiment E9).
//! * [`taint`] — the traceability problem that motivates mixing: haircut
//!   taint propagation over the transaction graph, quantifying how "some
//!   coins might be linked to addresses known to be used for fraudulent
//!   activities" and the resulting fungibility loss.
//! * [`commitments`] — hash commitments hiding values until reveal (the
//!   building block the paper's zero-knowledge references rely on).
//! * [`multichannel`] — Hyperledger-style privacy domains ("the blockchain
//!   platform must support such privacy domains and yet still remain
//!   consistent"), with cross-channel atomic swaps via hashlocks (\[31\]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commitments;
pub mod mixer;
pub mod multichannel;
pub mod taint;

pub use commitments::Commitment;
pub use mixer::{Mixer, MixerConfig};
pub use multichannel::{ChannelLedger, MultiChannel};
pub use taint::TaintTracker;
