//! A round-based mixer (Chaumian mix / CoinJoin-style): participants
//! deposit equal-denomination coins; once a round fills (or times out), the
//! mixer shuffles and pays out to fresh addresses. An observer watching the
//! chain can no longer link deposits to withdrawals beyond guessing within
//! the round — the *anonymity set*.
//!
//! The module also quantifies the privacy/latency trade-off the paper
//! flags: larger rounds → larger anonymity sets → longer waits (E9).

use dcs_crypto::Address;
use dcs_sim::{Rng, SimDuration, SimTime};

/// Mixer parameters.
#[derive(Debug, Clone, Copy)]
pub struct MixerConfig {
    /// Participants per round (the anonymity set size).
    pub round_size: usize,
    /// Cut a round at this age even if not full.
    pub round_timeout: SimDuration,
    /// The single denomination mixed (equal amounts are what make outputs
    /// indistinguishable).
    pub denomination: u64,
}

impl Default for MixerConfig {
    fn default() -> Self {
        MixerConfig {
            round_size: 16,
            round_timeout: SimDuration::from_secs(600),
            denomination: 1_000,
        }
    }
}

/// A deposit waiting to be mixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deposit {
    /// Who paid in.
    pub from: Address,
    /// Where the mixed coins should go.
    pub payout_to: Address,
    /// When the deposit arrived.
    pub at: SimTime,
}

/// One completed mixing round.
#[derive(Debug, Clone)]
pub struct MixRound {
    /// Deposits, in arrival order (what the chain observer sees going in).
    pub deposits: Vec<Deposit>,
    /// Payout addresses, in shuffled order (what the observer sees coming
    /// out).
    pub payouts: Vec<Address>,
    /// When the round settled.
    pub settled_at: SimTime,
}

impl MixRound {
    /// The anonymity set size of this round.
    pub fn anonymity_set(&self) -> usize {
        self.deposits.len()
    }

    /// Mean deposit→payout delay — the latency price of privacy.
    pub fn mean_delay(&self) -> SimDuration {
        if self.deposits.is_empty() {
            return SimDuration::ZERO;
        }
        let total: SimDuration = self
            .deposits
            .iter()
            .map(|d| self.settled_at.saturating_since(d.at))
            .sum();
        total / self.deposits.len() as u64
    }

    /// The probability an observer correctly links one specific deposit to
    /// its payout by guessing: `1 / anonymity_set`.
    pub fn linkage_probability(&self) -> f64 {
        if self.deposits.is_empty() {
            return 1.0;
        }
        1.0 / self.deposits.len() as f64
    }
}

/// The mixer service.
#[derive(Debug)]
pub struct Mixer {
    config: MixerConfig,
    pending: Vec<Deposit>,
    round_opened: Option<SimTime>,
    completed: Vec<MixRound>,
    rng: Rng,
}

impl Mixer {
    /// Creates a mixer; `seed` drives the payout shuffle.
    pub fn new(config: MixerConfig, seed: u64) -> Self {
        Mixer {
            config,
            pending: Vec::new(),
            round_opened: None,
            completed: Vec::new(),
            rng: Rng::seed_from(seed),
        }
    }

    /// Deposits a coin for mixing. Returns the settled round if this
    /// deposit filled it.
    pub fn deposit(
        &mut self,
        from: Address,
        payout_to: Address,
        now: SimTime,
    ) -> Option<&MixRound> {
        if self.pending.is_empty() {
            self.round_opened = Some(now);
        }
        self.pending.push(Deposit {
            from,
            payout_to,
            at: now,
        });
        if self.pending.len() >= self.config.round_size {
            return self.settle(now);
        }
        None
    }

    /// Advances time: settles the open round if it has timed out (with
    /// however many deposits it holds).
    pub fn tick(&mut self, now: SimTime) -> Option<&MixRound> {
        let opened = self.round_opened?;
        if now.saturating_since(opened) >= self.config.round_timeout && !self.pending.is_empty() {
            return self.settle(now);
        }
        None
    }

    fn settle(&mut self, now: SimTime) -> Option<&MixRound> {
        let deposits = std::mem::take(&mut self.pending);
        self.round_opened = None;
        let mut payouts: Vec<Address> = deposits.iter().map(|d| d.payout_to).collect();
        self.rng.shuffle(&mut payouts);
        self.completed.push(MixRound {
            deposits,
            payouts,
            settled_at: now,
        });
        self.completed.last()
    }

    /// All settled rounds.
    pub fn rounds(&self) -> &[MixRound] {
        &self.completed
    }

    /// Deposits still waiting.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

/// The linkage probability after chaining `rounds` mixes of size `set`:
/// each hop multiplies the observer's uncertainty.
pub fn chained_linkage_probability(set: usize, rounds: u32) -> f64 {
    if set == 0 {
        return 1.0;
    }
    (1.0 / set as f64).powi(rounds as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn cfg(size: usize) -> MixerConfig {
        MixerConfig {
            round_size: size,
            ..MixerConfig::default()
        }
    }

    #[test]
    fn round_fills_and_settles() {
        let mut mixer = Mixer::new(cfg(4), 1);
        for i in 0..3 {
            assert!(mixer
                .deposit(Address::from_index(i), Address::from_index(100 + i), t(i))
                .is_none());
        }
        let round = mixer
            .deposit(Address::from_index(3), Address::from_index(103), t(3))
            .unwrap();
        assert_eq!(round.anonymity_set(), 4);
        assert_eq!(round.linkage_probability(), 0.25);
        assert_eq!(mixer.pending_count(), 0);
    }

    #[test]
    fn payouts_are_a_permutation_of_requested_addresses() {
        let mut mixer = Mixer::new(cfg(8), 2);
        for i in 0..8 {
            mixer.deposit(Address::from_index(i), Address::from_index(100 + i), t(i));
        }
        let round = &mixer.rounds()[0];
        let mut expected: Vec<Address> = (0..8).map(|i| Address::from_index(100 + i)).collect();
        let mut got = round.payouts.clone();
        expected.sort();
        got.sort();
        assert_eq!(got, expected);
        // With 8 elements and a random shuffle, identity order is unlikely;
        // assert the shuffle actually did something under this seed.
        assert_ne!(
            round.payouts,
            (0..8)
                .map(|i| Address::from_index(100 + i))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn timeout_settles_partial_round() {
        let mut mixer = Mixer::new(
            MixerConfig {
                round_size: 100,
                round_timeout: SimDuration::from_secs(60),
                denomination: 1,
            },
            3,
        );
        mixer.deposit(Address::from_index(1), Address::from_index(2), t(0));
        mixer.deposit(Address::from_index(3), Address::from_index(4), t(10));
        assert!(mixer.tick(t(30)).is_none(), "not yet");
        let round = mixer.tick(t(61)).expect("timed out");
        assert_eq!(round.anonymity_set(), 2);
        assert_eq!(round.linkage_probability(), 0.5);
    }

    #[test]
    fn latency_grows_with_round_size() {
        // Deposits arrive at 1/s; bigger rounds mean earlier depositors
        // wait longer — the E9 trade-off in miniature.
        let delay_for = |size: u64| {
            let mut mixer = Mixer::new(cfg(size as usize), 4);
            for i in 0..size {
                mixer.deposit(Address::from_index(i), Address::from_index(100 + i), t(i));
            }
            mixer.rounds()[0].mean_delay()
        };
        assert!(delay_for(32) > delay_for(8));
    }

    #[test]
    fn chained_mixing_compounds_privacy() {
        assert_eq!(chained_linkage_probability(10, 1), 0.1);
        assert!((chained_linkage_probability(10, 3) - 0.001).abs() < 1e-12);
        assert_eq!(chained_linkage_probability(0, 2), 1.0);
    }
}
