//! Criterion benchmarks for the tracing layer: the disabled path must be
//! free (a branch on an `Option`), so block import with `TraceConfig::Off`
//! stays within noise of a chain that never heard of tracing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_chain::{Chain, NullMachine};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, Seal, Transaction};
use dcs_trace::{TraceConfig, TraceEvent, Tracer};
use std::hint::black_box;
use std::sync::Arc;

fn block_with_txs(parent: Hash256, height: u64, n_txs: usize) -> Block {
    let txs: Vec<Transaction> = (0..n_txs)
        .map(|i| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(height * 1_000 + i as u64),
                Address::from_index(1),
                1,
                0,
            ))
        })
        .collect();
    Block::new(
        BlockHeader::new(parent, height, height, Address::from_index(9), Seal::None),
        txs,
    )
}

fn chain_stream(depth: u64) -> (Block, ChainConfig, Vec<Arc<Block>>) {
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut stream: Vec<Arc<Block>> = Vec::new();
    let mut parent = genesis.hash();
    for h in 1..=depth {
        let b = Arc::new(block_with_txs(parent, h, 50));
        parent = b.hash();
        stream.push(b);
    }
    (genesis, cfg, stream)
}

/// Block-import throughput with tracing absent, installed-but-off, and
/// full. The first two must be indistinguishable (< 5% apart): off is one
/// `Option` discriminant check per import.
fn bench_import_tracing_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("import_tracing");
    group.sample_size(20);
    let depth = 200u64;
    let (genesis, cfg, stream) = chain_stream(depth);
    let run = |tracer: Option<Tracer>| {
        let mut chain = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
        if let Some(t) = tracer {
            chain.set_tracer(t);
        }
        for (h, blk) in stream.iter().enumerate() {
            chain
                .import_at(black_box(Arc::clone(blk)), h as u64)
                .unwrap();
        }
        chain.height()
    };
    group.bench_function(BenchmarkId::new("baseline", depth), |b| {
        b.iter(|| black_box(run(None)))
    });
    group.bench_function(BenchmarkId::new("off", depth), |b| {
        b.iter(|| black_box(run(Some(Tracer::new(0, &TraceConfig::off())))))
    });
    group.bench_function(BenchmarkId::new("full", depth), |b| {
        b.iter(|| black_box(run(Some(Tracer::new(0, &TraceConfig::full())))))
    });
    group.finish();
}

/// The raw emit hot path: a disabled emit is a branch and nothing else; a
/// full emit encodes, folds the digest, and ring-buffers.
fn bench_emit(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_emit");
    let n = 10_000u64;
    group.bench_function(BenchmarkId::new("disabled", n), |b| {
        let mut t = Tracer::disabled();
        b.iter(|| {
            for i in 0..n {
                t.emit(i, TraceEvent::Finalized { height: i });
            }
            black_box(t.is_enabled())
        })
    });
    group.bench_function(BenchmarkId::new("full", n), |b| {
        b.iter_with_setup(
            || Tracer::new(0, &TraceConfig::full()),
            |mut t| {
                for i in 0..n {
                    t.emit(i, TraceEvent::Finalized { height: i });
                }
                black_box(t.len())
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_import_tracing_modes, bench_emit);
criterion_main!(benches);
