//! Criterion benchmarks for the chain layer: block import throughput and
//! fork-choice evaluation on large trees (the "fork choice" ablation of
//! DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_chain::{best_tip, BlockTree, Chain, NullMachine};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, ForkChoice, Seal, Transaction};
use std::hint::black_box;

fn block_with_txs(parent: Hash256, height: u64, n_txs: usize) -> Block {
    let txs: Vec<Transaction> = (0..n_txs)
        .map(|i| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(height * 1_000 + i as u64),
                Address::from_index(1),
                1,
                0,
            ))
        })
        .collect();
    Block::new(
        BlockHeader::new(parent, height, height, Address::from_index(9), Seal::None),
        txs,
    )
}

fn bench_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_import");
    group.sample_size(20);
    for n_txs in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::new("block", n_txs), &n_txs, |b, &n_txs| {
            b.iter_with_setup(
                || {
                    let cfg = ChainConfig::hyperledger_like();
                    let genesis = dcs_chain::genesis_block(&cfg);
                    let block = block_with_txs(genesis.hash(), 1, n_txs);
                    (Chain::new(genesis, cfg, NullMachine), block)
                },
                |(mut chain, block)| {
                    chain.import(black_box(block)).unwrap();
                    black_box(chain.height())
                },
            )
        });
    }
    group.finish();
}

/// Builds a bushy tree: a main chain of `depth` with a sibling at every
/// height — the worst realistic shape for fork-choice scans.
fn bushy_tree(depth: u64) -> BlockTree {
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut tree = BlockTree::new(genesis.clone());
    let mut parent = genesis;
    for h in 1..=depth {
        let main = block_with_txs(parent.hash(), h, 0);
        let uncle = Block::new(
            BlockHeader::new(
                parent.hash(),
                h,
                h + 500_000,
                Address::from_index(2),
                Seal::None,
            ),
            vec![],
        );
        tree.insert(main.clone()).unwrap();
        tree.insert(uncle).unwrap();
        parent = main;
    }
    tree
}

fn bench_fork_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_choice");
    group.sample_size(20);
    for depth in [100u64, 1_000] {
        let tree = bushy_tree(depth);
        for rule in [
            ForkChoice::LongestChain,
            ForkChoice::HeaviestWork,
            ForkChoice::Ghost,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{rule:?}"), depth),
                &tree,
                |b, tree| b.iter(|| best_tip(black_box(tree), rule)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_import, bench_fork_choice);
criterion_main!(benches);
