//! Criterion benchmarks for the chain layer: block import throughput and
//! fork-choice evaluation on large trees (the "fork choice" ablation of
//! DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_chain::{best_tip, BlockTree, Chain, NullMachine, PrunedStore};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, ForkChoice, Seal, Transaction};
use std::hint::black_box;
use std::sync::Arc;

fn block_with_txs(parent: Hash256, height: u64, n_txs: usize) -> Block {
    let txs: Vec<Transaction> = (0..n_txs)
        .map(|i| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(height * 1_000 + i as u64),
                Address::from_index(1),
                1,
                0,
            ))
        })
        .collect();
    Block::new(
        BlockHeader::new(parent, height, height, Address::from_index(9), Seal::None),
        txs,
    )
}

fn bench_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_import");
    group.sample_size(20);
    for n_txs in [10usize, 100, 500] {
        group.bench_with_input(BenchmarkId::new("block", n_txs), &n_txs, |b, &n_txs| {
            b.iter_with_setup(
                || {
                    let cfg = ChainConfig::hyperledger_like();
                    let genesis = dcs_chain::genesis_block(&cfg);
                    let block = block_with_txs(genesis.hash(), 1, n_txs);
                    (Chain::new(genesis, cfg, NullMachine), block)
                },
                |(mut chain, block)| {
                    chain.import(black_box(block)).unwrap();
                    black_box(chain.height())
                },
            )
        });
    }
    group.finish();
}

/// Builds a bushy tree: a main chain of `depth` with a sibling at every
/// height — the worst realistic shape for fork-choice scans.
fn bushy_tree(depth: u64) -> BlockTree {
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut tree = BlockTree::new(genesis.clone());
    let mut parent = genesis;
    for h in 1..=depth {
        let main = block_with_txs(parent.hash(), h, 0);
        let uncle = Block::new(
            BlockHeader::new(
                parent.hash(),
                h,
                h + 500_000,
                Address::from_index(2),
                Seal::None,
            ),
            vec![],
        );
        tree.insert(main.clone()).unwrap();
        tree.insert(uncle).unwrap();
        parent = main;
    }
    tree
}

fn bench_fork_choice(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_choice");
    group.sample_size(20);
    for depth in [100u64, 1_000] {
        let tree = bushy_tree(depth);
        for rule in [
            ForkChoice::LongestChain,
            ForkChoice::HeaviestWork,
            ForkChoice::Ghost,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{rule:?}"), depth),
                &tree,
                |b, tree| b.iter(|| best_tip(black_box(tree), rule)),
            );
        }
    }
    group.finish();
}

/// Import a pre-built `Arc<Block>` stream into either backend. Shared
/// `Arc`s mean the setup cost per iteration is refcount bumps, not block
/// clones — the number under test is the data layer itself.
fn bench_backend_import(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_import");
    group.sample_size(20);
    let depth = 500u64;
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut stream: Vec<Arc<Block>> = Vec::new();
    let mut parent = genesis.hash();
    for h in 1..=depth {
        let b = Arc::new(block_with_txs(parent, h, 50));
        parent = b.hash();
        stream.push(b);
    }
    group.bench_function(BenchmarkId::new("archival", depth), |b| {
        b.iter(|| {
            let mut chain = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
            for blk in &stream {
                chain.import(black_box(Arc::clone(blk))).unwrap();
            }
            black_box(chain.height())
        })
    });
    group.bench_function(BenchmarkId::new("pruned_keep32", depth), |b| {
        b.iter(|| {
            let mut chain = Chain::with_store(
                genesis.clone(),
                cfg.clone(),
                NullMachine,
                PrunedStore::new(32),
            );
            for blk in &stream {
                chain.import(black_box(Arc::clone(blk))).unwrap();
            }
            black_box(chain.height())
        })
    });
    group.finish();
}

/// Reorg cost: flip between two competing branches of the given depth.
/// With `Arc<Block>` end-to-end and body-free `CanonStats::shed`, the
/// revert/apply walk moves refcounts and hash sets — no block deep-copies.
fn bench_reorg(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_reorg");
    group.sample_size(20);
    for depth in [4u64, 16] {
        let cfg = ChainConfig::bitcoin_like();
        let genesis = dcs_chain::genesis_block(&cfg);
        let branch = |salt: u64| {
            let mut out: Vec<Arc<Block>> = Vec::new();
            let mut parent = genesis.hash();
            for h in 1..=depth {
                let b = Arc::new(Block::new(
                    BlockHeader::new(
                        parent,
                        h,
                        h + salt,
                        Address::from_index(salt % 16),
                        Seal::Work {
                            nonce: h + salt,
                            difficulty: 1,
                        },
                    ),
                    (0..20)
                        .map(|i| {
                            Transaction::Account(AccountTx::transfer(
                                Address::from_index(salt + h * 1_000 + i),
                                Address::from_index(1),
                                1,
                                0,
                            ))
                        })
                        .collect(),
                ));
                parent = b.hash();
                out.push(b);
            }
            out
        };
        let a = branch(0);
        let b_branch = branch(700_000);
        // Tie-breaker block that makes branch B win, forcing a full-depth
        // reorg when delivered.
        let kicker = Arc::new(Block::new(
            BlockHeader::new(
                b_branch.last().unwrap().hash(),
                depth + 1,
                depth + 800_000,
                Address::from_index(3),
                Seal::Work {
                    nonce: 800_000,
                    difficulty: 1,
                },
            ),
            vec![],
        ));
        group.bench_with_input(BenchmarkId::new("flip", depth), &depth, |bch, _| {
            bch.iter_with_setup(
                || {
                    let mut chain = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
                    for blk in a.iter().chain(b_branch.iter()) {
                        chain.import(Arc::clone(blk)).unwrap();
                    }
                    chain
                },
                |mut chain| {
                    chain.import(black_box(Arc::clone(&kicker))).unwrap();
                    black_box(chain.stats().reorgs)
                },
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_import,
    bench_fork_choice,
    bench_backend_import,
    bench_reorg
);
criterion_main!(benches);
