//! Criterion benchmarks for the event-queue hot path: the slab/flat-heap
//! queue (`dcs_sim::Simulation`) against the `BinaryHeap<Reverse<Entry>>` +
//! side-`BTreeSet` design it replaced. Schedule/pop is the single hottest
//! loop in every experiment, and cancellation used to cost a `BTreeSet`
//! probe per pop; the slab queue cancels by generation-tagged tombstone
//! with an exact live count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_sim::{Rng, SimDuration, Simulation};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};
use std::hint::black_box;

/// The pre-slab queue, reconstructed for comparison: a max-heap of reversed
/// entries ordered by `(time, seq)`, with cancellation recorded in a side
/// set that every pop must consult.
struct LegacyQueue<E> {
    heap: BinaryHeap<Reverse<LegacyEntry<E>>>,
    cancelled: BTreeSet<u64>,
    now_us: u64,
    next_seq: u64,
}

struct LegacyEntry<E> {
    at_us: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for LegacyEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_us == other.at_us && self.seq == other.seq
    }
}
impl<E> Eq for LegacyEntry<E> {}
impl<E> PartialOrd for LegacyEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for LegacyEntry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_us, self.seq).cmp(&(other.at_us, other.seq))
    }
}

impl<E> LegacyQueue<E> {
    fn new() -> Self {
        LegacyQueue {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            now_us: 0,
            next_seq: 0,
        }
    }

    fn schedule(&mut self, delay_us: u64, event: E) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(LegacyEntry {
            at_us: self.now_us + delay_us,
            seq,
            event,
        }));
        seq
    }

    fn cancel(&mut self, seq: u64) {
        self.cancelled.insert(seq);
    }

    fn next(&mut self) -> Option<(u64, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.now_us = entry.at_us;
            return Some((entry.at_us, entry.event));
        }
        None
    }
}

/// Steady-state schedule+pop churn: a queue holding `depth` events where
/// every pop schedules a successor — the exact pattern of a gossip
/// simulation in flight.
fn bench_schedule_pop(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_queue/schedule_pop");
    for depth in [1_000usize, 16_000] {
        group.bench_with_input(BenchmarkId::new("slab", depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut rng = Rng::seed_from(7);
                let mut sim: Simulation<u64> = Simulation::new();
                for i in 0..depth as u64 {
                    sim.schedule(SimDuration::from_micros(rng.below(1_000)), i);
                }
                let mut acc = 0u64;
                for _ in 0..depth {
                    let (_, ev) = sim.next().unwrap();
                    acc ^= ev;
                    sim.schedule(SimDuration::from_micros(rng.below(1_000)), ev);
                }
                black_box(acc)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("legacy_heap", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let mut rng = Rng::seed_from(7);
                    let mut q: LegacyQueue<u64> = LegacyQueue::new();
                    for i in 0..depth as u64 {
                        q.schedule(rng.below(1_000), i);
                    }
                    let mut acc = 0u64;
                    for _ in 0..depth {
                        let (_, ev) = q.next().unwrap();
                        acc ^= ev;
                        q.schedule(rng.below(1_000), ev);
                    }
                    black_box(acc)
                });
            },
        );
    }
    group.finish();
}

/// Timer-heavy churn: half of all scheduled events are cancelled before
/// they fire (protocols re-arming timers). The legacy design pays a
/// `BTreeSet` insert per cancel plus a probe per pop; the slab queue
/// tombstones the slot and keeps `pending()` exact for free.
fn bench_cancel_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_queue/cancel_churn");
    let depth = 8_000usize;
    group.bench_function("slab", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(11);
            let mut sim: Simulation<u64> = Simulation::new();
            let mut last = None;
            for i in 0..depth as u64 {
                let id = sim.schedule(SimDuration::from_micros(rng.below(1_000)), i);
                if rng.chance(0.5) {
                    if let Some(prev) = last.take() {
                        sim.cancel(prev);
                    }
                }
                last = Some(id);
            }
            let mut acc = 0u64;
            while let Some((_, ev)) = sim.next() {
                acc ^= ev;
            }
            black_box((acc, sim.pending()))
        });
    });
    group.bench_function("legacy_heap", |b| {
        b.iter(|| {
            let mut rng = Rng::seed_from(11);
            let mut q: LegacyQueue<u64> = LegacyQueue::new();
            let mut last = None;
            for i in 0..depth as u64 {
                let id = q.schedule(rng.below(1_000), i);
                if rng.chance(0.5) {
                    if let Some(prev) = last.take() {
                        q.cancel(prev);
                    }
                }
                last = Some(id);
            }
            let mut acc = 0u64;
            while let Some((_, ev)) = q.next() {
                acc ^= ev;
            }
            black_box(acc)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_schedule_pop, bench_cancel_churn);
criterion_main!(benches);
