//! Criterion benchmarks for the contract layer: VM dispatch, storage
//! opcodes, and end-to-end transaction execution.

use criterion::{criterion_group, criterion_main, Criterion};
use dcs_contracts::{assemble, exec, stdlib, vm::ExecEnv, Vm};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, GasSchedule};
use dcs_state::AccountDb;
use std::hint::black_box;

fn bench_vm_loop(c: &mut Criterion) {
    // A counting loop: 1000 iterations of arithmetic + jump.
    // Stack discipline: `sub` computes (below − top), so counting down is
    // just `push 1; sub`.
    let code = assemble(
        "push 1000
         :loop
         jumpdest
         push 1
         sub
         dup 0
         push @loop
         swap 0
         jumpi
         stop",
    )
    .unwrap();
    let schedule = GasSchedule::default();
    c.bench_function("vm/loop_1000", |b| {
        b.iter(|| {
            let mut db = AccountDb::new();
            let mut env = ExecEnv {
                db: &mut db,
                contract: Address::from_index(1),
                caller: Address::from_index(2),
                callvalue: 0,
                input: &[],
                timestamp_us: 0,
                height: 0,
            };
            Vm::new(&schedule, 10_000_000)
                .run(black_box(&code), &mut env)
                .unwrap()
        })
    });
}

fn bench_token_ops(c: &mut Criterion) {
    let schedule = GasSchedule::default();
    let alice = Address::from_index(1);
    let bob = Address::from_index(2);
    let ctx = exec::BlockCtx {
        proposer: Address::from_index(9),
        timestamp_us: 0,
        height: 1,
    };

    c.bench_function("vm/token_transfer_tx", |b| {
        b.iter_with_setup(
            || {
                let mut db = AccountDb::new();
                db.credit(&alice, 10_000_000_000);
                let deploy = AccountTx::deploy(alice, stdlib::token(), 0, 10_000_000);
                let token = deploy.contract_address();
                exec::execute_tx(&mut db, &deploy, Hash256::ZERO, &ctx, &schedule);
                let mint = AccountTx::call(
                    alice,
                    token,
                    stdlib::token_mint_input(1_000_000),
                    0,
                    1,
                    1_000_000,
                );
                exec::execute_tx(&mut db, &mint, Hash256::ZERO, &ctx, &schedule);
                (db, token)
            },
            |(mut db, token)| {
                let tx = AccountTx::call(
                    alice,
                    token,
                    stdlib::token_transfer_input(&bob, 5),
                    0,
                    2,
                    1_000_000,
                );
                black_box(exec::execute_tx(
                    &mut db,
                    &tx,
                    Hash256::ZERO,
                    &ctx,
                    &schedule,
                ))
            },
        )
    });

    c.bench_function("vm/greeter_query", |b| {
        let mut db = AccountDb::new();
        db.set_code(&Address::from_index(5), stdlib::greeter());
        b.iter(|| {
            exec::query(
                &mut db,
                &Address::from_index(5),
                &alice,
                black_box(&stdlib::greeter_say_input()),
            )
            .unwrap()
        })
    });
}

criterion_group!(benches, bench_vm_loop, bench_token_ops);
criterion_main!(benches);
