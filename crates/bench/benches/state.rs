//! Criterion benchmarks for the data layer: the authenticated Merkle map
//! against a plain `HashMap` baseline (the "state structure" ablation from
//! DESIGN.md §5 — what the root hash costs), plus account-db operations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_crypto::Address;
use dcs_state::{AccountDb, MerkleMap};
use std::collections::HashMap;
use std::hint::black_box;

fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
    (i.to_le_bytes().to_vec(), (i * 7).to_le_bytes().to_vec())
}

fn bench_merkle_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_map");
    group.sample_size(20);
    for n in [1_000u64, 10_000] {
        group.bench_with_input(BenchmarkId::new("insert_all", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = MerkleMap::new();
                for i in 0..n {
                    let (k, v) = kv(i);
                    m.insert(k, v);
                }
                black_box(m.root())
            })
        });
        // Ablation baseline: the same inserts into a plain HashMap measure
        // the price of authentication.
        group.bench_with_input(BenchmarkId::new("hashmap_baseline", n), &n, |b, &n| {
            b.iter(|| {
                let mut m: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
                for i in 0..n {
                    let (k, v) = kv(i);
                    m.insert(k, v);
                }
                black_box(m.len())
            })
        });
        let map: MerkleMap = (0..n).map(kv).collect();
        group.bench_with_input(BenchmarkId::new("get", n), &map, |b, map| {
            let (k, _) = kv(n / 2);
            b.iter(|| map.get(black_box(&k)))
        });
        group.bench_with_input(BenchmarkId::new("prove", n), &map, |b, map| {
            let (k, _) = kv(n / 2);
            b.iter(|| map.prove(black_box(&k)).unwrap())
        });
        let (k, _) = kv(n / 2);
        let proof = map.prove(&k).unwrap();
        let root = map.root();
        group.bench_with_input(BenchmarkId::new("verify_proof", n), &proof, |b, proof| {
            b.iter(|| proof.verify(black_box(&root)))
        });
    }
    group.finish();
}

fn bench_account_db(c: &mut Criterion) {
    let mut group = c.benchmark_group("account_db");
    group.sample_size(20);
    group.bench_function("transfer_1k_accounts", |b| {
        b.iter(|| {
            let mut db = AccountDb::new();
            for i in 0..1_000u64 {
                db.credit(&Address::from_index(i), 1_000);
            }
            for i in 0..1_000u64 {
                db.transfer(
                    &Address::from_index(i),
                    &Address::from_index((i + 1) % 1_000),
                    10,
                )
                .unwrap();
            }
            black_box(db.root())
        })
    });
    group.bench_function("snapshot_rollback", |b| {
        let mut db = AccountDb::new();
        for i in 0..1_000u64 {
            db.credit(&Address::from_index(i), 1_000);
        }
        b.iter(|| {
            let snap = db.snapshot();
            for i in 0..100u64 {
                db.transfer(&Address::from_index(i), &Address::from_index(i + 1), 1)
                    .unwrap();
            }
            db.rollback(snap);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_merkle_map, bench_account_db);
criterion_main!(benches);
