//! Criterion benchmarks for the cryptographic substrate: SHA-256
//! throughput, Merkle tree construction and proving, and the WOTS+Merkle
//! signature scheme (the "signature scheme w trade-off" ablation from
//! DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dcs_crypto::{sha256, Hash256, KeyPair, MerkleTree, MultiHasher, Signature, VerifyPool};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

/// Scalar vs 4/8-lane interleaved hashing over the two message shapes the
/// commit path actually hashes: ~100-byte transaction encodings (two blocks
/// each) and 65-byte Merkle pair messages. `lanes/1` is the scalar loop, so
/// the spread between rows is pure instruction-level-parallelism speedup —
/// it needs no extra cores.
fn bench_sha256_lanes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256_lanes");
    let count = 1_024usize;
    let msgs: Vec<Vec<u8>> = (0..count)
        .map(|i| {
            let mut m = vec![0u8; 100];
            m[..8].copy_from_slice(&(i as u64).to_le_bytes());
            m
        })
        .collect();
    let refs: Vec<&[u8]> = msgs.iter().map(Vec::as_slice).collect();
    group.throughput(Throughput::Elements(count as u64));
    for lanes in [1usize, 4, 8] {
        let hasher = MultiHasher::new(lanes);
        group.bench_with_input(BenchmarkId::new("tx_ids/lanes", lanes), &refs, |b, refs| {
            b.iter(|| hasher.hash_many(black_box(refs)))
        });
    }
    let level: Vec<Hash256> = (0..count)
        .map(|i| sha256(&(i as u64).to_le_bytes()))
        .collect();
    for lanes in [1usize, 4, 8] {
        let hasher = MultiHasher::new(lanes);
        group.bench_with_input(
            BenchmarkId::new("merkle_pairs/lanes", lanes),
            &level,
            |b, level| {
                b.iter(|| {
                    let mut out = Vec::new();
                    hasher.hash_pairs_into(0x01, black_box(level), &mut out);
                    out
                })
            },
        );
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [16usize, 256, 4_096] {
        let hashes: Vec<Hash256> = (0..leaves)
            .map(|i| sha256(&(i as u64).to_le_bytes()))
            .collect();
        // `from_leaves` consumes its input, so each iteration needs a fresh
        // Vec; iter_batched keeps that clone out of the timed window.
        group.bench_with_input(BenchmarkId::new("build", leaves), &hashes, |b, hashes| {
            b.iter_batched(
                || hashes.clone(),
                |owned| MerkleTree::from_leaves(black_box(owned)),
                BatchSize::SmallInput,
            )
        });
        let tree = MerkleTree::from_leaves(hashes.clone());
        group.bench_with_input(BenchmarkId::new("prove", leaves), &tree, |b, tree| {
            b.iter(|| tree.prove(black_box(leaves / 2)).unwrap())
        });
        let proof = tree.prove(leaves / 2).unwrap();
        let root = tree.root();
        let leaf = hashes[leaves / 2];
        group.bench_with_input(BenchmarkId::new("verify", leaves), &proof, |b, proof| {
            b.iter(|| proof.verify(black_box(&leaf), black_box(&root)))
        });
    }
    group.finish();
}

/// Serial vs parallel Merkle builds at identical inputs: the `threads/1`
/// rows ARE the serial code path (a one-thread pool maps inline), so any
/// spread between rows is pure parallel speedup. On a single-core host the
/// rows should be near-identical — that is the honest result.
fn bench_merkle_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_parallel");
    let leaves = 16_384usize;
    let hashes: Vec<Hash256> = (0..leaves)
        .map(|i| sha256(&(i as u64).to_le_bytes()))
        .collect();
    group.throughput(Throughput::Elements(leaves as u64));
    for threads in [1usize, 2, 4, 8] {
        let pool = VerifyPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("root/threads", threads),
            &hashes,
            |b, hashes| b.iter(|| dcs_crypto::merkle_root_with(black_box(hashes), &pool)),
        );
        group.bench_with_input(
            BenchmarkId::new("build/threads", threads),
            &hashes,
            |b, hashes| {
                b.iter_batched(
                    || hashes.clone(),
                    |owned| MerkleTree::from_leaves_with(black_box(owned), &pool),
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// Serial vs parallel signature-batch verification — the block-witness
/// workload the verification pipeline exists for.
fn bench_verify_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_batch");
    group.sample_size(10);
    let batch = 16usize;
    let mut kp = KeyPair::generate([7u8; 32], 4);
    let pk = kp.public_key();
    let items: Vec<(dcs_crypto::PublicKey, Hash256, Signature)> = (0..batch)
        .map(|i| {
            let msg = sha256(&(i as u64).to_le_bytes());
            let sig = kp.sign(&msg).expect("capacity 16");
            (pk, msg, sig)
        })
        .collect();
    group.throughput(Throughput::Elements(batch as u64));
    for threads in [1usize, 2, 4, 8] {
        let pool = VerifyPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &items, |b, items| {
            b.iter(|| pool.verify_batch(black_box(items)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("wots");
    group.sample_size(20);
    // Key generation cost grows with 2^height — the capacity/size ablation.
    for height in [2u8, 4, 6] {
        group.bench_with_input(BenchmarkId::new("keygen", height), &height, |b, &h| {
            b.iter(|| KeyPair::generate(black_box([7u8; 32]), h))
        });
    }
    let msg = sha256(b"benchmark message");
    let kp = KeyPair::generate([7u8; 32], 4);
    group.bench_function("sign", |b| {
        b.iter(|| kp.sign_with_index(black_box(&msg), 0).unwrap())
    });
    let sig = kp.sign_with_index(&msg, 0).unwrap();
    let pk = kp.public_key();
    group.bench_function("verify", |b| {
        b.iter(|| pk.verify(black_box(&msg), black_box(&sig)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_sha256_lanes,
    bench_merkle,
    bench_merkle_parallel,
    bench_verify_batch,
    bench_signatures
);
criterion_main!(benches);
