//! Criterion benchmarks for the cryptographic substrate: SHA-256
//! throughput, Merkle tree construction and proving, and the WOTS+Merkle
//! signature scheme (the "signature scheme w trade-off" ablation from
//! DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcs_crypto::{sha256, Hash256, KeyPair, MerkleTree};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1_024, 65_536] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for leaves in [16usize, 256, 4_096] {
        let hashes: Vec<Hash256> =
            (0..leaves).map(|i| sha256(&(i as u64).to_le_bytes())).collect();
        group.bench_with_input(
            BenchmarkId::new("build", leaves),
            &hashes,
            |b, hashes| b.iter(|| MerkleTree::from_leaves(black_box(hashes.clone()))),
        );
        let tree = MerkleTree::from_leaves(hashes.clone());
        group.bench_with_input(BenchmarkId::new("prove", leaves), &tree, |b, tree| {
            b.iter(|| tree.prove(black_box(leaves / 2)).unwrap())
        });
        let proof = tree.prove(leaves / 2).unwrap();
        let root = tree.root();
        let leaf = hashes[leaves / 2];
        group.bench_with_input(
            BenchmarkId::new("verify", leaves),
            &proof,
            |b, proof| b.iter(|| proof.verify(black_box(&leaf), black_box(&root))),
        );
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let mut group = c.benchmark_group("wots");
    group.sample_size(20);
    // Key generation cost grows with 2^height — the capacity/size ablation.
    for height in [2u8, 4, 6] {
        group.bench_with_input(BenchmarkId::new("keygen", height), &height, |b, &h| {
            b.iter(|| KeyPair::generate(black_box([7u8; 32]), h))
        });
    }
    let msg = sha256(b"benchmark message");
    let kp = KeyPair::generate([7u8; 32], 4);
    group.bench_function("sign", |b| {
        b.iter(|| kp.sign_with_index(black_box(&msg), 0).unwrap())
    });
    let sig = kp.sign_with_index(&msg, 0).unwrap();
    let pk = kp.public_key();
    group.bench_function("verify", |b| b.iter(|| pk.verify(black_box(&msg), black_box(&sig))));
    group.finish();
}

criterion_group!(benches, bench_sha256, bench_merkle, bench_signatures);
criterion_main!(benches);
