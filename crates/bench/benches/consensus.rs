//! Criterion benchmarks for consensus machinery: real PoW grinding at low
//! difficulty, attack-race simulation, and whole-network simulation steps
//! per wall-clock second (the simulator's own throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcs_consensus::attack::simulate_double_spend;
use dcs_consensus::pow::mine_real;
use dcs_crypto::{Address, Hash256};
use dcs_ledger::builders;
use dcs_primitives::{BlockHeader, ConsensusKind, Seal};
use dcs_sim::{SimDuration, SimTime};
use std::hint::black_box;

fn bench_real_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("pow_mine_real");
    group.sample_size(20);
    for difficulty in [16u64, 256, 4_096] {
        group.bench_with_input(
            BenchmarkId::from_parameter(difficulty),
            &difficulty,
            |b, &difficulty| {
                let mut nonce = 0u64;
                b.iter(|| {
                    let header = BlockHeader::new(
                        Hash256::ZERO,
                        1,
                        nonce, // vary the header so each iteration regrind
                        Address::from_index(1),
                        Seal::None,
                    );
                    nonce += 1;
                    black_box(mine_real(header, difficulty, 0))
                })
            },
        );
    }
    group.finish();
}

fn bench_attack_sim(c: &mut Criterion) {
    c.bench_function("attack/double_spend_10k_trials", |b| {
        b.iter(|| black_box(simulate_double_spend(0.3, 6, 10_000, 60, 42)))
    });
}

fn bench_network_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_sim");
    group.sample_size(10);
    // One simulated hour of an 8-peer PoW network, no transactions: the
    // simulator's raw event throughput.
    group.bench_function("pow_8_peers_1h", |b| {
        b.iter(|| {
            let mut params = builders::PowParams {
                nodes: 8,
                ..builders::PowParams::default()
            };
            params.chain.consensus = ConsensusKind::ProofOfWork {
                initial_difficulty: 8_000 * 60,
                retarget_window: 0,
                target_interval_us: 60_000_000,
            };
            let mut runner = builders::build_pow(&params, 1);
            runner.run_until(SimTime::ZERO + SimDuration::from_secs(3_600));
            black_box(runner.nodes()[0].core.chain.height())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_real_mining,
    bench_attack_sim,
    bench_network_sim
);
criterion_main!(benches);
