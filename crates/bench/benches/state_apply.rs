//! Criterion benchmarks for batched vs serial state application (E20): the
//! same work routed through the per-write trie path and through the
//! one-pass sorted batch merge. Both paths are bit-identical in roots,
//! receipts, and errors (proptested in `dcs-state`/`dcs-contracts`), so the
//! spread between rows is pure restructuring win — no extra cores involved.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use dcs_contracts::AccountMachine;
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{AccountTx, Block, BlockHeader, GasSchedule, Seal, Transaction};
use dcs_state::{MerkleMap, UtxoSet};
use std::hint::black_box;

/// Building an N-entry authenticated map: N serial root-rewriting inserts
/// vs one sorted `write_batch` merge.
fn bench_merkle_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_apply/merkle_map");
    for n in [256usize, 2_048] {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    (i as u64).to_le_bytes().to_vec(),
                    (i as u64).to_be_bytes().to_vec(),
                )
            })
            .collect();
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("serial", n), &entries, |b, entries| {
            b.iter(|| {
                let mut map = MerkleMap::new();
                for (k, v) in entries {
                    map.insert(k.clone(), v.clone());
                }
                black_box(map.root())
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &entries, |b, entries| {
            b.iter(|| {
                let mut map = MerkleMap::new();
                map.write_batch(
                    entries
                        .iter()
                        .map(|(k, v)| (k.clone(), Some(v.clone())))
                        .collect(),
                );
                black_box(map.root())
            })
        });
        // The commit-path shape: a populated state absorbing one block's
        // worth of updates.
        let mut base = MerkleMap::new();
        for i in 0..8_192u64 {
            base.insert(i.to_le_bytes().to_vec(), i.to_be_bytes().to_vec());
        }
        group.bench_with_input(
            BenchmarkId::new("update/serial", n),
            &entries,
            |b, entries| {
                b.iter_batched(
                    || base.clone(),
                    |mut map| {
                        for (k, v) in entries {
                            map.insert(k.clone(), v.clone());
                        }
                        black_box(map.root())
                    },
                    BatchSize::SmallInput,
                )
            },
        );
        group.bench_with_input(
            BenchmarkId::new("update/batched", n),
            &entries,
            |b, entries| {
                b.iter_batched(
                    || base.clone(),
                    |mut map| {
                        map.write_batch(
                            entries
                                .iter()
                                .map(|(k, v)| (k.clone(), Some(v.clone())))
                                .collect(),
                        );
                        black_box(map.root())
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

/// One block of account transfers through `AccountMachine::apply_block` on
/// both paths. Unsigned with a free gas schedule, so the timed region is
/// execution plus state commitment — the part the batch refactor changed.
fn bench_account_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_apply/account_block");
    group.sample_size(20);
    const SENDERS: usize = 32;
    for txs_per_block in [256usize, 1_024] {
        let senders: Vec<Address> = (0..SENDERS as u64).map(Address::from_index).collect();
        let alloc: Vec<(Address, u64)> = senders.iter().map(|a| (*a, u64::MAX / 2)).collect();
        let mut nonces = vec![0u64; SENDERS];
        let body: Vec<Transaction> = std::iter::once(Transaction::Coinbase {
            to: Address::from_index(999),
            value: 50,
            height: 1,
        })
        .chain((0..txs_per_block).map(|i| {
            let s = i % SENDERS;
            let mut tx = AccountTx::transfer(
                senders[s],
                Address::from_index(10_000 + (i as u64 % 97)),
                1 + i as u64 % 100,
                nonces[s],
            );
            tx.gas_limit = 0;
            tx.gas_price = 0;
            nonces[s] += 1;
            Transaction::Account(tx)
        }))
        .collect();
        let header = BlockHeader::new(Hash256::ZERO, 1, 1, Address::from_index(999), Seal::None);
        let block = Block::new(header, body);
        group.throughput(Throughput::Elements(txs_per_block as u64));
        for (label, serial) in [("serial", true), ("batched", false)] {
            group.bench_with_input(
                BenchmarkId::new(label, txs_per_block),
                &block,
                |b, block| {
                    b.iter_batched(
                        || {
                            let mut m = AccountMachine::with_alloc(&alloc);
                            m.schedule = GasSchedule::free();
                            m.serial_apply = serial;
                            m
                        },
                        |mut m| {
                            use dcs_chain::StateMachine;
                            black_box(m.apply_block(block).expect("valid block"))
                        },
                        BatchSize::SmallInput,
                    )
                },
            );
        }
    }
    group.finish();
}

/// One block of UTXO spends through the set: a serial `apply` loop vs one
/// `apply_batch` staged-validate-then-merge pass.
fn bench_utxo_apply(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_apply/utxo_block");
    group.sample_size(20);
    for spends in [256usize, 1_024] {
        let mut base = UtxoSet::new();
        let txs: Vec<Transaction> = (0..spends)
            .map(|i| {
                let coin = base.mint(Address::from_index(i as u64), 100);
                Transaction::Utxo(dcs_primitives::UtxoTx {
                    inputs: vec![dcs_primitives::TxIn {
                        prev_tx: coin.tx,
                        index: coin.index,
                        auth: None,
                    }],
                    outputs: vec![dcs_primitives::TxOut {
                        value: 90,
                        recipient: Address::from_index(70_000 + i as u64),
                    }],
                })
            })
            .collect();
        let ids: Vec<Hash256> = Transaction::batch_ids(&txs);
        group.throughput(Throughput::Elements(spends as u64));
        group.bench_with_input(BenchmarkId::new("serial", spends), &txs, |b, txs| {
            b.iter_batched(
                || base.clone(),
                |mut set| {
                    for tx in txs {
                        black_box(set.apply(tx).expect("valid spend"));
                    }
                    set
                },
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("batched", spends), &txs, |b, txs| {
            b.iter_batched(
                || base.clone(),
                |mut set| {
                    black_box(set.apply_batch(txs, &ids, false).expect("valid spends"));
                    set
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_merkle_map,
    bench_account_apply,
    bench_utxo_apply
);
criterion_main!(benches);
