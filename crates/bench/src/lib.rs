//! The experiment harness: one function per experiment in DESIGN.md's
//! index (E1–E17 plus the F2 figure demo), each regenerating the table that
//! backs one of the paper's quantitative claims. The `expt` binary drives
//! them; EXPERIMENTS.md records paper-vs-measured.
//!
//! Every experiment takes a [`Scale`] so CI can smoke-test the full harness
//! quickly while `expt --full` produces the publication-scale numbers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod heartbeat;
pub mod rss;
pub mod table;

/// How big to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment: for CI and iteration.
    Quick,
    /// The numbers recorded in EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// Scales an integer parameter down in quick mode.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
