//! Churn experiment: E18 (crash/restart fault injection with catch-up
//! recovery — the dependability axis under node churn).

use crate::table::Table;
use crate::Scale;
use dcs_chain::NullMachine;
use dcs_consensus::{pbft::PbftNode, pow::PowNode};
use dcs_faults::FaultSchedule;
use dcs_ledger::{builders, install_faults, metrics, workload::Workload};
use dcs_net::{NodeId, Runner};
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime};

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// E18: a PBFT consortium keeps committing through `f` crashed replicas
/// (view change replaces the dead leader), and a crashed-then-restarted
/// node — PBFT replica or PoW miner — rebuilds from its block store and
/// catches up to the canonical tip via the locator sync protocol.
pub fn e18_churn(scale: Scale) {
    println!("\nE18 — dcs-faults: crash/restart churn with catch-up recovery");
    println!("Dependability under churn (§2.3): consensus must survive fail-stop crashes");
    println!("within its fault budget, and a restarted node must rejoin — rebuild its");
    println!("chain from durable storage, sync the blocks it missed, and resume. Both");
    println!("halves are scripted as a deterministic fault schedule, so the run is as");
    println!("reproducible as a fault-free one.\n");

    pbft_leader_crash(scale);
    pow_miner_churn(scale);
}

/// PBFT n=4 (f=1): crash the view-0 leader mid-run; the three survivors
/// still hold a 2f+1 quorum, fire a view change, and keep committing. The
/// restarted replica adopts the working view and catches up.
fn pbft_leader_crash(scale: Scale) {
    let horizon = scale.pick(60u64, 180);
    let crash = horizon / 6;
    let restart = horizon / 2;
    let params = builders::PbftParams {
        nodes: 4,
        ..Default::default()
    };
    let mut runner = builders::build_pbft(&params, 18);
    let submitted = Workload::transfers(20.0, SimDuration::from_secs(horizon - 5), 50)
        .inject(runner.net_mut(), 181);

    let schedule = FaultSchedule::new()
        .crash_at(at(crash), NodeId(0))
        .restart_at(at(restart), NodeId(0));
    let mut driver = install_faults(&runner, schedule);

    let mut table = Table::new(&["phase", "t (s)", "survivor height", "node0 height", "view"]);
    let mut snapshot = |runner: &Runner<PbftNode<NullMachine>>, phase: &str, t: u64| {
        let survivor = runner.nodes()[1].core.chain.height();
        let node0 = runner.nodes()[0].core.chain.height();
        let view = runner.nodes()[1].view();
        table.row(vec![
            phase.to_string(),
            format!("{t}"),
            format!("{survivor}"),
            format!("{node0}"),
            format!("{view}"),
        ]);
        (survivor, node0)
    };

    driver.run_until(&mut runner, at(crash));
    let (h_crash, _) = snapshot(&runner, "leader crashed", crash);
    driver.run_until(&mut runner, at(restart));
    let (h_restart, _) = snapshot(&runner, "node 0 restarts", restart);
    driver.run_until(&mut runner, at(horizon));
    let (h_end, node0_end) = snapshot(&runner, "end of run", horizon);
    println!("{table}");

    let view_changes = runner.nodes()[1].view_changes;
    let node0 = &runner.nodes()[0].core;
    let result = metrics::collect(runner.nodes(), &submitted, SimDuration::from_secs(horizon));
    let stats = runner.net().stats();
    println!(
        "survivors committed {} blocks while the leader was down (view_changes={}),",
        h_restart - h_crash,
        view_changes,
    );
    println!(
        "node 0 caught up to height {node0_end}/{h_end} (catchup_rounds={}, sync_retries={}),",
        node0.catchup_rounds, result.sync_retries,
    );
    println!(
        "fabric: {} crashes, {} restarts, {} deliveries + {} timers suppressed.",
        stats.crashes, stats.restarts, stats.suppressed_deliveries, stats.suppressed_timers,
    );
    println!(
        "agreement at confirmation depth: {} | {result}\n",
        result.replicas_agree,
    );
}

/// PoW, 4 miners: one crashes, misses a stretch of blocks, restarts, and
/// syncs the gap from its peers while mining resumes on the caught-up tip.
fn pow_miner_churn(scale: Scale) {
    let horizon = scale.pick(120u64, 600);
    let crash = horizon / 4;
    let restart = horizon / 2;
    let mut params = builders::PowParams {
        nodes: 4,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 4_000 * 5, // 4 kH/s network, ~5 s blocks
        retarget_window: 0,
        target_interval_us: 5_000_000,
    };
    let mut runner = builders::build_pow(&params, 19);
    let submitted = Workload::transfers(5.0, SimDuration::from_secs(horizon - 10), 30)
        .inject(runner.net_mut(), 191);

    let schedule = FaultSchedule::new()
        .crash_at(at(crash), NodeId(3))
        .restart_at(at(restart), NodeId(3));
    let mut driver = install_faults(&runner, schedule);

    let mut table = Table::new(&["phase", "t (s)", "reference height", "node3 height"]);
    let mut snapshot = |runner: &Runner<PowNode<NullMachine>>, phase: &str, t: u64| {
        let reference = runner.nodes()[0].core.chain.height();
        let node3 = runner.nodes()[3].core.chain.height();
        table.row(vec![
            phase.to_string(),
            format!("{t}"),
            format!("{reference}"),
            format!("{node3}"),
        ]);
        (reference, node3)
    };

    driver.run_until(&mut runner, at(crash));
    snapshot(&runner, "node 3 crashes", crash);
    driver.run_until(&mut runner, at(restart));
    let (_, n3_restart) = snapshot(&runner, "node 3 restarts", restart);
    driver.run_until(&mut runner, at(horizon));
    let (h_end, n3_end) = snapshot(&runner, "end of run", horizon);
    println!("{table}");

    let node3 = &runner.nodes()[3].core;
    let result = metrics::collect(runner.nodes(), &submitted, SimDuration::from_secs(horizon));
    let stats = runner.net().stats();
    println!(
        "node 3 recovered {} blocks after restart ({} → {}, reference {h_end});",
        n3_end - n3_restart,
        n3_restart,
        n3_end,
    );
    println!(
        "catchup_rounds={}, sync_retries={}, suppressed deliveries={}, timers={}.",
        node3.catchup_rounds,
        result.sync_retries,
        stats.suppressed_deliveries,
        stats.suppressed_timers,
    );
    println!(
        "agreement at confirmation depth: {} | {result}",
        result.replicas_agree,
    );
    println!("Expected shape: survivor throughput dips only by the dead miner's hash");
    println!("power, and the restarted node converges to the canonical chain within a");
    println!("few catch-up pages — dependable churn, not a permanent fork.");
}
