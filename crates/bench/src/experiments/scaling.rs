//! Scalability experiments: E7 (sharding), E8 (payment channels), E10
//! (light clients / bootstrap).

use crate::table::Table;
use crate::Scale;
use dcs_chain::{Chain, NullMachine};
use dcs_crypto::{Address, Hash256, MerkleTree};
use dcs_primitives::{AccountTx, Block, BlockHeader, ChainConfig, Seal, SealedTx, Transaction};
use dcs_scale::channels::ChannelNetwork;
use dcs_scale::light::LightClient;
use dcs_scale::sharding::{ShardedLedger, Transfer};
use dcs_sim::Rng;

/// E7: throughput scales with shard count, degraded by cross-shard traffic
/// (§5.4, \[38\]).
pub fn e7_sharding(scale: Scale) {
    println!("\nE7 — sharding: speedup vs shard count and cross-shard fraction");
    println!("Paper claim: \"the performance of the system can be improved by introducing");
    println!("parallelism, such as sharding\" (§5.4). Speedup = sequential block slots /");
    println!("max per-shard slots; block capacity 100 tx.\n");
    let n_txs = scale.pick(2_000usize, 20_000);
    let accounts: Vec<Address> = (0..500).map(Address::from_index).collect();
    let alloc: Vec<(Address, u64)> = accounts.iter().map(|a| (*a, 1_000_000)).collect();
    let mut rng = Rng::seed_from(7);
    let transfers: Vec<Transfer> = (0..n_txs)
        .map(|_| Transfer {
            from: accounts[rng.below(500) as usize],
            to: accounts[rng.below(500) as usize],
            value: 1,
        })
        .collect();

    let mut table = Table::new(&[
        "shards",
        "cross-shard",
        "parallel slots",
        "total slots",
        "speedup",
    ]);
    for k in [1usize, 2, 4, 8, 16] {
        let mut ledger = ShardedLedger::new(k, 100, &alloc);
        ledger.fund_mint_pools(u64::MAX / 4);
        for t in &transfers {
            ledger.submit(*t).expect("mint pools prefunded");
        }
        ledger.seal_all();
        let stats = ledger.stats();
        table.row(vec![
            format!("{k}"),
            format!(
                "{:.0}%",
                100.0 * stats.cross_shard as f64 / (stats.cross_shard + stats.intra_shard) as f64
            ),
            format!("{}", stats.parallel_slots),
            format!("{}", stats.total_slots),
            format!("{:.2}x", ledger.speedup()),
        ]);
    }
    println!("{table}");

    // Cross-shard fraction sweep at k=8: locality is what sharding sells.
    let mut sweep = Table::new(&["target cross fraction", "speedup (k=8)"]);
    for &target in &[0.0f64, 0.25, 0.5, 1.0] {
        let k = 8;
        let mut ledger = ShardedLedger::new(k, 100, &alloc);
        ledger.fund_mint_pools(u64::MAX / 4);
        let mut rng = Rng::seed_from(77);
        // Bucket accounts by home shard for locality control.
        let mut by_shard: Vec<Vec<Address>> = vec![Vec::new(); k];
        for a in &accounts {
            by_shard[ShardedLedger::home_shard(a, k)].push(*a);
        }
        for _ in 0..n_txs {
            let from = accounts[rng.below(500) as usize];
            let home = ShardedLedger::home_shard(&from, k);
            let to = if rng.chance(target) {
                // Force cross-shard.
                let other = (home + 1 + rng.below(k as u64 - 1) as usize) % k;
                by_shard[other][rng.below(by_shard[other].len() as u64) as usize]
            } else {
                by_shard[home][rng.below(by_shard[home].len() as u64) as usize]
            };
            ledger
                .submit(Transfer { from, to, value: 1 })
                .expect("mint pools prefunded");
        }
        ledger.seal_all();
        sweep.row(vec![
            format!("{:.0}%", target * 100.0),
            format!("{:.2}x", ledger.speedup()),
        ]);
    }
    println!("{sweep}");
    println!("Expected shape: near-linear speedup for local traffic, eroding as the");
    println!("cross-shard fraction rises (each crossing costs a slot on both shards).");
}

/// E8: payment channels offload the chain (§5.4, \[30\]).
pub fn e8_payment_channels(scale: Scale) {
    println!("\nE8 — off-chain payment channels vs on-chain transfers");
    println!("Paper claim: \"offload transactions outside the blockchain, as in the");
    println!("Lightning network\" (§5.2/§5.4). Hub-and-spoke network, real WOTS-signed");
    println!("channel updates, every payment routed.\n");
    let payments = scale.pick(300u64, 2_000);
    let key_height = scale.pick(10u8, 13);

    let mut net = ChannelNetwork::new(10);
    let spokes: Vec<Address> = (0..6)
        .map(|i| net.add_party([i + 1; 32], key_height, 10_000_000))
        .collect();
    let hub = net.add_party([99u8; 32], key_height, 100_000_000);
    for &s in &spokes {
        net.open_channel(hub, s, 2_000_000, 200_000).unwrap();
    }
    let mut rng = Rng::seed_from(8);
    let mut routed = 0u64;
    let mut hops = 0usize;
    for _ in 0..payments {
        let from = spokes[rng.below(6) as usize];
        let to = spokes[rng.below(6) as usize];
        if from == to {
            continue;
        }
        if let Ok(h) = net.pay(from, to, 1 + rng.below(50)) {
            routed += 1;
            hops += h;
        }
    }
    for id in 0..6 {
        net.cooperative_close(id).unwrap();
    }

    let mut table = Table::new(&[
        "strategy",
        "payments",
        "on-chain txs",
        "payments per on-chain tx",
    ]);
    table.row(vec![
        "on-chain transfers".into(),
        format!("{routed}"),
        format!("{routed}"),
        "1.0".into(),
    ]);
    table.row(vec![
        "payment channels".into(),
        format!("{routed}"),
        format!("{}", net.onchain_txs),
        format!("{:.1}", routed as f64 / net.onchain_txs as f64),
    ]);
    println!("{table}");
    println!(
        "(mean route length {:.2} hops; {} off-chain signed updates)",
        hops as f64 / routed as f64,
        net.offchain_updates
    );
    println!("Expected shape: on-chain cost collapses from N to ~(channels + closes),");
    println!("so the per-payment chain footprint shrinks with volume.");
}

fn build_chain(blocks: u64, txs_per_block: usize) -> Chain<NullMachine> {
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let mut chain = Chain::new(genesis, cfg, NullMachine);
    for h in 1..=blocks {
        let txs: Vec<Transaction> = (0..txs_per_block)
            .map(|i| {
                Transaction::Account(AccountTx::transfer(
                    Address::from_index(h * 1_000 + i as u64),
                    Address::from_index(1),
                    h,
                    0,
                ))
            })
            .collect();
        let header = BlockHeader::new(
            chain.tip_hash(),
            h,
            h * 1_000_000,
            Address::from_index(9),
            Seal::Work {
                nonce: h,
                difficulty: 1,
            },
        );
        chain.import(Block::new(header, txs)).expect("valid");
    }
    chain
}

/// E10: light clients verify without downloading the ledger (§2.2), and
/// checkpoints fix the ever-growing bootstrap cost (§5.4).
pub fn e10_light_clients(scale: Scale) {
    println!("\nE10 — download cost: full node vs SPV vs checkpoint bootstrap");
    println!("Paper claim: Merkle proofs give \"fast lookups of transaction inclusion for");
    println!("lightweight clients\" (§2.2); bootstrap needs better than \"a full download of");
    println!("the blockchain\" (§5.4). 20 tx/block.\n");
    let lengths: &[u64] = if scale == Scale::Quick {
        &[100, 500]
    } else {
        &[100, 1_000, 4_000]
    };
    let mut table = Table::new(&[
        "chain length",
        "full download",
        "SPV (headers+proof)",
        "checkpoint (last 100)",
        "SPV saving",
    ]);
    for &blocks in lengths {
        let chain = build_chain(blocks, 20);
        let full_bytes: u64 = chain.canonical()[1..]
            .iter()
            .map(|h| chain.tree().get(h).unwrap().block().encoded_len() as u64)
            .sum();

        // SPV from genesis: all headers + one inclusion proof.
        let header = |height: u64| {
            chain
                .tree()
                .get(&chain.canonical_at(height).unwrap())
                .unwrap()
                .header()
                .clone()
        };
        let headers: Vec<_> = (1..=blocks).map(header).collect();
        let mut spv = LightClient::new(header(0));
        spv.sync(&headers).expect("headers link");
        let target = blocks / 2;
        let block = chain
            .tree()
            .get(&chain.canonical_at(target).unwrap())
            .unwrap()
            .block();
        let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
        let proof = MerkleTree::from_leaves(leaves.clone()).prove(3).unwrap();
        assert!(spv.verify_inclusion(&leaves[3], target, &proof).unwrap());

        // Checkpoint: trust a recent header, sync the last 100 only.
        let cp_base = blocks.saturating_sub(100);
        let mut checkpoint = LightClient::from_checkpoint(header(cp_base));
        let recent: Vec<_> = (cp_base + 1..=blocks).map(header).collect();
        checkpoint.sync(&recent).expect("headers link");

        table.row(vec![
            format!("{blocks}"),
            format!("{:.2} MB", full_bytes as f64 / 1e6),
            format!("{:.3} MB", spv.bytes_downloaded as f64 / 1e6),
            format!("{:.4} MB", checkpoint.bytes_downloaded as f64 / 1e6),
            format!("{:.0}x", full_bytes as f64 / spv.bytes_downloaded as f64),
        ]);
    }
    println!("{table}");
    println!("Expected shape: SPV cost is the ~constant-factor header chain; checkpoint");
    println!("cost is flat in chain length — full download grows linearly and dwarfs both.");
}

/// E19: the sharded parallel event engine at 10,000-node scale (§5.4).
/// Flood-gossip rounds over a 10k-peer overlay, driven serially and at 2
/// and 8 engine workers: identical delivery times at every worker count
/// (asserted), wall-clock events/s per configuration reported.
pub fn e19_sharded_engine(scale: Scale) {
    use dcs_net::{Ctx, Gossiper, LatencyModel, NetConfig, NodeId, Protocol, Runner, Topology};
    use dcs_sim::{SimDuration, SimTime};
    use std::time::Instant;

    println!("\nE19 — sharded event engine: 10k-node gossip at 1/2/8 workers");
    println!("Paper claim: scalability work needs experiments at realistic network sizes");
    println!("(§5.4); the engine partitions peers across a worker pool in conservative");
    println!("time windows while preserving the bit-identical same-seed contract.");
    println!("Speedup tracks the host's cores — on a single-core machine expect ~1.0x.\n");

    /// Flood gossip with periodic re-seeding: every `origins` node starts a
    /// fresh rumor each round on a timer, so the queue stays populated for
    /// several windows.
    struct Flood {
        id: NodeId,
        gossip: Gossiper,
        rounds: u64,
        origin: bool,
        heard: u64,
        last_heard: SimTime,
    }

    impl Flood {
        fn rumor(&self, round: u64) -> Hash256 {
            let mut buf = [0u8; 16];
            buf[..8].copy_from_slice(&self.id.0.to_le_bytes());
            buf[8..].copy_from_slice(&round.to_le_bytes());
            dcs_crypto::sha256(&buf)
        }
    }

    impl Protocol for Flood {
        type Msg = Hash256;

        fn on_start(&mut self, ctx: &mut Ctx<'_, Hash256>) {
            if self.origin {
                ctx.set_timer(SimDuration::from_millis(10), 0);
            }
        }

        fn on_message(&mut self, from: NodeId, msg: Hash256, ctx: &mut Ctx<'_, Hash256>) {
            if self.gossip.first_sight(msg) {
                self.heard += 1;
                self.last_heard = ctx.now;
                ctx.broadcast_except(from, msg, 32);
            }
        }

        fn on_timer(&mut self, round: u64, ctx: &mut Ctx<'_, Hash256>) {
            let rumor = self.rumor(round);
            self.gossip.first_sight(rumor);
            self.heard += 1;
            self.last_heard = ctx.now;
            ctx.broadcast(rumor, 32);
            if round + 1 < self.rounds {
                ctx.set_timer(SimDuration::from_secs(2), round + 1);
            }
        }
    }

    let nodes = scale.pick(10_000usize, 10_000);
    let rounds = scale.pick(3u64, 10);
    let origins = 4usize;
    let run = |workers: usize| {
        let mut runner = Runner::new(
            NetConfig {
                nodes,
                topology: Topology::KRegular { k: 6 },
                latency: LatencyModel::wan(),
                drop_probability: 0.0,
                bandwidth_bytes_per_sec: None,
            },
            42,
            |id| Flood {
                id,
                gossip: Gossiper::new(),
                rounds,
                origin: id.0 % (nodes / origins) == 0,
                heard: 0,
                last_heard: SimTime::ZERO,
            },
        );
        runner.set_shards(workers);
        let t0 = Instant::now();
        let events = runner.run_to_quiescence();
        let wall = t0.elapsed();
        // The observable outcome: every peer's (heard, last_heard) pair.
        let mut fp = Vec::with_capacity(nodes * 16);
        let mut heard_total = 0u64;
        for n in runner.nodes() {
            fp.extend_from_slice(&n.heard.to_le_bytes());
            fp.extend_from_slice(&n.last_heard.as_micros().to_le_bytes());
            heard_total += n.heard;
        }
        assert_eq!(
            heard_total,
            nodes as u64 * origins as u64 * rounds,
            "every rumor must reach every peer"
        );
        (events, dcs_crypto::sha256(&fp), wall)
    };

    let mut table = Table::new(&[
        "workers", "events", "wall", "events/s", "speedup", "outcome",
    ]);
    let mut baseline: Option<(std::time::Duration, Hash256)> = None;
    for workers in [1usize, 2, 8] {
        let (events, digest, wall) = run(workers);
        let (serial_wall, serial_digest) = baseline.get_or_insert((wall, digest));
        assert_eq!(
            digest, *serial_digest,
            "{workers} workers must reproduce the serial outcome bit-for-bit"
        );
        table.row(vec![
            format!("{workers}"),
            format!("{events}"),
            format!("{:.2} s", wall.as_secs_f64()),
            format!("{:.0}", events as f64 / wall.as_secs_f64()),
            format!("{:.2}x", serial_wall.as_secs_f64() / wall.as_secs_f64()),
            "identical".into(),
        ]);
    }
    println!("{table}");
    println!("Expected shape: identical outcome digests in every configuration (the");
    println!("engine's determinism contract), with events/s scaling toward the host's");
    println!("core count as workers are added.");
}

/// E15: the parallel block-verification pipeline — witness-verification
/// throughput vs worker count, and the mempool-warmed signature cache at
/// block connect.
pub fn e15_verify_pipeline(scale: Scale) {
    use dcs_consensus::Mempool;
    use dcs_crypto::{KeyPair, VerifyPipeline};
    use dcs_primitives::{TxAuth, TxIn, TxOut, UtxoTx};
    use dcs_state::UtxoSet;
    use std::sync::Arc;
    use std::time::Instant;

    println!("\nE15 — parallel block-verification pipeline + cross-layer signature cache");
    println!("Witness signature checks are pure functions of (key, msg, sig): they fan out");
    println!("across worker threads in the stateless prevalidation phase, while the state");
    println!("transition stays serial and deterministic. threads=1 is the exact serial path.");
    println!("Speedup tracks the host's cores — on a single-core machine expect ~1.0x.\n");

    // A multi-tx block of signed transfers: one key per spender, every tx
    // independently signed (the workload block connect actually sees).
    let n_txs = scale.pick(8usize, 32);
    let mut genesis = UtxoSet::with_witness_verification();
    let mut txs: Vec<Transaction> = Vec::with_capacity(n_txs);
    for i in 0..n_txs {
        let mut seed = [0u8; 32];
        seed[..8].copy_from_slice(&(i as u64).to_le_bytes());
        seed[31] = 0xE1;
        let mut kp = KeyPair::generate(seed, 1);
        let op = genesis.mint(kp.address(), 100);
        let mut utx = UtxoTx {
            inputs: vec![TxIn {
                prev_tx: op.tx,
                index: op.index,
                auth: None,
            }],
            outputs: vec![TxOut {
                value: 100,
                recipient: kp.address(),
            }],
        };
        let signing = Transaction::Utxo(utx.clone()).signing_hash();
        let sig = kp.sign(&signing).expect("fresh key");
        utx.inputs[0].auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        txs.push(Transaction::Utxo(utx));
    }

    // Reference: the fully serial path (per-input verify inside apply).
    let mut serial_set = genesis.clone();
    let t0 = Instant::now();
    for tx in &txs {
        serial_set.apply(tx).expect("valid block");
    }
    let serial_time = t0.elapsed();
    let reference_root = serial_set.commitment();

    let mut table = Table::new(&["threads", "connect time", "sigs/s", "speedup", "root"]);
    table.row(vec![
        "serial".into(),
        format!("{:.2} ms", serial_time.as_secs_f64() * 1e3),
        format!("{:.0}", n_txs as f64 / serial_time.as_secs_f64()),
        "1.00x".into(),
        "ref".into(),
    ]);
    for threads in [1usize, 2, 4, 8] {
        // No cache here: isolate the parallelism effect.
        let pipeline = VerifyPipeline::new(threads, 0);
        let mut set = genesis.clone();
        let t0 = Instant::now();
        let checked = UtxoSet::prevalidate_witnesses(&txs, &pipeline).expect("valid block");
        for tx in &txs {
            set.apply_prevalidated(tx).expect("prevalidated block");
        }
        let elapsed = t0.elapsed();
        assert_eq!(checked, n_txs);
        let root_ok = set.commitment() == reference_root;
        table.row(vec![
            format!("{threads}"),
            format!("{:.2} ms", elapsed.as_secs_f64() * 1e3),
            format!("{:.0}", n_txs as f64 / elapsed.as_secs_f64()),
            format!("{:.2}x", serial_time.as_secs_f64() / elapsed.as_secs_f64()),
            if root_ok {
                "identical".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    println!("{table}");

    // Cross-layer cache flow: mempool admission verifies (and caches) each
    // witness; block connect then prevalidates entirely from the cache.
    let pipeline = Arc::new(VerifyPipeline::new(0, 8192));
    let mut pool = Mempool::with_admission(n_txs * 2, Arc::clone(&pipeline));
    for tx in &txs {
        assert!(
            pool.insert(SealedTx::new(Arc::new(tx.clone()))),
            "valid tx admitted"
        );
    }
    let admitted = pipeline.stats().cache.expect("cache configured");
    let body: Vec<Transaction> = pool
        .select(n_txs, &std::collections::BTreeSet::new())
        .into_iter()
        .map(|t| (*t.into_tx()).clone())
        .collect();
    let t0 = Instant::now();
    let mut set = genesis.clone();
    UtxoSet::prevalidate_witnesses(&body, &pipeline).expect("warm block");
    for tx in &body {
        set.apply_prevalidated(tx).expect("prevalidated block");
    }
    let warm_time = t0.elapsed();
    let connect = pipeline.stats().cache.expect("cache configured");
    assert_eq!(set.commitment(), reference_root, "warm path root identical");

    let mut cache_table = Table::new(&["phase", "verified", "cache hits", "time"]);
    cache_table.row(vec![
        "mempool admission".into(),
        format!("{}", admitted.misses),
        format!("{}", admitted.hits),
        "-".into(),
    ]);
    cache_table.row(vec![
        "block connect".into(),
        format!("{}", connect.misses - admitted.misses),
        format!("{}", connect.hits - admitted.hits),
        format!("{:.2} ms", warm_time.as_secs_f64() * 1e3),
    ]);
    println!("{cache_table}");
    println!("{}", dcs_ledger::VerificationReport::collect(&pipeline));
    println!("Expected shape: block connect verifies 0 signatures — every witness was");
    println!("checked once at admission and the warm cache answers the rest; the state");
    println!("root is bit-identical to the serial path in every configuration.");
}

/// E16: the zero-copy, pluggable data layer — one shared `Arc<Block>`
/// stream imported into an archival node and a pruning node side by side.
/// Consensus outcomes must be identical; resident memory must not be.
pub fn e16_pruned_store(scale: Scale) {
    use dcs_chain::PrunedStore;
    use std::sync::Arc;
    use std::time::Instant;

    println!("\nE16 — data layer: archival vs pruned store, zero-copy imports");
    println!("Paper claim: ledger growth makes \"a full download of the blockchain\"");
    println!("untenable (§5.4); the data layer (§4) must let nodes drop old bodies");
    println!("without changing consensus. Same Arc-shared block stream into both");
    println!("backends: identical tips and stats, a fraction of the resident bytes.\n");

    let blocks = scale.pick(400u64, 4_000);
    let txs_per_block = 20usize;
    let keep_depth = 32u64;

    // Build one block stream with periodic near-tip forks (every 10th
    // height carries a 2-block side branch delivered children-first, so the
    // orphan pool and reorg paths both run). Every block is built once and
    // shared: both chains below hold the same allocations.
    let cfg = ChainConfig::bitcoin_like();
    let genesis = dcs_chain::genesis_block(&cfg);
    let make = |parent: &Block, salt: u64, txs: usize| {
        let body: Vec<Transaction> = (0..txs)
            .map(|i| {
                Transaction::Account(AccountTx::transfer(
                    Address::from_index(salt * 1_000 + i as u64),
                    Address::from_index(1),
                    salt,
                    0,
                ))
            })
            .collect();
        Arc::new(Block::new(
            BlockHeader::new(
                parent.hash(),
                parent.header.height + 1,
                salt * 1_000_000,
                Address::from_index(9),
                Seal::Work {
                    nonce: salt,
                    difficulty: 1,
                },
            ),
            body,
        ))
    };
    let mut stream: Vec<Arc<Block>> = Vec::new();
    let mut tip = Arc::new(genesis.clone());
    for h in 1..=blocks {
        let b = make(&tip, h, txs_per_block);
        stream.push(Arc::clone(&b));
        if h % 10 == 0 {
            // A losing fork off the previous tip, delivered out of order.
            let f1 = make(&tip, h + 500_000, txs_per_block / 2);
            let f2 = make(&f1, h + 600_000, txs_per_block / 2);
            stream.push(f2);
            stream.push(f1);
        }
        tip = b;
    }

    let run = |label: &str, imports: &mut dyn FnMut(&Arc<Block>)| {
        let t0 = Instant::now();
        for b in &stream {
            imports(b);
        }
        (label.to_string(), t0.elapsed())
    };

    let mut archival = Chain::new(genesis.clone(), cfg.clone(), NullMachine);
    let (_, t_archival) = run("archival", &mut |b| {
        let _ = archival.import(Arc::clone(b));
    });
    let mut pruned = Chain::with_store(
        genesis.clone(),
        cfg.clone(),
        NullMachine,
        PrunedStore::new(keep_depth),
    );
    let (_, t_pruned) = run("pruned", &mut |b| {
        let _ = pruned.import(Arc::clone(b));
    });

    // Consensus equivalence: the retention policy changed nothing above it.
    assert_eq!(archival.tip_hash(), pruned.tip_hash(), "identical tips");
    assert_eq!(archival.canonical(), pruned.canonical());
    assert_eq!(archival.canon_stats(), pruned.canon_stats());
    assert_eq!(archival.stats(), pruned.stats());

    // Zero-copy evidence: both stores hold the *same allocation* the
    // stream does. Probe the tip — resident in both backends (old bodies
    // are pruned from the pruning node, so only the archival store still
    // shares those).
    let probe = &tip;
    let shared_archival = archival.tree().get(&probe.hash()).expect("stored");
    let shared_pruned = pruned.tree().get(&probe.hash()).expect("stored");
    assert!(
        Arc::ptr_eq(shared_archival.block(), probe) && Arc::ptr_eq(shared_pruned.block(), probe),
        "import must share the Arc, not deep-copy the block"
    );
    assert!(Arc::strong_count(probe) >= 3, "stream + both chains");

    let a = archival.tree().store_stats();
    let p = pruned.tree().store_stats();
    let mut table = Table::new(&[
        "backend",
        "blocks",
        "bodies resident",
        "bodies pruned",
        "resident body bytes",
        "import time",
    ]);
    for (label, stats, t) in [("archival", a, t_archival), ("pruned", p, t_pruned)] {
        table.row(vec![
            label.into(),
            format!("{}", stats.blocks),
            format!("{}", stats.bodies_resident),
            format!("{}", stats.bodies_pruned),
            format!("{:.2} KB", stats.resident_body_bytes as f64 / 1e3),
            format!("{:.2} ms", t.as_secs_f64() * 1e3),
        ]);
    }
    println!("{table}");

    let saving = 1.0 - p.resident_body_bytes as f64 / a.resident_body_bytes.max(1) as f64;
    println!(
        "reorgs={} orphan connects exercised; pruned keeps {} of {} bodies → {:.0}% of body bytes freed",
        archival.stats().reorgs,
        p.bodies_resident,
        p.blocks,
        saving * 100.0,
    );
    assert!(
        p.resident_body_bytes * 4 < a.resident_body_bytes,
        "pruned store must hold materially fewer body bytes at this length"
    );
    println!("Expected shape: identical tips, canonical chains, and incremental stats");
    println!("from both backends; the pruned node's resident bytes are bounded by the");
    println!("retention window while the archival node grows linearly with the chain.");
}

/// E22: committed throughput vs shard count on the live beacon-coordinated
/// stack (§5.4, \[38\]): real shard sequencers, a beacon verifying lock
/// receipts, cross-shard mints, and a light client — all over the simulated
/// network. The speedup metric is the critical path: the busiest shard's
/// block-slot count, since shards seal in parallel but a transfer mix only
/// completes when its slowest shard does. At two shards the same workload is
/// replayed on the sharded event engine and the run digests are asserted
/// identical — the CI scale-smoke digest gate.
pub fn e22_beacon_shards(scale: Scale) {
    use dcs_scale::beacon::{BeaconNet, BeaconParams};
    use dcs_sim::SimTime;

    println!("\nE22 — beacon-coordinated shards: committed throughput vs shard count");
    println!("Paper claim: \"the performance of the system can be improved by introducing");
    println!("parallelism, such as sharding\" (§5.4), here on the full wired stack:");
    println!("lock/receipt cross-shard transfers, timeout refunds armed, SPV light client");
    println!("attached. Speedup = serial critical-path slots / k-shard critical-path slots.\n");

    let n_txs = scale.pick(600u64, 4_000);
    let accounts: u64 = 64;
    let alloc: Vec<(Address, u64)> = (0..accounts)
        .map(|i| (Address::from_index(i), 10_000_000))
        .collect();
    let mut rng = Rng::seed_from(22);
    let transfers: Vec<Transfer> = (0..n_txs)
        .map(|_| Transfer {
            from: Address::from_index(rng.below(accounts)),
            to: Address::from_index(rng.below(accounts)),
            value: 1 + rng.below(50),
        })
        .collect();

    let run = |shards: usize, workers: usize| {
        let params = BeaconParams {
            shards,
            ..BeaconParams::default()
        };
        let mut net = BeaconNet::new(&params, 2022, &alloc);
        net.set_engine_workers(workers);
        for (i, t) in transfers.iter().enumerate() {
            net.submit_at(SimTime::from_micros(2_000 + i as u64 * 700), *t);
        }
        net.run();
        net
    };

    let interval_s = BeaconParams::default().block_interval.as_micros() as f64 / 1e6;
    let mut table = Table::new(&[
        "shards",
        "completed",
        "cross-shard",
        "critical slots",
        "eff. tps",
        "speedup",
        "events",
    ]);
    let mut serial_slots = 0u64;
    for k in [1usize, 2, 4] {
        let net = run(k, 1);
        let stats = net.stats();
        assert_eq!(stats.rejected, 0, "amply funded mix must fully commit");
        assert_eq!(stats.refunded, 0, "no beacon faults in this experiment");
        let critical = (0..k).map(|i| net.shard(i).stats.blocks).max().unwrap_or(0);
        if k == 1 {
            serial_slots = critical;
        }
        table.row(vec![
            format!("{k}"),
            format!("{}", stats.intra + stats.minted),
            format!("{}", stats.minted),
            format!("{critical}"),
            format!(
                "{:.0}",
                (stats.intra + stats.minted) as f64 / (critical as f64 * interval_s)
            ),
            format!("{:.2}x", serial_slots as f64 / critical.max(1) as f64),
            format!("{}", stats.events),
        ]);
    }
    println!("{table}");

    // The digest gate: the 2-shard run must be bit-identical on the sharded
    // event engine. CI runs this experiment for exactly this assertion.
    let serial = run(2, 1);
    let engine = run(2, 8);
    assert_eq!(
        serial.digest(),
        engine.digest(),
        "2-shard run must replay bit-identically on the 8-worker engine"
    );
    println!("digest gate: 2-shard run identical at 1 and 8 engine workers ✓");
    println!("Expected shape: critical-path slots fall as the mix spreads over more");
    println!("shards, so effective throughput rises — eroded by the cross-shard fraction,");
    println!("whose lock+mint pairs occupy a slot on both sides of every crossing.");
}

/// E23: light-client sync cost vs a full node on the live stack (§3.3,
/// \[37\]): the light client follows shard 0 through the beacon network —
/// checkpoint bootstrap, consecutive headers, SPV inclusion proofs — while
/// the full node replays every block body. Reports bytes for both roles as
/// the chain grows.
pub fn e23_light_sync(scale: Scale) {
    use dcs_crypto::codec::Encode;
    use dcs_scale::beacon::{BeaconNet, BeaconParams};
    use dcs_sim::SimTime;

    println!("\nE23 — light-client sync bytes vs full replay");
    println!("Paper claim: lightweight IoT participants \"do not need to download the");
    println!("whole blockchain\" (§3.3): headers plus SPV proofs suffice to verify");
    println!("inclusion. Both roles measured on the same live sharded run.\n");

    let mut table = Table::new(&[
        "submitted",
        "shard height",
        "full bytes",
        "light bytes",
        "light/full",
        "proofs verified",
    ]);
    let sweeps: &[u64] = if matches!(scale, Scale::Quick) {
        &[150, 600]
    } else {
        &[150, 600, 2_400]
    };
    for &n_txs in sweeps {
        let params = BeaconParams {
            shards: 2,
            // Retain every body so the full-replay baseline is exact.
            keep_depth: 1_000_000,
            ..BeaconParams::default()
        };
        let alloc: Vec<(Address, u64)> = (0..64)
            .map(|i| (Address::from_index(i), 10_000_000))
            .collect();
        let mut net = BeaconNet::new(&params, 23, &alloc);
        let mut rng = Rng::seed_from(23);
        for i in 0..n_txs {
            let t = Transfer {
                from: Address::from_index(rng.below(64)),
                to: Address::from_index(rng.below(64)),
                value: 1 + rng.below(50),
            };
            net.submit_at(SimTime::from_micros(2_000 + i * 800), t);
        }
        net.run();

        let shard = net.shard(0).chain();
        let mut full_bytes = 0u64;
        for h in 1..=shard.height() {
            let hash = shard.canonical_at(h).expect("canonical chain is dense");
            let stored = shard.tree().get(&hash).expect("retained");
            full_bytes += stored
                .body()
                .expect("keep_depth retains every body")
                .encoded()
                .len() as u64;
        }
        let light = net.light();
        let client = light.client().expect("light client bootstraps");
        table.row(vec![
            format!("{n_txs}"),
            format!("{}", shard.height()),
            format!("{:.1} KB", full_bytes as f64 / 1e3),
            format!("{:.1} KB", client.bytes_downloaded as f64 / 1e3),
            format!(
                "{:.1}%",
                100.0 * client.bytes_downloaded as f64 / full_bytes.max(1) as f64
            ),
            format!("{}", light.proofs_verified),
        ]);
        assert!(
            light.proofs_verified > 0,
            "the light client must verify real SPV proofs"
        );
    }
    println!("{table}");
    println!("Expected shape: the light client's share falls as blocks fatten — headers");
    println!("are constant-size while bodies grow with the transaction load — dropping");
    println!("under 10% once blocks carry realistic batches (the tier-1 E23 gate).");
}
