//! Application/contract experiments: E11 (the gas model of §2.5) and F2
//! (the Fig. 2 block-structure walkthrough).

use crate::table::Table;
use dcs_contracts::{exec, stdlib, AccountMachine, Word};
use dcs_crypto::{sha256, Address, Hash256, MerkleTree};
use dcs_primitives::{AccountTx, Block, BlockHeader, GasSchedule, Seal, Transaction, TxPayload};

/// E11: per-operation gas — writes cost, reads are free, fees go to the
/// proposer (§2.5's Solidity example, measured).
pub fn e11_gas_costs() {
    println!("\nE11 — gas costs per contract operation");
    println!("Paper claim (§2.5): state-changing functions \"require a transaction to");
    println!("execute and cost some gas, which is given to the miner\"; constant functions");
    println!("are free. Default schedule (storage write 5000, read 200, op 3).\n");
    let schedule = GasSchedule::default();
    let alice = Address::from_index(1);
    let bob = Address::from_index(2);
    let proposer = Address::from_index(999);
    let ctx = exec::BlockCtx {
        proposer,
        timestamp_us: 0,
        height: 1,
    };
    let mut machine = AccountMachine::with_alloc(&[(alice, 10_000_000_000)]);
    let db = &mut machine.db;
    let mut nonce = 0u64;
    let mut table = Table::new(&["operation", "status", "gas used", "fee to proposer"]);

    let run = |db: &mut dcs_state::AccountDb, name: &str, tx: AccountTx, table: &mut Table| {
        let r = exec::execute_tx(db, &tx, Hash256::ZERO, &ctx, &schedule);
        table.row(vec![
            name.into(),
            if r.status.is_success() {
                "ok".into()
            } else {
                "failed".into()
            },
            format!("{}", r.gas_used),
            format!("{}", r.fee_paid),
        ]);
        tx.contract_address()
    };

    // Plain transfer.
    run(
        db,
        "plain transfer",
        AccountTx::transfer(alice, bob, 100, {
            nonce += 1;
            nonce - 1
        }),
        &mut table,
    );
    // Deployments.
    let greeter = run(
        db,
        "deploy greeter",
        AccountTx::deploy(
            alice,
            stdlib::greeter(),
            {
                nonce += 1;
                nonce - 1
            },
            10_000_000,
        ),
        &mut table,
    );
    let token = run(
        db,
        "deploy token",
        AccountTx::deploy(
            alice,
            stdlib::token(),
            {
                nonce += 1;
                nonce - 1
            },
            10_000_000,
        ),
        &mut table,
    );
    let notary = run(
        db,
        "deploy notary",
        AccountTx::deploy(
            alice,
            stdlib::notary(),
            {
                nonce += 1;
                nonce - 1
            },
            10_000_000,
        ),
        &mut table,
    );
    // Calls.
    run(
        db,
        "greeter.setGreeting (1 sstore + log)",
        AccountTx::call(
            alice,
            greeter,
            stdlib::greeter_set_input("hello"),
            0,
            {
                nonce += 1;
                nonce - 1
            },
            1_000_000,
        ),
        &mut table,
    );
    run(
        db,
        "token.mint (1 sload + 1 sstore)",
        AccountTx::call(
            alice,
            token,
            stdlib::token_mint_input(100_000),
            0,
            {
                nonce += 1;
                nonce - 1
            },
            1_000_000,
        ),
        &mut table,
    );
    run(
        db,
        "token.transfer (3 sload + 2 sstore)",
        AccountTx::call(
            alice,
            token,
            stdlib::token_transfer_input(&bob, 10),
            0,
            {
                nonce += 1;
                nonce - 1
            },
            1_000_000,
        ),
        &mut table,
    );
    run(
        db,
        "notary.register",
        AccountTx::call(
            alice,
            notary,
            stdlib::notary_register_input(&sha256(b"deed")),
            0,
            {
                nonce += 1;
                nonce - 1
            },
            1_000_000,
        ),
        &mut table,
    );
    // A reverting call still burns its gas.
    run(
        db,
        "notary.register duplicate (reverts)",
        AccountTx::call(
            alice,
            notary,
            stdlib::notary_register_input(&sha256(b"deed")),
            0,
            {
                nonce += 1;
                nonce - 1
            },
            1_000_000,
        ),
        &mut table,
    );
    // Data anchoring: priced per byte.
    let mut anchor = AccountTx::transfer(alice, Address::ZERO, 0, {
        nonce += 1;
        nonce - 1
    });
    anchor.payload = TxPayload::Data(vec![0u8; 256]);
    anchor.gas_limit = 100_000;
    run(db, "anchor 256 B of data", anchor, &mut table);

    // The free read (§2.5's `say()`).
    let greeting =
        exec::query(db, &greeter, &alice, &stdlib::greeter_say_input()).expect("say runs");
    table.row(vec![
        "greeter.say() — constant, off-chain".into(),
        "ok".into(),
        "0".into(),
        "0".into(),
    ]);
    println!("{table}");
    println!(
        "say() returned {:?}; proposer accumulated {} in fees.",
        Word(greeting.try_into().expect("one word")).to_trimmed_string(),
        db.balance(&proposer)
    );
    println!("Expected shape: writes ≫ reads ≫ arithmetic; failures still pay; reads free.");
}

/// F2: Figure 2 made concrete — the block structure with its Merkle tree,
/// previous-hash link, and an SPV proof.
pub fn f2_block_structure() {
    println!("\nF2 — the Fig. 2 block structure, materialized");
    let txs: Vec<Transaction> = (0..4)
        .map(|i| {
            Transaction::Account(AccountTx::transfer(
                Address::from_index(i),
                Address::from_index(i + 10),
                100 * (i + 1),
                0,
            ))
        })
        .collect();
    let parent = sha256(b"block N-1");
    let header = BlockHeader::new(
        parent,
        42,
        1_000_000,
        Address::from_index(7),
        Seal::Work {
            nonce: 0xdead_beef,
            difficulty: 1 << 20,
        },
    );
    let block = Block::new(header, txs);

    println!("Block N (height {}):", block.header.height);
    println!("  previous hash : {}", block.header.parent);
    println!(
        "  nonce         : {:#x} (difficulty {})",
        match block.header.seal {
            Seal::Work { nonce, .. } => nonce,
            _ => 0,
        },
        match block.header.seal {
            Seal::Work { difficulty, .. } => difficulty,
            _ => 0,
        }
    );
    println!("  tree root hash: {}", block.header.tx_root);
    println!("  block hash    : {}", block.hash());
    let leaves: Vec<Hash256> = block.txs.iter().map(Transaction::id).collect();
    for (i, leaf) in leaves.iter().enumerate() {
        println!("    tx[{i}] {leaf}");
    }
    let tree = MerkleTree::from_leaves(leaves.clone());
    assert_eq!(tree.root(), block.header.tx_root);
    let proof = tree.prove(2).expect("index in range");
    println!(
        "SPV: proof for tx[2] has {} siblings ({} bytes) and verifies: {}",
        proof.siblings().len(),
        proof.encoded_len(),
        proof.verify(&leaves[2], &block.header.tx_root)
    );
    // Tampering with the body breaks the committed root.
    let mut tampered = block.clone();
    tampered.txs[1] = Transaction::Account(AccountTx::transfer(
        Address::from_index(99),
        Address::from_index(98),
        1,
        0,
    ));
    println!(
        "tampering with tx[1] keeps the header root valid? {}",
        tampered.verify_tx_root()
    );
}
