//! Observability experiment: E17 (commit-latency breakdown from lifecycle
//! spans, block propagation CDF, gossip hop counts, Perfetto export).

use crate::table::Table;
use crate::Scale;
use dcs_ledger::{builders, collect_traces, install_tracing, workload::Workload};
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime, Summary};
use dcs_trace::{export, Timelines, TraceConfig};
use std::path::Path;

fn summarize(samples: &[u64]) -> Summary {
    let mut s = Summary::new();
    for v in samples {
        s.record(*v as f64 / 1_000.0); // µs → ms
    }
    s
}

fn stage_row(name: &str, mut s: Summary) -> Vec<String> {
    vec![
        name.to_string(),
        format!("{}", s.count()),
        format!("{:.1}", s.mean()),
        format!("{:.1}", s.median()),
        format!("{:.1}", s.percentile(95.0)),
        format!("{:.1}", s.max()),
    ]
}

/// E17: every commit-latency number the suite reports decomposes into
/// traced lifecycle stages, and the raw trace exports to Perfetto.
pub fn e17_latency_breakdown(scale: Scale) {
    println!("\nE17 — dcs-trace: commit-latency breakdown from lifecycle spans");
    println!("Dependability needs explainable latency: the end-to-end commit time of §2.7");
    println!("decomposes into submit→admit (gossip+admission), admit→included (mempool");
    println!("wait), and included→committed (confirmation build-up), measured on one");
    println!("reference peer so the stages share a clock and sum to the total.\n");

    let mut params = builders::PowParams {
        nodes: scale.pick(8usize, 16),
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: params.nodes as u64 * 1_000 * 5, // ~5 s blocks
        retarget_window: 16,
        target_interval_us: 5_000_000,
    };
    let horizon = scale.pick(200u64, 1_200);
    let mut runner = builders::build_pow(&params, 17);
    // The default 64 Ki ring is sized for always-on tracing; a full-scale
    // analysis run wants the complete stream, so size the buffers to the
    // run (the net tracer alone carries every gossip send).
    let cfg = TraceConfig::full().with_buffer_cap(scale.pick(1 << 16, 1 << 20));
    install_tracing(&mut runner, &cfg);
    let submitted = Workload::transfers(2.0, SimDuration::from_secs(horizon - 50), 30)
        .inject(runner.net_mut(), 99);
    runner.run_until(SimTime::ZERO + SimDuration::from_secs(horizon));

    let mut traces = collect_traces(&runner);
    let timelines = Timelines::build(traces.records(), 0);
    let stages = timelines.stage_samples();

    let mut table = Table::new(&["stage", "txs", "mean ms", "p50 ms", "p95 ms", "max ms"]);
    table.row(stage_row(
        "submit → admitted",
        summarize(&stages.propagation_us),
    ));
    table.row(stage_row(
        "admitted → included",
        summarize(&stages.mempool_wait_us),
    ));
    table.row(stage_row(
        "included → committed",
        summarize(&stages.confirmation_us),
    ));
    table.row(stage_row(
        "total commit",
        summarize(&stages.total_commit_us),
    ));
    println!("{table}");
    println!(
        "{} txs submitted, {} tx spans stitched, {} block spans, counters: {} recorded.",
        submitted.len(),
        timelines.txs.len(),
        timelines.blocks.len(),
        traces.counters().recorded,
    );

    // Block propagation CDF across peers: per-peer summaries merged into
    // one — the cross-collector merge the metrics layer exists for.
    let mut merged = Summary::new();
    for node in 0..params.nodes as u32 {
        let mut per_peer = Summary::new();
        for span in timelines.blocks.values() {
            if let (Some(p), Some(at)) = (span.proposed_us, span.first_seen.get(&node)) {
                per_peer.record(at.saturating_sub(p) as f64 / 1_000.0);
            }
        }
        merged.merge(&per_peer);
    }
    let mut cdf = Table::new(&["propagation percentile", "delay ms"]);
    for (label, p) in [("p50", 50.0), ("p90", 90.0), ("p99", 99.0)] {
        cdf.row(vec![
            label.to_string(),
            format!("{:.1}", merged.percentile(p)),
        ]);
    }
    println!("{cdf}");

    let hops = timelines.hop_histogram();
    let mut hop_table = Table::new(&["gossip hop", "sightings"]);
    for (h, n) in hops.iter().enumerate() {
        hop_table.row(vec![format!("{h}"), format!("{n}")]);
    }
    println!("{hop_table}");

    // Export: the raw stream as JSONL and the span model as a Chrome
    // trace_event file loadable in Perfetto (one track per node, one async
    // slice per tx/block lifecycle).
    let out_dir = Path::new("target/e17");
    match std::fs::create_dir_all(out_dir)
        .and_then(|()| {
            std::fs::write(
                out_dir.join("trace.jsonl"),
                export::to_jsonl(traces.records()),
            )
        })
        .and_then(|()| {
            std::fs::write(
                out_dir.join("trace.json"),
                export::to_chrome_trace(traces.records(), &timelines),
            )
        }) {
        Ok(()) => println!(
            "Wrote {} records to target/e17/trace.jsonl and target/e17/trace.json (Perfetto).",
            traces.records().len()
        ),
        Err(e) => println!("Export skipped (write failed: {e})."),
    }
    println!("Expected shape: admission is gossip-fast (ms), mempool wait is a fraction");
    println!("of the block interval, and confirmation dominates at depth × interval.");
}
