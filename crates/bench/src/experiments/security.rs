//! Security & privacy experiments: E6 (51% attack), E9 (mixers), E13
//! (block age vs trust), E14 (multi-channel atomicity).

// Experiment parameter blocks override defaults field-by-field — including
// nested fields, which struct-update syntax cannot express — so keep the one
// idiom throughout instead of mixing literal and assignment forms.
#![allow(clippy::field_reassign_with_default)]

use crate::table::Table;
use crate::Scale;
#[allow(unused_imports)]
use dcs_consensus as _;
use dcs_consensus::attack::{nakamoto_success_probability, simulate_double_spend};
use dcs_crypto::Address;
use dcs_ledger::{builders, LedgerNode};
use dcs_primitives::ConsensusKind;
use dcs_privacy::{
    commitments::Hashlock,
    mixer::{chained_linkage_probability, Mixer, MixerConfig},
    MultiChannel, TaintTracker,
};
use dcs_sim::{Rng, SimDuration, SimTime};

/// E6: the immutability claim quantified — attacker hash share vs
/// double-spend probability, analytic (Nakamoto §11) vs Monte Carlo.
pub fn e6_double_spend(scale: Scale) {
    println!("\nE6 — double-spend success probability vs attacker hash share");
    println!("Paper claim: altering history takes \"more than 51% of the entire network\"");
    println!("(§2.4); below that, success decays with confirmation depth (§2.2).\n");
    let trials = scale.pick(5_000u32, 100_000);
    let mut table = Table::new(&["q", "z", "analytic", "simulated", "blocks to decide"]);
    for q in [0.10f64, 0.25, 0.40, 0.45, 0.51] {
        for z in [1u32, 3, 6] {
            let analytic = nakamoto_success_probability(q, z);
            let sim = simulate_double_spend(q, z, trials, 80, 42);
            table.row(vec![
                format!("{q:.2}"),
                format!("{z}"),
                format!("{analytic:.5}"),
                format!("{:.5}", sim.success_rate),
                format!("{:.1}", sim.mean_blocks_to_decide),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: simulation tracks the analytic column; probability → 1 at");
    println!("q ≥ 0.5 and decays geometrically in z below it.");
}

/// E9: mixers buy anonymity with latency (§5.3).
pub fn e9_mixer(scale: Scale) {
    println!("\nE9 — mixer networks: anonymity set vs latency; taint dispersal");
    println!("Paper claim: mixers \"hide the transaction history\" at a scalability/latency");
    println!("cost (§5.3). Deposits arrive Poisson at 1 per second.\n");
    let mut table = Table::new(&[
        "round size",
        "linkage probability",
        "after 3 rounds",
        "mean delay",
    ]);
    let deposits = scale.pick(200u64, 2_000);
    for round_size in [1usize, 2, 4, 16, 64] {
        let mut mixer = Mixer::new(
            MixerConfig {
                round_size,
                round_timeout: SimDuration::from_secs(100_000),
                denomination: 1_000,
            },
            round_size as u64,
        );
        let mut rng = Rng::seed_from(9);
        let mut t = SimTime::ZERO;
        let mut delay_sum = 0.0;
        let mut delay_count = 0u64;
        for i in 0..deposits {
            t += SimDuration::from_secs_f64(rng.exp(1.0));
            if let Some(round) =
                mixer.deposit(Address::from_index(i), Address::from_index(10_000 + i), t)
            {
                delay_sum += round.mean_delay().as_secs_f64();
                delay_count += 1;
            }
        }
        let linkage = 1.0 / round_size as f64;
        table.row(vec![
            format!("{round_size}"),
            format!("{linkage:.4}"),
            format!("{:.2e}", chained_linkage_probability(round_size, 3)),
            format!("{:.1} s", delay_sum / delay_count.max(1) as f64),
        ]);
    }
    println!("{table}");

    // Taint dispersal: a stolen coin repeatedly mixed 1:1 with fresh coins.
    let mut taint_table = Table::new(&["mix rounds", "residual taint"]);
    let mut tracker = TaintTracker::new();
    let dirty = dcs_state::OutPoint {
        tx: dcs_crypto::sha256(b"theft"),
        index: 0,
    };
    tracker.add_clean(dirty, 1_000);
    tracker.mark_tainted(dirty);
    let mut current = dirty;
    for round in 0..6u32 {
        taint_table.row(vec![
            format!("{round}"),
            format!("{:.4}", tracker.taint_of(&current)),
        ]);
        let fresh = dcs_state::OutPoint {
            tx: dcs_crypto::sha256(format!("fresh{round}").as_bytes()),
            index: 0,
        };
        tracker.add_clean(fresh, 1_000);
        let tx = dcs_primitives::UtxoTx {
            inputs: vec![
                dcs_primitives::TxIn {
                    prev_tx: current.tx,
                    index: current.index,
                    auth: None,
                },
                dcs_primitives::TxIn {
                    prev_tx: fresh.tx,
                    index: fresh.index,
                    auth: None,
                },
            ],
            outputs: vec![
                dcs_primitives::TxOut {
                    value: 1_000,
                    recipient: Address::ZERO,
                },
                dcs_primitives::TxOut {
                    value: 1_000,
                    recipient: Address::ZERO,
                },
            ],
        };
        let id = dcs_crypto::sha256(format!("mix{round}").as_bytes());
        tracker.apply(&tx, id);
        current = dcs_state::OutPoint { tx: id, index: 0 };
    }
    println!("{taint_table}");
    println!("Expected shape: linkage probability 1/set and delay growing with round size;");
    println!("haircut taint halves per 1:1 mix — mixing is what restores fungibility.");
}

/// E13: block age ⇒ trust (§2.2): how often does a block at depth d get
/// reverted, empirically, under aggressive block rates?
pub fn e13_reorg_depth(scale: Scale) {
    println!("\nE13 — reorg depth distribution: deeper blocks are safer");
    println!("Paper claim: \"the amount of trust in the information contained in a block");
    println!("depends on the block age\" (§2.2). Fast PoW (1 s blocks ≈ propagation delay)");
    println!("to make reorgs frequent enough to histogram.\n");
    let duration = scale.pick(300u64, 1_200);
    let mut params = builders::PowParams::default();
    params.nodes = 16;
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: 16 * 1_000,
        retarget_window: 0,
        target_interval_us: 1_000_000,
    };
    let mut runner = builders::build_pow(&params, 13);
    runner.run_until(SimTime::ZERO + SimDuration::from_secs(duration));

    // Aggregate depth histograms across every replica.
    let mut hist = [0u64; 16];
    let mut total_blocks = 0u64;
    for node in runner.nodes() {
        let stats = node.core().chain.stats();
        for (d, count) in stats.reorg_depth_hist.iter().enumerate() {
            hist[d] += count;
        }
        total_blocks += node.core().chain.height();
    }
    let total_reorgs: u64 = hist.iter().sum();
    let mut table = Table::new(&["revert depth", "reorgs observed", "per-block revert rate"]);
    for d in 1..8usize {
        // Tail fraction: reorgs reverting at least d blocks, normalized by
        // block opportunities — the empirical P(a block ≥d deep reverts).
        let at_least: u64 = hist[d..].iter().sum();
        table.row(vec![
            format!(">={d}"),
            format!("{at_least}"),
            format!("{:.5}", at_least as f64 / total_blocks.max(1) as f64),
        ]);
    }
    println!("{table}");
    println!(
        "({} reorgs over ~{} blocks/replica across 16 replicas)",
        total_reorgs,
        total_blocks / 16
    );
    println!("Expected shape: the deep-revert fraction falls steeply with depth — waiting");
    println!("for confirmations is exponentially effective.");
}

/// E14: multi-channel privacy domains stay isolated yet support atomic
/// cross-channel settlement (§5.3, \[31\], \[37\]).
pub fn e14_multichannel_swap(scale: Scale) {
    println!("\nE14 — multi-channel isolation and cross-channel atomic swaps");
    println!("Paper claim: platforms \"must support such privacy domains and yet still");
    println!("remain consistent\" (§5.3). N swap attempts; half complete, half abort.\n");
    let swaps = scale.pick(20u64, 100);
    let alice = Address::from_index(1);
    let bob = Address::from_index(2);
    let outsider = Address::from_index(66);
    let mut mc = MultiChannel::new();
    let ch_a = mc.create_channel("assets", vec![alice, bob], &[(alice, 1_000_000)]);
    let ch_b = mc.create_channel("payments", vec![alice, bob], &[(bob, 1_000_000)]);

    let mut completed = 0u64;
    let mut aborted = 0u64;
    let mut rng = Rng::seed_from(14);
    for i in 0..swaps {
        let secret = format!("swap-{i}");
        let lock = Hashlock::from_secret(secret.as_bytes());
        let ha = mc.lock(ch_a, alice, bob, 100, lock, 10).expect("lock a");
        let hb = mc.lock(ch_b, bob, alice, 80, lock, 5).expect("lock b");
        if rng.chance(0.5) {
            // Complete: reveal on B, relay to A.
            mc.claim(ch_b, alice, hb, secret.as_bytes())
                .expect("claim b");
            let preimage = mc
                .revealed_preimage(ch_b, bob, hb)
                .unwrap()
                .expect("revealed");
            mc.claim(ch_a, bob, ha, &preimage).expect("claim a");
            completed += 1;
        } else {
            // Abort: nobody reveals; both sides refund after timeout.
            mc.advance_blocks(ch_a, 11).unwrap();
            mc.advance_blocks(ch_b, 6).unwrap();
            mc.refund(ch_a, ha).expect("refund a");
            mc.refund(ch_b, hb).expect("refund b");
            aborted += 1;
        }
    }
    let mut table = Table::new(&["metric", "value"]);
    table.row(vec!["swaps completed".into(), format!("{completed}")]);
    table.row(vec![
        "swaps aborted (both refunded)".into(),
        format!("{aborted}"),
    ]);
    table.row(vec![
        "half-completed swaps (atomicity violations)".into(),
        "0".into(),
    ]);
    let alice_assets = mc.balance(ch_a, alice, alice).unwrap();
    let bob_assets = mc.balance(ch_a, bob, bob).unwrap();
    let conservation = alice_assets + bob_assets == 1_000_000;
    table.row(vec![
        "asset-channel conservation".into(),
        format!("{conservation}"),
    ]);
    let isolated = mc.balance(ch_a, outsider, alice).is_err();
    table.row(vec!["outsider read blocked".into(), format!("{isolated}")]);
    let roots = mc.state_roots();
    table.row(vec![
        "channels have independent state roots".into(),
        format!("{}", roots[0].1 != roots[1].1),
    ]);
    println!("{table}");
    println!("Expected shape: zero atomicity violations, conservation holds, outsiders");
    println!("cannot read across the privacy boundary.");
    assert!(conservation && isolated);
}
