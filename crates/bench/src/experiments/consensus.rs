//! Consensus experiments: E1 (retargeting pins throughput), E2 (block
//! interval vs forks, longest-chain vs GHOST), E3 (ordering-service
//! throughput), E4 (the DCS matrix), E5 (work per block), E12 (private vs
//! public crossover).

// Experiment parameter blocks override defaults field-by-field — including
// nested fields, which struct-update syntax cannot express — so keep the one
// idiom throughout instead of mixing literal and assignment forms.
#![allow(clippy::field_reassign_with_default)]

use crate::table::Table;
use crate::Scale;
use dcs_ledger::{builders, collect, workload::Workload, LedgerNode, SimResult};
use dcs_net::{LatencyModel, Topology};
use dcs_primitives::{ChainConfig, ConsensusKind, ForkChoice};
use dcs_sim::{SimDuration, SimTime};

fn at(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// Mean inter-block interval and committed tps over the last `window`
/// canonical blocks — the steady-state numbers after retargeting converges.
fn late_window<P: LedgerNode>(nodes: &[P], window: u64) -> (f64, f64) {
    let chain = &nodes[0].core().chain;
    let h = chain.height();
    if h < window + 1 {
        return (f64::NAN, f64::NAN);
    }
    let ts = |height: u64| {
        chain
            .tree()
            .get(&chain.canonical_at(height).expect("height on chain"))
            .expect("stored")
            .header()
            .timestamp_us as f64
            / 1e6
    };
    let span = ts(h) - ts(h - window);
    let mut txs = 0u64;
    for height in (h - window + 1)..=h {
        let hash = chain.canonical_at(height).expect("height on chain");
        txs += chain.tree().get(&hash).expect("stored").block().txs.len() as u64 - 1;
    }
    (span / window as f64, txs as f64 / span)
}

/// E1: Bitcoin's claim (§2.7) — difficulty retargeting pins the block
/// interval, so more hash power does *not* mean more throughput.
pub fn e1_pow_throughput_vs_hashpower(scale: Scale) {
    println!("\nE1 — PoW throughput vs total hash power (retargeting on)");
    println!("Paper claim: Bitcoin stays at 1 block/10 min and ~7 tps no matter how much");
    println!(
        "hash power joins (§2.7). Scaled here to a 60 s target, capacity 420 tx/block → 7 tps.\n"
    );
    let duration = scale.pick(2_000, 20_000);
    // Exponential inter-block times are noisy: average over a wide window
    // of settled blocks at full scale.
    let window = scale.pick(16, 64);
    let mut table = Table::new(&[
        "hash power",
        "final difficulty",
        "late interval (s)",
        "capacity (tps)",
        "committed (tps)",
    ]);
    for multiplier in [1u64, 4, 16, 64] {
        let mut params = builders::PowParams::default();
        params.nodes = 8;
        params.hash_powers = vec![1_000.0 * multiplier as f64];
        params.chain.block_tx_limit = 420;
        params.chain.consensus = ConsensusKind::ProofOfWork {
            initial_difficulty: 8 * 1_000 * 60, // tuned for multiplier 1
            retarget_window: 8,
            target_interval_us: 60_000_000,
        };
        let mut runner = builders::build_pow(&params, 1_000 + multiplier);
        let submitted = Workload::transfers(20.0, SimDuration::from_secs(duration), 100)
            .inject(runner.net_mut(), multiplier);
        runner.run_until(at(duration + 120));
        let (interval, tps) = late_window(runner.nodes(), window);
        let difficulty = runner.nodes()[0].current_difficulty();
        let _ = submitted;
        table.row(vec![
            format!("x{multiplier}"),
            format!("{difficulty}"),
            format!("{interval:.1}"),
            format!("{:.1}", 420.0 / interval),
            format!("{tps:.1}"),
        ]);
    }
    println!("{table}");
    println!("Expected shape: interval ≈ 60 s and capacity ≈ 7 tps in every row.");
}

/// E2: lower block intervals raise the stale/branch rate; GHOST keeps
/// converging where longest-chain suffers (§2.7's Ethereum discussion).
pub fn e2_block_interval_vs_forks(scale: Scale) {
    println!("\nE2 — block interval vs stale rate (longest-chain vs GHOST)");
    println!("Paper claim: cutting block time from 10 min to 10–40 s increases branching;");
    println!("Ethereum mitigates with GHOST (§2.7). Overlay: 16 peers, ~80 ms median latency.\n");
    let blocks = scale.pick(150u64, 400);
    let mut table = Table::new(&[
        "interval",
        "rule",
        "stale rate",
        "reorgs",
        "max depth",
        "agree",
    ]);
    for interval_s in [600u64, 60, 15, 5, 1] {
        for rule in [ForkChoice::LongestChain, ForkChoice::Ghost] {
            let mut params = builders::PowParams::default();
            params.nodes = 16;
            params.hash_powers = vec![1_000.0];
            params.chain = ChainConfig {
                consensus: ConsensusKind::ProofOfWork {
                    initial_difficulty: 16 * 1_000 * interval_s,
                    retarget_window: 0,
                    target_interval_us: interval_s * 1_000_000,
                },
                fork_choice: rule,
                ..ChainConfig::bitcoin_like()
            };
            let mut runner = builders::build_pow(&params, 31 + interval_s);
            runner.run_until(at(interval_s * blocks));
            let result = collect(
                runner.nodes(),
                &std::collections::HashMap::new(),
                SimDuration::from_secs(interval_s * blocks),
            );
            table.row(vec![
                format!("{interval_s} s"),
                format!("{rule:?}"),
                format!("{:.2}%", result.stale_rate * 100.0),
                format!("{}", result.reorgs),
                format!("{}", result.max_reorg_depth),
                format!("{}", result.replicas_agree),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: stale rate grows as the interval shrinks toward the");
    println!("propagation delay; both rules still agree, GHOST by design absorbing uncles.");
}

/// E3: ordering-service throughput vs batch size (§2.7's Hyperledger row:
/// ">10K transactions per second").
pub fn e3_ordering_throughput(scale: Scale) {
    println!("\nE3 — ordering service: throughput and latency vs batch size");
    println!("Paper claim: a permissioned ordering service reaches >10K tps (§2.7, [18]).");
    println!("Offered load saturates the orderer; LAN latency profile.\n");
    let offered = scale.pick(500.0, 4_000.0);
    let duration = scale.pick(10u64, 20);
    let mut table = Table::new(&[
        "batch size",
        "offered (tps)",
        "committed (tps)",
        "mean latency",
        "p95 latency",
        "stale",
    ]);
    for batch in [10usize, 100, 500, 2_000] {
        let mut params = builders::OrderingParams::default();
        params.nodes = 8;
        params.chain.consensus = ConsensusKind::Ordering {
            batch_size: batch,
            batch_timeout_us: 100_000,
            rotate_every: 0,
        };
        params.chain.block_tx_limit = batch.max(2_000);
        let mut runner = builders::build_ordering(&params, 77 + batch as u64);
        let submitted = Workload::transfers(offered, SimDuration::from_secs(duration), 500)
            .inject(runner.net_mut(), batch as u64);
        runner.run_until(at(duration + 30));
        let mut result = collect(runner.nodes(), &submitted, SimDuration::from_secs(duration));
        table.row(vec![
            format!("{batch}"),
            format!("{offered:.0}"),
            format!("{:.0}", result.tps),
            format!("{:.3} s", result.latency.mean()),
            format!("{:.3} s", result.latency.percentile(95.0)),
            format!("{}", result.stale_blocks),
        ]);
    }
    println!("{table}");
    println!("Expected shape: committed ≈ offered (orders of magnitude above PoW),");
    println!("larger batches trade latency for throughput, zero stale blocks always.");
}

fn dcs_row(name: &str, corner: &str, result: &mut SimResult, table: &mut Table) {
    table.row(vec![
        name.to_string(),
        corner.to_string(),
        format!("{:.1}", result.tps),
        format!("{:.1} s", result.latency.mean()),
        format!("{:.1}%", result.stale_rate * 100.0),
        format!("{}", result.reorgs),
        format!("{}", result.replicas_agree),
        format!("{:.2}", result.proposer_gini),
        format!("{}", result.nakamoto),
        format!("{:.1e}", result.work_per_block),
    ]);
}

/// E4: the DCS triangle (§2.7) — every engine picks ≈2 of 3.
pub fn e4_dcs_matrix(scale: Scale) {
    println!("\nE4 — the DCS matrix: one row per consensus engine");
    println!("Paper claim: \"a blockchain system can only simultaneously provide two out");
    println!("of the three properties\" (§2.7). 16 peers, 10 tps offered, WAN latency");
    println!("(consortium engines: LAN + complete graph).\n");
    let duration = scale.pick(300u64, 900);
    let horizon = SimDuration::from_secs(duration);
    let mut table = Table::new(&[
        "engine", "corner", "tps", "latency", "stale", "reorgs", "agree", "gini", "nakamoto",
        "work/blk",
    ]);

    // PoW, Bitcoin-tempo (DC): 60 s blocks.
    {
        let mut params = builders::PowParams::default();
        params.nodes = 16;
        params.chain.block_tx_limit = 420;
        params.chain.consensus = ConsensusKind::ProofOfWork {
            initial_difficulty: 16 * 1_000 * 60,
            retarget_window: 16,
            target_interval_us: 60_000_000,
        };
        let mut runner = builders::build_pow(&params, 11);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 1);
        runner.run_until(at(duration + 120));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("PoW (bitcoin-like)", "DC", &mut r, &mut table);
    }
    // PoW, sub-second blocks (DS): fast but fork-happy.
    {
        let mut params = builders::PowParams::default();
        params.nodes = 16;
        params.chain.block_tx_limit = 420;
        params.chain.consensus = ConsensusKind::ProofOfWork {
            initial_difficulty: 16 * 1_000 / 2, // ~0.5 s blocks
            retarget_window: 0,
            target_interval_us: 500_000,
        };
        let mut runner = builders::build_pow(&params, 12);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 2);
        runner.run_until(at(duration + 60));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("PoW (0.5s blocks)", "DS", &mut r, &mut table);
    }
    // PoS (DC, no work).
    {
        let mut params = builders::PosParams::default();
        params.nodes = 16;
        params.chain.consensus = ConsensusKind::ProofOfStake {
            slot_us: 10_000_000,
        };
        let mut runner = builders::build_pos(&params, 13);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 3);
        runner.run_until(at(duration + 60));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("PoS (10s slots)", "DC", &mut r, &mut table);
    }
    // PoET (DC, no work).
    {
        let mut params = builders::PoetParams::default();
        params.nodes = 16;
        params.chain.consensus = ConsensusKind::ProofOfElapsedTime {
            mean_wait_us: 16 * 10_000_000,
        };
        let mut runner = builders::build_poet(&params, 14);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 4);
        runner.run_until(at(duration + 60));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("PoET (10s mean)", "DC", &mut r, &mut table);
    }
    // PBFT (CS): fast and final but a small closed committee.
    {
        let mut params = builders::PbftParams::default();
        params.nodes = 16;
        let mut runner = builders::build_pbft(&params, 15);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 5);
        runner.run_until(at(duration + 60));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("PBFT (n=16,f=5)", "CS", &mut r, &mut table);
    }
    // Ordering service (CS): one orderer.
    {
        let mut params = builders::OrderingParams::default();
        params.nodes = 16;
        params.net.topology = Topology::Complete;
        let mut runner = builders::build_ordering(&params, 16);
        let submitted = Workload::transfers(10.0, horizon, 200).inject(runner.net_mut(), 6);
        runner.run_until(at(duration + 60));
        let mut r = collect(runner.nodes(), &submitted, horizon);
        dcs_row("Ordering (solo)", "CS", &mut r, &mut table);
    }
    println!("{table}");
    println!("Expected shape: DC rows — agreement with low gini but modest tps and real");
    println!("work (PoW); DS row — throughput with visible stale rate/reorgs; CS rows —");
    println!("fast, forkless, but nakamoto=1-ish (production concentrated).");
}

/// E5: PoS/PoET "substantially reduce the computational efforts" vs PoW
/// (§2.4).
pub fn e5_work_per_block(scale: Scale) {
    println!("\nE5 — consensus work per committed block");
    println!("Paper claim: Proof-of-Stake (and PoET) replace PoW's computational puzzle");
    println!("with cheap lotteries (§2.4, §5.4). Work = simulated hash attempts (PoW) or");
    println!("lottery/TEE draws (PoS/PoET).\n");
    let duration = scale.pick(600u64, 1_800);
    let horizon = SimDuration::from_secs(duration);
    let mut table = Table::new(&["engine", "blocks", "total work", "work/block", "vs PoW"]);
    #[allow(unused_assignments)]
    let mut pow_per_block = 0.0f64;
    // PoW.
    {
        let mut params = builders::PowParams::default();
        params.nodes = 8;
        params.chain.consensus = ConsensusKind::ProofOfWork {
            initial_difficulty: 8_000 * 60,
            retarget_window: 0,
            target_interval_us: 60_000_000,
        };
        let mut runner = builders::build_pow(&params, 21);
        runner.run_until(at(duration));
        let r = collect(runner.nodes(), &std::collections::HashMap::new(), horizon);
        pow_per_block = r.work_per_block;
        table.row(vec![
            "PoW".into(),
            format!("{}", r.canonical_blocks),
            format!("{:.2e}", r.work_expended),
            format!("{:.2e}", r.work_per_block),
            "1.0x".into(),
        ]);
    }
    // PoS.
    {
        let mut params = builders::PosParams::default();
        params.nodes = 8;
        params.chain.consensus = ConsensusKind::ProofOfStake {
            slot_us: 60_000_000,
        };
        let mut runner = builders::build_pos(&params, 22);
        runner.run_until(at(duration));
        let r = collect(runner.nodes(), &std::collections::HashMap::new(), horizon);
        table.row(vec![
            "PoS".into(),
            format!("{}", r.canonical_blocks),
            format!("{:.2e}", r.work_expended),
            format!("{:.2e}", r.work_per_block),
            format!("{:.1e}x", r.work_per_block / pow_per_block),
        ]);
    }
    // PoET.
    {
        let mut params = builders::PoetParams::default();
        params.nodes = 8;
        params.chain.consensus = ConsensusKind::ProofOfElapsedTime {
            mean_wait_us: 8 * 60_000_000,
        };
        let mut runner = builders::build_poet(&params, 23);
        runner.run_until(at(duration));
        let r = collect(runner.nodes(), &std::collections::HashMap::new(), horizon);
        table.row(vec![
            "PoET".into(),
            format!("{}", r.canonical_blocks),
            format!("{:.2e}", r.work_expended),
            format!("{:.2e}", r.work_per_block),
            format!("{:.1e}x", r.work_per_block / pow_per_block),
        ]);
    }
    println!("{table}");
    println!("Expected shape: PoS/PoET expend orders of magnitude less work per block.");
}

/// E12: the paper's §2.1 claim that private (trust-assuming) ledgers
/// outperform public ones — BFT/ordering vs PoW at matched peer counts.
pub fn e12_private_vs_public(scale: Scale) {
    println!("\nE12 — private vs public ledgers at the same peer count");
    println!("Paper claim: \"private ledgers can therefore obtain better performance");
    println!("(throughput and scalability) than their public counterparts in exchange for");
    println!("limited decentralization\" (§2.1). Load 50 tps.\n");
    let duration = scale.pick(60u64, 120);
    let horizon = SimDuration::from_secs(duration);
    let mut table = Table::new(&["n", "engine", "committed (tps)", "mean latency", "nakamoto"]);
    for n in [4usize, 7, 10, 16] {
        // PBFT.
        {
            let mut params = builders::PbftParams::default();
            params.nodes = n;
            let mut runner = builders::build_pbft(&params, 41 + n as u64);
            let submitted =
                Workload::transfers(50.0, horizon, 100).inject(runner.net_mut(), n as u64);
            runner.run_until(at(duration + 30));
            let r = collect(runner.nodes(), &submitted, horizon);
            table.row(vec![
                format!("{n}"),
                "PBFT".into(),
                format!("{:.1}", r.tps),
                format!("{:.2} s", r.latency.mean()),
                format!("{}", r.nakamoto),
            ]);
        }
        // Ordering.
        {
            let mut params = builders::OrderingParams::default();
            params.nodes = n;
            let mut runner = builders::build_ordering(&params, 51 + n as u64);
            let submitted =
                Workload::transfers(50.0, horizon, 100).inject(runner.net_mut(), 2 * n as u64);
            runner.run_until(at(duration + 30));
            let r = collect(runner.nodes(), &submitted, horizon);
            table.row(vec![
                format!("{n}"),
                "Ordering".into(),
                format!("{:.1}", r.tps),
                format!("{:.2} s", r.latency.mean()),
                format!("{}", r.nakamoto),
            ]);
        }
        // PoW at the same n (60 s blocks — the public baseline).
        {
            let mut params = builders::PowParams::default();
            params.nodes = n;
            params.net.latency = LatencyModel::wan();
            params.chain.block_tx_limit = 420;
            params.chain.consensus = ConsensusKind::ProofOfWork {
                initial_difficulty: n as u64 * 1_000 * 60,
                retarget_window: 0,
                target_interval_us: 60_000_000,
            };
            let mut runner = builders::build_pow(&params, 61 + n as u64);
            let submitted =
                Workload::transfers(50.0, horizon, 100).inject(runner.net_mut(), 3 * n as u64);
            runner.run_until(at(duration + 120));
            let r = collect(runner.nodes(), &submitted, horizon);
            table.row(vec![
                format!("{n}"),
                "PoW".into(),
                format!("{:.1}", r.tps),
                format!("{:.2} s", r.latency.mean()),
                format!("{}", r.nakamoto),
            ]);
        }
    }
    println!("{table}");
    println!("Expected shape: PBFT/ordering commit at the offered rate with sub-second");
    println!("latency at every n; PoW commits a fraction with ~minute latency — but with");
    println!("higher nakamoto coefficients (decentralization is what's being bought).");
}
