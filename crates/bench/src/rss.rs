//! Peak resident-set sampling with an honest "unavailable" state.
//!
//! The macro benchmark reports the kernel's `VmHWM` high-water mark.
//! On hosts without a readable `/proc/self/status` (non-Linux, restricted
//! sandboxes) the old code silently reported `0` — indistinguishable from
//! a genuinely tiny process and poisonous to a trajectory of RSS numbers.
//! [`peak_rss_kb`] returns `None` instead, warning once per process on
//! stderr; callers omit the field from their reports.

use std::sync::Once;

static WARN_ONCE: Once = Once::new();

/// The process's peak resident set (`VmHWM`) in kB, or `None` when the
/// value cannot be read on this host. The first failed read per process
/// emits one stderr warning; repeat calls stay silent.
pub fn peak_rss_kb() -> Option<u64> {
    let parsed = std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        });
    if parsed.is_none() {
        WARN_ONCE.call_once(|| {
            eprintln!(
                "dcs-bench: WARNING: peak RSS unavailable (/proc/self/status has no readable VmHWM on this host); omitting peak_rss_kb"
            );
        });
    }
    parsed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linux_reports_a_plausible_high_water_mark() {
        // The suite runs on Linux CI; on such hosts the value must exist
        // and exceed 1 MB — a zero would mean the silent-failure bug is
        // back in some new disguise.
        if std::fs::metadata("/proc/self/status").is_ok() {
            let kb = peak_rss_kb().expect("VmHWM readable on Linux");
            assert!(kb > 1024, "implausible peak RSS: {kb} kB");
        }
    }
}
