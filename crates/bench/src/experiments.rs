//! The experiment suite. Each submodule implements a group of experiments
//! from DESIGN.md's index; [`run`] dispatches by id.

pub mod apps;
pub mod churn;
pub mod consensus;
pub mod observability;
pub mod scaling;
pub mod security;

use crate::Scale;

/// All experiment ids, in presentation order.
pub const ALL: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e22", "e23", "f2",
];

/// Runs one experiment by id, printing its table(s).
///
/// # Panics
///
/// Panics on an unknown id (the CLI validates first).
pub fn run(id: &str, scale: Scale) {
    match id {
        "e1" => consensus::e1_pow_throughput_vs_hashpower(scale),
        "e2" => consensus::e2_block_interval_vs_forks(scale),
        "e3" => consensus::e3_ordering_throughput(scale),
        "e4" => consensus::e4_dcs_matrix(scale),
        "e5" => consensus::e5_work_per_block(scale),
        "e6" => security::e6_double_spend(scale),
        "e7" => scaling::e7_sharding(scale),
        "e8" => scaling::e8_payment_channels(scale),
        "e9" => security::e9_mixer(scale),
        "e10" => scaling::e10_light_clients(scale),
        "e11" => apps::e11_gas_costs(),
        "e12" => consensus::e12_private_vs_public(scale),
        "e13" => security::e13_reorg_depth(scale),
        "e14" => security::e14_multichannel_swap(scale),
        "e15" => scaling::e15_verify_pipeline(scale),
        "e16" => scaling::e16_pruned_store(scale),
        "e17" => observability::e17_latency_breakdown(scale),
        "e18" => churn::e18_churn(scale),
        "e19" => scaling::e19_sharded_engine(scale),
        "e22" => scaling::e22_beacon_shards(scale),
        "e23" => scaling::e23_light_sync(scale),
        "f2" => apps::f2_block_structure(),
        other => panic!("unknown experiment id {other:?}"),
    }
}
