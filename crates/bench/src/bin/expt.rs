//! The experiment driver: regenerates every table in EXPERIMENTS.md.
//!
//! Usage:
//!   expt                 # run everything at quick scale
//!   expt --full          # run everything at publication scale
//!   expt e1 e4 --full    # run selected experiments
//!
//! Run with `--release`; the consensus sweeps simulate hours of network
//! time.

use dcs_bench::{experiments, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let selected: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let ids: Vec<&str> = if selected.is_empty() {
        experiments::ALL.to_vec()
    } else {
        for id in &selected {
            assert!(
                experiments::ALL.contains(id),
                "unknown experiment {id:?}; known: {:?}",
                experiments::ALL
            );
        }
        selected
    };
    println!(
        "dcs-ledger experiment harness — scale: {:?}, experiments: {:?}",
        scale, ids
    );
    for id in ids {
        let start = std::time::Instant::now();
        experiments::run(id, scale);
        println!("[{id} completed in {:.1?} wall-clock]", start.elapsed());
    }
}
