//! The macro benchmark: one seeded PoW-gossip ledger simulation driven at
//! 1, 2, and 8 engine workers, reporting events/s, blocks/s, tx/s, and
//! peak RSS per configuration, written to `BENCH_<rev>.json` at the
//! workspace root (archived from CI).
//!
//! Each configuration runs in a child process (`--one <workers>`) so the
//! kernel's `VmHWM` high-water mark measures that configuration alone. The
//! parent asserts every configuration produced the identical chain digest —
//! the numbers are only comparable because the work is bit-identical — and
//! records `host_cpus`, since the speedup a reader should expect is bounded
//! by the cores the run actually had.
//!
//! Usage:
//!   `macrobench`            — run all configurations, write `BENCH_<rev>.json`
//!   `macrobench --one 8`    — run one configuration, print key=value lines

use dcs_ledger::{builders, collect, workload::Workload};
use dcs_net::Runner;
use dcs_primitives::ConsensusKind;
use dcs_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::Command;
use std::time::Instant;

const NODES: usize = 32;
const SEED: u64 = 7;
const WORKLOAD_SECS: u64 = 60;
const RUN_SECS: u64 = 80;
const WORKLOAD_TPS: f64 = 20.0;
const WORKERS: &[usize] = &[1, 2, 8];

fn build_runner() -> Runner<dcs_consensus::pow::PowNode<dcs_chain::NullMachine>> {
    let mut params = builders::PowParams {
        nodes: NODES,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: NODES as u64 * 1_000 * 5, // ~5 s blocks
        retarget_window: 16,
        target_interval_us: 5_000_000,
    };
    builders::build_pow(&params, SEED)
}

/// One configuration, in-process: returns `key=value` lines for the parent.
fn run_one(workers: usize) -> String {
    let mut runner = build_runner();
    runner.set_shards(workers);
    let submitted = Workload::transfers(WORKLOAD_TPS, SimDuration::from_secs(WORKLOAD_SECS), 30)
        .inject(runner.net_mut(), 99);
    let t0 = Instant::now();
    let events = runner.run_until(SimTime::ZERO + SimDuration::from_secs(RUN_SECS));
    let wall = t0.elapsed();
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(RUN_SECS));
    assert_eq!(result.internal_errors, 0, "macro run must be healthy");

    let mut digest_bytes = Vec::new();
    for node in runner.nodes() {
        for hash in node.core.chain.canonical() {
            digest_bytes.extend_from_slice(hash.as_bytes());
        }
    }
    let digest = dcs_crypto::sha256(&digest_bytes);
    let mut digest_hex = String::new();
    for b in digest.as_bytes() {
        let _ = write!(digest_hex, "{b:02x}");
    }

    let mut out = String::new();
    let _ = writeln!(out, "events={events}");
    let _ = writeln!(out, "wall_us={}", wall.as_micros());
    let _ = writeln!(out, "blocks={}", result.canonical_blocks);
    let _ = writeln!(out, "txs={}", result.committed_txs);
    let _ = writeln!(out, "rss_kb={}", peak_rss_kb());
    let _ = writeln!(out, "digest={digest_hex}");
    out
}

/// The process's peak resident set (`VmHWM`), in kB; 0 when unavailable
/// (non-Linux hosts).
fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(0)
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--one") {
        let workers: usize = args
            .get(1)
            .and_then(|w| w.parse().ok())
            .expect("--one <workers>");
        print!("{}", run_one(workers));
        return;
    }

    let rev = git_rev();
    let host_cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    println!(
        "macrobench: {NODES}-node PoW gossip, {RUN_SECS} sim secs, rev {rev}, {host_cpus} host cpu(s)"
    );

    let exe = std::env::current_exe().expect("current exe path");
    let mut configs = Vec::new();
    let mut digests = Vec::new();
    for &workers in WORKERS {
        let t0 = Instant::now();
        let out = Command::new(&exe)
            .args(["--one", &workers.to_string()])
            .output()
            .expect("spawn child configuration");
        assert!(
            out.status.success(),
            "workers={workers} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let kv: BTreeMap<&str, String> = std::str::from_utf8(&out.stdout)
            .expect("child output is utf-8")
            .lines()
            .filter_map(|l| l.split_once('='))
            .map(|(k, v)| (k, v.to_string()))
            .collect();
        let get = |k: &str| -> u64 { kv[k].parse().unwrap_or(0) };
        let wall_secs = get("wall_us") as f64 / 1e6;
        let (events, blocks, txs) = (get("events"), get("blocks"), get("txs"));
        println!(
            "  workers={workers}: {events} events in {wall_secs:.2}s wall → {:.0} events/s, {:.2} blocks/s, {:.1} tx/s, peak RSS {} kB (child total {:.2}s)",
            events as f64 / wall_secs,
            blocks as f64 / wall_secs,
            txs as f64 / wall_secs,
            get("rss_kb"),
            t0.elapsed().as_secs_f64(),
        );
        digests.push(kv["digest"].clone());
        configs.push(format!(
            "    {{\"workers\": {workers}, \"events\": {events}, \"wall_secs\": {wall_secs:.4}, \"events_per_sec\": {:.1}, \"blocks_per_sec\": {:.3}, \"txs_per_sec\": {:.2}, \"peak_rss_kb\": {}}}",
            events as f64 / wall_secs,
            blocks as f64 / wall_secs,
            txs as f64 / wall_secs,
            get("rss_kb"),
        ));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "every worker count must produce the identical chain digest: {digests:?}"
    );

    let json = format!(
        "{{\n  \"schema\": \"dcs-macrobench/v1\",\n  \"rev\": \"{rev}\",\n  \"host_cpus\": {host_cpus},\n  \"sim\": {{\"nodes\": {NODES}, \"seed\": {SEED}, \"run_secs\": {RUN_SECS}, \"workload_tps\": {WORKLOAD_TPS}}},\n  \"digest\": \"{}\",\n  \"configs\": [\n{}\n  ]\n}}\n",
        digests[0],
        configs.join(",\n"),
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let path = root.join(format!("BENCH_{rev}.json"));
    std::fs::write(&path, &json).expect("write BENCH json");
    println!("wrote {} (digest {})", path.display(), &digests[0][..16]);
}
