//! The macro benchmark (BENCH schema v2): the per-commit trajectory tracker.
//!
//! Three phases, written together to `BENCH_<rev>.json` at the workspace
//! root (archived from CI):
//!
//! 1. **Gossip macro** — one seeded PoW-gossip ledger simulation driven at
//!    1, 2, and 8 engine workers, reporting events/s, blocks/s, tx/s, and
//!    peak RSS per configuration. The sim config is frozen (32 nodes, seed
//!    7, 20 tps for 60 sim-seconds) so `txs_per_sec` is comparable across
//!    the whole `BENCH_*.json` trajectory.
//! 2. **Commit path** — an in-process signed-transaction pipeline: admission
//!    through the sharded mempool (warming the signature cache), block
//!    assembly from cached ids, and per-block state application timed on
//!    both the serial and the batched path. This is where
//!    `verify_cache_hit_rate`, verify batch sizes, and the apply-latency
//!    percentiles (p50/p99, the schema-v2 additions) come from.
//! 3. **Scaled macro** — the same gossip network fed ≥ 1M submitted
//!    transactions at 8 workers, reporting raw admission/gossip throughput.
//!    Skipped in `--smoke` mode.
//!
//! Each gossip configuration runs in a child process (`--one <workers>`) so
//! the kernel's `VmHWM` high-water mark measures that configuration alone.
//! The parent asserts every configuration produced the identical chain
//! digest — the numbers are only comparable because the work is
//! bit-identical — and records `host_cpus`, since the speedup a reader
//! should expect is bounded by the cores the run actually had. When
//! `host_cpus` is lower than the widest requested worker count the JSON
//! carries a warning (and stderr gets one too): such numbers measure
//! oversubscription, not scaling.
//!
//! Usage:
//!   `macrobench`              — full run, write `BENCH_<rev>.json`
//!   `macrobench --smoke`      — CI mode: short gossip runs (1 and 8 workers,
//!                               digest equality still asserted), small
//!                               commit phase, no scaled macro
//!   `macrobench --one N`      — child: one gossip configuration
//!   `macrobench --one-macro`  — child: the scaled macro run

use dcs_bench::heartbeat::{Heartbeat, MACRO_HEARTBEAT_SECS};
use dcs_bench::rss::peak_rss_kb;
use dcs_chain::StateMachine;
use dcs_consensus::Mempool;
use dcs_contracts::AccountMachine;
use dcs_crypto::{Address, KeyPair, VerifyPipeline};
use dcs_ledger::{builders, collect, workload::Workload, VerificationReport};
use dcs_net::Runner;
use dcs_primitives::{
    AccountTx, Block, BlockHeader, ConsensusKind, GasSchedule, Seal, SealedTx, Transaction, TxAuth,
};
use dcs_sim::{SimDuration, SimTime, Summary};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::process::Command;
use std::sync::Arc;
use std::time::Instant;

const NODES: usize = 32;
const SEED: u64 = 7;
const WORKLOAD_SECS: u64 = 60;
const RUN_SECS: u64 = 80;
const WORKLOAD_TPS: f64 = 20.0;
const WORKERS: &[usize] = &[1, 2, 8];

// Smoke (CI) variant of the gossip phase: short, but still two worker
// counts so the digest-equality gate runs on every push.
const SMOKE_WORKLOAD_SECS: u64 = 15;
const SMOKE_RUN_SECS: u64 = 25;
const SMOKE_WORKERS: &[usize] = &[1, 8];

// Scaled macro phase: ≥ 1M submitted transactions through the same overlay.
const MACRO_TPS: f64 = 20_000.0;
const MACRO_WORKLOAD_SECS: u64 = 52; // 20k tps × 52 s = 1.04M submitted
const MACRO_RUN_SECS: u64 = 60;
const MACRO_ACCOUNTS: u64 = 1_000;
const MACRO_WORKERS: usize = 8;

// Commit-path phase: signed transfers, admission → assembly → application.
const COMMIT_SENDERS: usize = 32;
const COMMIT_BLOCKS: usize = 32;
const COMMIT_TXS_PER_BLOCK: usize = 256;
const SMOKE_COMMIT_BLOCKS: usize = 4;
const SMOKE_COMMIT_TXS_PER_BLOCK: usize = 64;

fn build_runner() -> Runner<dcs_consensus::pow::PowNode<dcs_chain::NullMachine>> {
    let mut params = builders::PowParams {
        nodes: NODES,
        hash_powers: vec![1_000.0],
        ..Default::default()
    };
    params.chain.consensus = ConsensusKind::ProofOfWork {
        initial_difficulty: NODES as u64 * 1_000 * 5, // ~5 s blocks
        retarget_window: 16,
        target_interval_us: 5_000_000,
    };
    builders::build_pow(&params, SEED)
}

fn network_digest_hex(
    runner: &Runner<dcs_consensus::pow::PowNode<dcs_chain::NullMachine>>,
) -> String {
    let mut digest_bytes = Vec::new();
    for node in runner.nodes() {
        for hash in node.core.chain.canonical() {
            digest_bytes.extend_from_slice(hash.as_bytes());
        }
    }
    let digest = dcs_crypto::sha256(&digest_bytes);
    let mut digest_hex = String::new();
    for b in digest.as_bytes() {
        let _ = write!(digest_hex, "{b:02x}");
    }
    digest_hex
}

/// One gossip configuration, in-process: returns `key=value` lines for the
/// parent.
fn run_one(workers: usize, smoke: bool) -> String {
    let (workload_secs, run_secs) = if smoke {
        (SMOKE_WORKLOAD_SECS, SMOKE_RUN_SECS)
    } else {
        (WORKLOAD_SECS, RUN_SECS)
    };
    let mut runner = build_runner();
    runner.set_shards(workers);
    let submitted = Workload::transfers(WORKLOAD_TPS, SimDuration::from_secs(workload_secs), 30)
        .inject(runner.net_mut(), 99);
    let t0 = Instant::now();
    let events = runner.run_until(SimTime::ZERO + SimDuration::from_secs(run_secs));
    let wall = t0.elapsed();
    let result = collect(runner.nodes(), &submitted, SimDuration::from_secs(run_secs));
    assert_eq!(result.internal_errors, 0, "macro run must be healthy");

    let mut out = String::new();
    let _ = writeln!(out, "events={events}");
    let _ = writeln!(out, "wall_us={}", wall.as_micros());
    let _ = writeln!(out, "blocks={}", result.canonical_blocks);
    let _ = writeln!(out, "txs={}", result.committed_txs);
    let _ = writeln!(out, "submitted={}", submitted.len());
    if let Some(kb) = peak_rss_kb() {
        let _ = writeln!(out, "rss_kb={kb}");
    }
    let _ = writeln!(out, "digest={}", network_digest_hex(&runner));
    out
}

/// The scaled macro run (≥ 1M submitted transactions), in-process: returns
/// `key=value` lines for the parent.
fn run_macro() -> String {
    let mut runner = build_runner();
    runner.set_shards(MACRO_WORKERS);
    let submitted = Workload::transfers(
        MACRO_TPS,
        SimDuration::from_secs(MACRO_WORKLOAD_SECS),
        MACRO_ACCOUNTS,
    )
    .inject(runner.net_mut(), 99);
    assert!(
        submitted.len() >= 1_000_000,
        "scaled macro must submit ≥ 1M txs, got {}",
        submitted.len()
    );
    // Stepped drive so the heartbeat can report between sim windows: the
    // schedule is identical to one long `run_until` (the event queue is
    // oblivious to where the drive loop pauses), so digests are unaffected.
    let mut hb = Heartbeat::new(MACRO_HEARTBEAT_SECS);
    let t0 = Instant::now();
    let mut events = 0u64;
    let mut sim_secs = 0u64;
    while sim_secs < MACRO_RUN_SECS {
        sim_secs = (sim_secs + 2).min(MACRO_RUN_SECS);
        events += runner.run_until(SimTime::ZERO + SimDuration::from_secs(sim_secs));
        hb.tick("macrobench: scaled macro", || {
            format!("sim {sim_secs}/{MACRO_RUN_SECS} s, {events} events")
        });
    }
    let wall = t0.elapsed();
    let result = collect(
        runner.nodes(),
        &submitted,
        SimDuration::from_secs(MACRO_RUN_SECS),
    );
    assert_eq!(result.internal_errors, 0, "scaled macro must be healthy");

    let mut out = String::new();
    let _ = writeln!(out, "events={events}");
    let _ = writeln!(out, "wall_us={}", wall.as_micros());
    let _ = writeln!(out, "blocks={}", result.canonical_blocks);
    let _ = writeln!(out, "txs={}", result.committed_txs);
    let _ = writeln!(out, "submitted={}", submitted.len());
    let _ = writeln!(out, "heartbeats={}", hb.emitted());
    if let Some(kb) = peak_rss_kb() {
        let _ = writeln!(out, "rss_kb={kb}");
    }
    out
}

/// Measured results of the commit-path phase.
struct CommitPhase {
    blocks: usize,
    txs: usize,
    verify_cache_hit_rate: f64,
    avg_verify_batch_size: f64,
    serial_us: Summary,
    batched_us: Summary,
}

/// The commit-path phase: signed transfers through the sharded mempool
/// (cache-warming admission), blocks assembled from pooled ids, and every
/// block applied on both the serial and the batched state path under a
/// wall-clock timer. Asserts the two paths produce bit-identical roots and
/// receipts — the numbers are only comparable because the work is
/// equivalent.
fn run_commit_phase(blocks: usize, txs_per_block: usize) -> CommitPhase {
    let total_txs = blocks * txs_per_block;
    let per_sender = total_txs.div_ceil(COMMIT_SENDERS);
    // Each WOTS+Merkle keypair signs 2^height messages.
    let height = per_sender.next_power_of_two().trailing_zeros().max(1) as u8;

    let mut keys: Vec<KeyPair> = (0..COMMIT_SENDERS)
        .map(|i| {
            let mut seed = [0u8; 32];
            seed[0] = i as u8;
            seed[1] = 0xC7;
            KeyPair::generate(seed, height)
        })
        .collect();
    let alloc: Vec<(Address, u64)> = keys.iter().map(|k| (k.address(), u64::MAX / 2)).collect();

    // Sign round-robin so consecutive txs in a block come from different
    // senders (the sharded pool spreads them) while per-sender nonces stay
    // sequential in admission order.
    let mut nonces = vec![0u64; COMMIT_SENDERS];
    let mut signed: Vec<Transaction> = Vec::with_capacity(total_txs);
    for i in 0..total_txs {
        let s = i % COMMIT_SENDERS;
        let to = Address::from_index(10_000 + (i as u64 % 97));
        let mut tx = AccountTx::transfer(keys[s].address(), to, 1 + i as u64 % 100, nonces[s]);
        tx.gas_limit = 0;
        tx.gas_price = 0;
        nonces[s] += 1;
        let unsigned = Transaction::Account(tx.clone());
        let sig = keys[s]
            .sign(&unsigned.signing_hash())
            .expect("key capacity covers the workload");
        tx.auth = Some(TxAuth {
            pubkey: keys[s].public_key(),
            signature: sig,
        });
        signed.push(Transaction::Account(tx));
    }

    // One pipeline shared by admission and both appliers: admission warms
    // the cache, so block connect — on either path — is pure cache hits,
    // exactly the production configuration.
    let pipeline = Arc::new(VerifyPipeline::new(0, 4 * total_txs.max(1024)));
    let mut pool = Mempool::with_admission(total_txs + 1, Arc::clone(&pipeline));
    for tx in signed {
        assert!(
            pool.insert(SealedTx::new(Arc::new(tx))),
            "signed tx admitted"
        );
    }
    let admission_stats = pipeline.stats();

    let machine = |serial: bool| {
        let mut m = AccountMachine::with_alloc(&alloc).with_pipeline(Arc::clone(&pipeline));
        m.schedule = GasSchedule::free();
        m.verify_signatures = true;
        m.serial_apply = serial;
        m
    };
    let mut serial_machine = machine(true);
    let mut batched_machine = machine(false);
    let mut serial_us = Summary::new();
    let mut batched_us = Summary::new();

    let proposer = Address::from_index(0);
    let mut parent = dcs_crypto::Hash256::ZERO;
    let mut included = BTreeSet::new();
    for height in 1..=blocks as u64 {
        let selected = pool.select(txs_per_block, &included);
        assert_eq!(selected.len(), txs_per_block, "pool holds the workload");
        let coinbase = Transaction::Coinbase {
            to: proposer,
            value: 50,
            height,
        };
        let mut body = Vec::with_capacity(selected.len() + 1);
        let mut ids = Vec::with_capacity(selected.len() + 1);
        ids.push(coinbase.id());
        body.push(coinbase);
        for tx in selected {
            included.insert(tx.id());
            ids.push(tx.id());
            body.push((**tx.tx()).clone());
        }
        let header = BlockHeader::new(parent, height, height, proposer, Seal::None);
        let block = Block::with_ids(header, body, ids);
        parent = block.hash();

        let t0 = Instant::now();
        let (serial_receipts, _) = serial_machine.apply_block(&block).expect("valid block");
        serial_us.record(t0.elapsed().as_secs_f64() * 1e6);
        let t1 = Instant::now();
        let (batched_receipts, _) = batched_machine.apply_block(&block).expect("valid block");
        batched_us.record(t1.elapsed().as_secs_f64() * 1e6);

        assert_eq!(
            serial_receipts, batched_receipts,
            "serial and batched receipts must be bit-identical"
        );
        assert_eq!(
            serial_machine.state_root(),
            batched_machine.state_root(),
            "serial and batched state roots must be bit-identical"
        );
        assert!(
            serial_receipts.iter().all(|r| r.status.is_success()),
            "the workload is all-valid"
        );
    }

    // Hit rate over block connect alone (deltas past admission): with a
    // warm cache every witness check is a hit, which is the number the
    // BENCH trajectory watches for regressions.
    let final_stats = pipeline.stats();
    let report = VerificationReport {
        pipeline: final_stats,
        ..Default::default()
    };
    let (hits0, misses0) = admission_stats.cache.map_or((0, 0), |c| (c.hits, c.misses));
    let (hits1, misses1) = final_stats.cache.map_or((0, 0), |c| (c.hits, c.misses));
    let connect_lookups = (hits1 - hits0) + (misses1 - misses0);
    let verify_cache_hit_rate = if connect_lookups == 0 {
        0.0
    } else {
        (hits1 - hits0) as f64 / connect_lookups as f64
    };

    CommitPhase {
        blocks,
        txs: total_txs,
        verify_cache_hit_rate,
        avg_verify_batch_size: report.avg_batch_size(),
        serial_us,
        batched_us,
    }
}

fn git_rev() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Runs a child configuration of this same binary and parses its
/// `key=value` output. The child's stderr is inherited so heartbeat and
/// warning lines stream to the terminal as the run progresses instead of
/// being buffered until exit.
fn run_child(exe: &std::path::Path, args: &[&str]) -> BTreeMap<String, String> {
    let out = Command::new(exe)
        .args(args)
        .stderr(std::process::Stdio::inherit())
        .output()
        .expect("spawn child configuration");
    assert!(
        out.status.success(),
        "child {args:?} failed (diagnostics streamed to stderr above)"
    );
    std::str::from_utf8(&out.stdout)
        .expect("child output is utf-8")
        .lines()
        .filter_map(|l| l.split_once('='))
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if let Some(pos) = args.iter().position(|a| a == "--one") {
        let workers: usize = args
            .get(pos + 1)
            .and_then(|w| w.parse().ok())
            .expect("--one <workers>");
        print!("{}", run_one(workers, smoke));
        return;
    }
    if args.iter().any(|a| a == "--one-macro") {
        print!("{}", run_macro());
        return;
    }

    let rev = git_rev();
    let host_cpus = std::thread::available_parallelism().map_or(1, |c| c.get());
    let workers = if smoke { SMOKE_WORKERS } else { WORKERS };
    let max_workers =
        workers
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .max(if smoke { 0 } else { MACRO_WORKERS });
    let cpu_warning = if host_cpus < max_workers {
        let w = format!(
            "host has {host_cpus} cpu(s) but up to {max_workers} workers were requested; \
             multi-worker rows measure oversubscription on this machine, not scaling"
        );
        eprintln!("macrobench: WARNING: {w}");
        Some(w)
    } else {
        None
    };
    println!(
        "macrobench{}: {NODES}-node PoW gossip, rev {rev}, {host_cpus} host cpu(s)",
        if smoke { " (smoke)" } else { "" }
    );

    let exe = std::env::current_exe().expect("current exe path");
    let mut configs = Vec::new();
    let mut digests = Vec::new();
    for &w in workers {
        let t0 = Instant::now();
        let mut child_args = vec!["--one".to_string(), w.to_string()];
        if smoke {
            child_args.push("--smoke".to_string());
        }
        let child_refs: Vec<&str> = child_args.iter().map(String::as_str).collect();
        let kv = run_child(&exe, &child_refs);
        let get = |k: &str| -> u64 { kv[k].parse().unwrap_or(0) };
        let wall_secs = get("wall_us") as f64 / 1e6;
        let (events, blocks, txs) = (get("events"), get("blocks"), get("txs"));
        // The child omits rss_kb when VmHWM is unreadable (it already
        // warned on stderr); the JSON omits the field rather than record
        // a fake zero in the trajectory.
        let rss_kb: Option<u64> = kv.get("rss_kb").and_then(|v| v.parse().ok());
        println!(
            "  workers={w}: {events} events in {wall_secs:.2}s wall → {:.0} events/s, {:.2} blocks/s, {:.1} tx/s, peak RSS {} (child total {:.2}s)",
            events as f64 / wall_secs,
            blocks as f64 / wall_secs,
            txs as f64 / wall_secs,
            rss_kb.map_or("n/a".to_string(), |kb| format!("{kb} kB")),
            t0.elapsed().as_secs_f64(),
        );
        digests.push(kv["digest"].clone());
        configs.push(format!(
            "    {{\"workers\": {w}, \"events\": {events}, \"wall_secs\": {wall_secs:.4}, \"events_per_sec\": {:.1}, \"blocks_per_sec\": {:.3}, \"txs_per_sec\": {:.2}{}}}",
            events as f64 / wall_secs,
            blocks as f64 / wall_secs,
            txs as f64 / wall_secs,
            rss_kb.map_or(String::new(), |kb| format!(", \"peak_rss_kb\": {kb}")),
        ));
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "every worker count must produce the identical chain digest: {digests:?}"
    );

    let (blocks, per_block) = if smoke {
        (SMOKE_COMMIT_BLOCKS, SMOKE_COMMIT_TXS_PER_BLOCK)
    } else {
        (COMMIT_BLOCKS, COMMIT_TXS_PER_BLOCK)
    };
    let mut commit = run_commit_phase(blocks, per_block);
    println!(
        "  commit path: {} signed txs / {} blocks, cache hit rate {:.3}, avg verify batch {:.1}",
        commit.txs, commit.blocks, commit.verify_cache_hit_rate, commit.avg_verify_batch_size
    );
    println!(
        "    serial apply:  mean {:.0} µs, p50 {:.0} µs, p99 {:.0} µs",
        commit.serial_us.mean(),
        commit.serial_us.p50(),
        commit.serial_us.p99()
    );
    println!(
        "    batched apply: mean {:.0} µs, p50 {:.0} µs, p99 {:.0} µs ({:.2}x)",
        commit.batched_us.mean(),
        commit.batched_us.p50(),
        commit.batched_us.p99(),
        commit.serial_us.mean() / commit.batched_us.mean().max(1e-9),
    );
    let commit_json = format!(
        "{{\n    \"blocks\": {}, \"txs\": {}, \"verify_cache_hit_rate\": {:.4}, \"avg_verify_batch_size\": {:.2},\n    \"apply_us\": {{\n      \"serial\":  {{\"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1}}},\n      \"batched\": {{\"mean\": {:.1}, \"p50\": {:.1}, \"p99\": {:.1}}}\n    }},\n    \"batched_speedup\": {:.3}\n  }}",
        commit.blocks,
        commit.txs,
        commit.verify_cache_hit_rate,
        commit.avg_verify_batch_size,
        commit.serial_us.mean(),
        commit.serial_us.p50(),
        commit.serial_us.p99(),
        commit.batched_us.mean(),
        commit.batched_us.p50(),
        commit.batched_us.p99(),
        commit.serial_us.mean() / commit.batched_us.mean().max(1e-9),
    );

    let macro_json = if smoke {
        "null".to_string()
    } else {
        let t0 = Instant::now();
        let kv = run_child(&exe, &["--one-macro"]);
        let get = |k: &str| -> u64 { kv[k].parse().unwrap_or(0) };
        let wall_secs = get("wall_us") as f64 / 1e6;
        let rss_kb: Option<u64> = kv.get("rss_kb").and_then(|v| v.parse().ok());
        println!(
            "  scaled macro: {} submitted txs, {} events in {wall_secs:.2}s wall → {:.0} events/s, {} committed, peak RSS {} ({} heartbeats, child total {:.2}s)",
            get("submitted"),
            get("events"),
            get("events") as f64 / wall_secs,
            get("txs"),
            rss_kb.map_or("n/a".to_string(), |kb| format!("{kb} kB")),
            get("heartbeats"),
            t0.elapsed().as_secs_f64(),
        );
        format!(
            "{{\"workers\": {MACRO_WORKERS}, \"submitted_txs\": {}, \"events\": {}, \"wall_secs\": {wall_secs:.4}, \"events_per_sec\": {:.1}, \"committed_txs\": {}, \"blocks\": {}, \"heartbeat_secs\": {MACRO_HEARTBEAT_SECS}, \"heartbeats\": {}{}}}",
            get("submitted"),
            get("events"),
            get("events") as f64 / wall_secs,
            get("txs"),
            get("blocks"),
            get("heartbeats"),
            rss_kb.map_or(String::new(), |kb| format!(", \"peak_rss_kb\": {kb}")),
        )
    };

    let warning_json = cpu_warning
        .as_ref()
        .map_or("null".to_string(), |w| format!("\"{w}\""));
    let json = format!(
        "{{\n  \"schema\": \"dcs-macrobench/v2\",\n  \"rev\": \"{rev}\",\n  \"host_cpus\": {host_cpus},\n  \"host_cpu_warning\": {warning_json},\n  \"smoke\": {smoke},\n  \"sim\": {{\"nodes\": {NODES}, \"seed\": {SEED}, \"run_secs\": {}, \"workload_tps\": {WORKLOAD_TPS}}},\n  \"digest\": \"{}\",\n  \"configs\": [\n{}\n  ],\n  \"commit_path\": {},\n  \"macro\": {}\n}}\n",
        if smoke { SMOKE_RUN_SECS } else { RUN_SECS },
        digests[0],
        configs.join(",\n"),
        commit_json,
        macro_json,
    );
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    // Smoke runs get their own suffix so a local CI-style run never
    // clobbers the committed full-run trajectory file.
    let path = if smoke {
        root.join(format!("BENCH_{rev}.smoke.json"))
    } else {
        root.join(format!("BENCH_{rev}.json"))
    };
    std::fs::write(&path, &json).expect("write BENCH json");
    println!("wrote {} (digest {})", path.display(), &digests[0][..16]);
}
