//! Minimal fixed-width table printer for experiment output.

/// A simple console table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width matches header");
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let width = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.header.iter().map(|h| width(h)).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(width(cell));
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                out.push_str("| ");
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[i] - width(cell) + 1));
            }
            out.push_str("|\n");
        };
        line(&self.header, &widths, &mut out);
        for (i, w) in widths.iter().enumerate() {
            out.push_str(if i == 0 { "|" } else { "" });
            out.push_str(&"-".repeat(w + 2));
            out.push('|');
        }
        out.push('\n');
        for row in &self.rows {
            line(row, &widths, &mut out);
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("| name   | value |"));
        assert!(s.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(&["a"]).row(vec!["1".into(), "2".into()]);
    }
}
