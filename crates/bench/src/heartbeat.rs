//! Wall-clock heartbeat for long benchmark phases.
//!
//! The scaled macro run pushes ≥ 1M transactions through the overlay and
//! can hold a CI log silent for minutes; a [`Heartbeat`] emits a bounded
//! stream of stderr progress lines so a watcher (human or timeout-based)
//! can tell a long run from a hung one. Stderr only — stdout carries the
//! machine-readable `key=value` protocol between parent and child.

use std::time::Instant;

/// Default heartbeat interval (wall seconds) for the scaled macro phase;
/// recorded in the BENCH JSON so readers know the cadence of the log.
pub const MACRO_HEARTBEAT_SECS: u64 = 10;

/// Rate-limited stderr progress reporter: [`Heartbeat::tick`] is cheap to
/// call every loop iteration and emits at most one line per interval.
pub struct Heartbeat {
    started: Instant,
    last: Instant,
    interval_secs: u64,
    emitted: u64,
}

impl Heartbeat {
    /// A heartbeat that emits at most once every `interval_secs` wall
    /// seconds (0 emits on every tick).
    pub fn new(interval_secs: u64) -> Self {
        let now = Instant::now();
        Heartbeat {
            started: now,
            last: now,
            interval_secs,
            emitted: 0,
        }
    }

    /// Emits `label: <progress()> (Ns wall)` to stderr when an interval
    /// has elapsed since the last emission; returns whether it emitted.
    /// The progress closure only runs when a line is actually due.
    pub fn tick(&mut self, label: &str, progress: impl FnOnce() -> String) -> bool {
        if self.last.elapsed().as_secs() < self.interval_secs {
            return false;
        }
        self.last = Instant::now();
        self.emitted += 1;
        eprintln!(
            "{label}: {} ({:.0}s wall)",
            progress(),
            self.started.elapsed().as_secs_f64()
        );
        true
    }

    /// Lines emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_interval_emits_every_tick_and_counts() {
        let mut hb = Heartbeat::new(0);
        assert!(hb.tick("test-heartbeat", || "step 1".to_string()));
        assert!(hb.tick("test-heartbeat", || "step 2".to_string()));
        assert_eq!(hb.emitted(), 2);
    }

    #[test]
    fn long_interval_suppresses_and_skips_progress_closure() {
        let mut hb = Heartbeat::new(3600);
        let emitted = hb.tick("test-heartbeat", || unreachable!("suppressed tick"));
        assert!(!emitted);
        assert_eq!(hb.emitted(), 0);
    }
}
