//! Property-based tests for ledger primitives: canonical-codec round-trips
//! over arbitrary transactions and blocks, id stability, and Merkle-root
//! integrity under arbitrary bodies.

use dcs_crypto::codec::{decode_all, Encode};
use dcs_crypto::{Address, Hash256};
use dcs_primitives::{
    AccountTx, Block, BlockHeader, Seal, Transaction, TxIn, TxOut, TxPayload, UtxoTx,
};
use proptest::prelude::*;

fn arb_address() -> impl Strategy<Value = Address> {
    any::<u64>().prop_map(Address::from_index)
}

fn arb_hash() -> impl Strategy<Value = Hash256> {
    any::<[u8; 32]>().prop_map(Hash256::from_bytes)
}

fn arb_payload() -> impl Strategy<Value = TxPayload> {
    prop_oneof![
        Just(TxPayload::Transfer),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(TxPayload::Deploy),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(TxPayload::Call),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(TxPayload::Data),
    ]
}

fn arb_account_tx() -> impl Strategy<Value = AccountTx> {
    (
        arb_address(),
        proptest::option::of(arb_address()),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        arb_payload(),
    )
        .prop_map(
            |(from, to, value, nonce, gas_limit, gas_price, payload)| AccountTx {
                from,
                to,
                value,
                nonce,
                gas_limit,
                gas_price,
                payload,
                auth: None,
            },
        )
}

fn arb_utxo_tx() -> impl Strategy<Value = UtxoTx> {
    (
        proptest::collection::vec((arb_hash(), any::<u32>()), 0..8),
        proptest::collection::vec((any::<u64>(), arb_address()), 0..8),
    )
        .prop_map(|(ins, outs)| UtxoTx {
            inputs: ins
                .into_iter()
                .map(|(prev_tx, index)| TxIn {
                    prev_tx,
                    index,
                    auth: None,
                })
                .collect(),
            outputs: outs
                .into_iter()
                .map(|(value, recipient)| TxOut { value, recipient })
                .collect(),
        })
}

fn arb_tx() -> impl Strategy<Value = Transaction> {
    prop_oneof![
        (arb_address(), any::<u64>(), any::<u64>())
            .prop_map(|(to, value, height)| Transaction::Coinbase { to, value, height }),
        arb_utxo_tx().prop_map(Transaction::Utxo),
        arb_account_tx().prop_map(Transaction::Account),
    ]
}

fn arb_seal() -> impl Strategy<Value = Seal> {
    prop_oneof![
        Just(Seal::None),
        (any::<u64>(), 1u64..u64::MAX)
            .prop_map(|(nonce, difficulty)| Seal::Work { nonce, difficulty }),
        (any::<u64>(), arb_hash()).prop_map(|(slot, proof)| Seal::Stake { slot, proof }),
        any::<u64>().prop_map(|wait_us| Seal::ElapsedTime { wait_us }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(view, sequence, votes)| {
            Seal::Authority {
                view,
                sequence,
                votes,
            }
        }),
        (arb_hash(), any::<u64>()).prop_map(|(key_block, sequence)| Seal::Micro {
            key_block,
            sequence
        }),
    ]
}

proptest! {
    #[test]
    fn transaction_codec_round_trip(tx in arb_tx()) {
        let decoded = decode_all::<Transaction>(&tx.encoded()).unwrap();
        prop_assert_eq!(&decoded, &tx);
        prop_assert_eq!(decoded.id(), tx.id());
    }

    #[test]
    fn block_codec_round_trip(
        txs in proptest::collection::vec(arb_tx(), 0..12),
        seal in arb_seal(),
        parent in arb_hash(),
        height in any::<u64>(),
        ts in any::<u64>(),
        proposer in arb_address(),
    ) {
        let block = Block::new(BlockHeader::new(parent, height, ts, proposer, seal), txs);
        let decoded = decode_all::<Block>(&block.encoded()).unwrap();
        prop_assert_eq!(decoded.hash(), block.hash());
        prop_assert_eq!(decoded, block);
    }

    #[test]
    fn block_root_commits_to_body(txs in proptest::collection::vec(arb_tx(), 1..12), extra in arb_tx()) {
        let block = Block::new(
            BlockHeader::new(Hash256::ZERO, 1, 0, Address::ZERO, Seal::None),
            txs.clone(),
        );
        prop_assert!(block.verify_tx_root());
        let mut tampered = block.clone();
        tampered.txs.push(extra.clone());
        // Appending always changes the root (the extra leaf is hashed in).
        prop_assert!(!tampered.verify_tx_root());
    }

    #[test]
    fn signing_hash_invariant_under_witness(tx in arb_account_tx()) {
        let unsigned = Transaction::Account(tx);
        // With no witness attached, signing hash == hash of encoding-with-
        // auth-stripped, which must be stable and deterministic.
        prop_assert_eq!(unsigned.signing_hash(), unsigned.signing_hash());
    }

    #[test]
    fn distinct_txs_have_distinct_ids(a in arb_tx(), b in arb_tx()) {
        if a != b {
            prop_assert_ne!(a.id(), b.id());
        }
    }
}
