//! Chain configuration: the tuning surface through which a deployment picks
//! its point in the paper's DCS triangle (§2.7). Consensus family, block
//! cadence, batch sizes, fork-choice rule, and signature policy are all
//! chosen here; the `dcs-ledger` crate ships presets for DC, CS, and DS
//! systems.

use crate::gas::GasSchedule;
use crate::Amount;
use serde::{Deserialize, Serialize};

/// Which consensus protocol family drives block production (§2.4).
/// Durations are microseconds of simulated time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsensusKind {
    /// Nakamoto proof-of-work with difficulty retargeting.
    ProofOfWork {
        /// Initial difficulty: expected hash attempts per block.
        initial_difficulty: u64,
        /// Blocks between retargets (Bitcoin uses 2016).
        retarget_window: u64,
        /// Target inter-block time in microseconds (Bitcoin: 600 s).
        target_interval_us: u64,
    },
    /// Slot-based proof-of-stake: each slot, a stake-weighted lottery picks
    /// the proposer.
    ProofOfStake {
        /// Slot length in microseconds.
        slot_us: u64,
    },
    /// Proof-of-elapsed-time: every peer draws a trusted random wait;
    /// shortest wait proposes.
    ProofOfElapsedTime {
        /// Mean wait in microseconds (exponential distribution).
        mean_wait_us: u64,
    },
    /// PBFT among all peers: three-phase commit per block, view change on
    /// leader failure.
    Pbft {
        /// Max transactions per batch (block).
        batch_size: usize,
        /// Cut a batch at this age even if not full, microseconds.
        batch_timeout_us: u64,
        /// View-change timeout, microseconds.
        view_timeout_us: u64,
    },
    /// Hyperledger-style ordering service: a designated orderer sequences
    /// batches; committing peers validate.
    Ordering {
        /// Max transactions per batch.
        batch_size: usize,
        /// Cut a batch at this age even if not full, microseconds.
        batch_timeout_us: u64,
        /// Rotate leadership every N blocks (0 = static leader).
        rotate_every: u64,
    },
    /// Bitcoin-NG: PoW key blocks elect a leader who streams microblocks.
    BitcoinNg {
        /// Key-block difficulty (expected hash attempts).
        key_difficulty: u64,
        /// Target key-block interval, microseconds.
        key_interval_us: u64,
        /// Microblock issue interval, microseconds.
        micro_interval_us: u64,
    },
}

/// How peers choose among competing branches (§2.4's "branch selection
/// algorithm").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ForkChoice {
    /// Nakamoto consensus: follow the longest chain.
    LongestChain,
    /// Follow the chain with the most accumulated (expected) work.
    HeaviestWork,
    /// GHOST: greedily descend into the heaviest *subtree* (what Ethereum
    /// uses to tolerate short block times, §2.7).
    Ghost,
}

/// Full chain configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainConfig {
    /// Distinguishes ledgers in multi-chain experiments.
    pub chain_id: u32,
    /// Consensus protocol parameters.
    pub consensus: ConsensusKind,
    /// Branch selection rule.
    pub fork_choice: ForkChoice,
    /// Maximum transactions per block.
    pub block_tx_limit: usize,
    /// Block subsidy paid to the proposer via a coinbase transaction.
    pub block_reward: Amount,
    /// Gas schedule for contract execution.
    pub gas: GasSchedule,
    /// Whether transaction witnesses are required and verified. Large-scale
    /// throughput simulations can disable this (documented substitution;
    /// the crypto is exercised by dedicated tests and benches).
    pub verify_signatures: bool,
    /// Blocks behind the tip considered final for reporting purposes.
    pub confirmation_depth: u64,
}

impl ChainConfig {
    /// Bitcoin-like defaults: PoW, 600 s target, longest chain, ~7 tps
    /// equivalent block capacity.
    pub fn bitcoin_like() -> Self {
        ChainConfig {
            chain_id: 1,
            consensus: ConsensusKind::ProofOfWork {
                initial_difficulty: 1 << 20,
                retarget_window: 16,
                target_interval_us: 600_000_000,
            },
            fork_choice: ForkChoice::LongestChain,
            // 7 tps * 600 s = 4200 txs per block, matching the paper's
            // quoted Bitcoin throughput.
            block_tx_limit: 4_200,
            block_reward: 50_0000_0000,
            gas: GasSchedule::default(),
            verify_signatures: false,
            confirmation_depth: 6,
        }
    }

    /// Ethereum-like defaults: PoW with ~15 s blocks and GHOST fork choice.
    pub fn ethereum_like() -> Self {
        ChainConfig {
            chain_id: 2,
            consensus: ConsensusKind::ProofOfWork {
                initial_difficulty: 1 << 14,
                retarget_window: 32,
                target_interval_us: 15_000_000,
            },
            fork_choice: ForkChoice::Ghost,
            block_tx_limit: 200,
            block_reward: 5_0000_0000,
            gas: GasSchedule::default(),
            verify_signatures: false,
            confirmation_depth: 12,
        }
    }

    /// Hyperledger-like defaults: ordering service, 500 ms batches, free gas.
    pub fn hyperledger_like() -> Self {
        ChainConfig {
            chain_id: 3,
            consensus: ConsensusKind::Ordering {
                batch_size: 500,
                batch_timeout_us: 500_000,
                rotate_every: 0,
            },
            fork_choice: ForkChoice::LongestChain,
            block_tx_limit: 500,
            block_reward: 0,
            gas: GasSchedule::free(),
            verify_signatures: false,
            confirmation_depth: 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_encode_paper_parameters() {
        let btc = ChainConfig::bitcoin_like();
        match btc.consensus {
            ConsensusKind::ProofOfWork {
                target_interval_us, ..
            } => {
                assert_eq!(target_interval_us, 600_000_000, "10 minutes");
            }
            _ => panic!("bitcoin preset must be PoW"),
        }
        // 4200 txs / 600 s = 7 tps, the paper's quoted Bitcoin ceiling.
        assert_eq!(btc.block_tx_limit as u64 / 600, 7);

        let eth = ChainConfig::ethereum_like();
        assert_eq!(eth.fork_choice, ForkChoice::Ghost);

        let hlf = ChainConfig::hyperledger_like();
        assert!(matches!(hlf.consensus, ConsensusKind::Ordering { .. }));
        assert_eq!(hlf.block_reward, 0);
    }
}
