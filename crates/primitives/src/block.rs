//! Blocks and headers (Fig. 2 of the paper): each header carries the parent
//! hash (the chain link), a Merkle root over the transactions, a state root,
//! and a consensus [`Seal`] proving the proposer's right to extend the chain.

use crate::transaction::Transaction;
use crate::Amount;
use dcs_crypto::codec::{Decode, DecodeError, Encode, Reader};
use dcs_crypto::{merkle, sha256, Address, Hash256};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// The consensus proof attached to a header. One variant per protocol family
/// the paper surveys (§2.4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Seal {
    /// No seal: genesis blocks and unit tests.
    None,
    /// Proof-of-Work: a nonce and the difficulty — the expected number of
    /// hash attempts needed, i.e. a valid header hash must satisfy
    /// `hash.prefix_u64() <= u64::MAX / difficulty`. Also the per-block
    /// "work" accumulated by heaviest-chain rules.
    Work {
        /// Mining nonce.
        nonce: u64,
        /// Expected hash attempts (≥ 1).
        difficulty: u64,
    },
    /// Proof-of-Stake: the slot number and the proposer's lottery proof.
    Stake {
        /// Slot index since genesis.
        slot: u64,
        /// Verifiable lottery draw binding proposer, slot, and parent.
        proof: Hash256,
    },
    /// Proof-of-Elapsed-Time: the waited duration in microseconds, attested
    /// by a (simulated) trusted execution environment.
    ElapsedTime {
        /// Microseconds waited before proposing.
        wait_us: u64,
    },
    /// Leader-based ordering (Hyperledger-style ordering service or PBFT):
    /// the view/epoch and sequence number assigned by the orderer.
    Authority {
        /// Leader election epoch.
        view: u64,
        /// Sequence within the view.
        sequence: u64,
        /// Number of commit votes backing the block (PBFT quorum size; 1 for
        /// a solo orderer).
        votes: u32,
    },
    /// Bitcoin-NG microblock: signed by the current key-block leader.
    Micro {
        /// Hash of the key block that elected the issuing leader.
        key_block: Hash256,
        /// Microblock sequence under that key block.
        sequence: u64,
    },
}

/// A block header: everything needed to verify chain linkage and data
/// integrity without downloading the body (the light-client contract, §2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockHeader {
    /// Hash of the parent header ([`Hash256::ZERO`] for genesis).
    pub parent: Hash256,
    /// Distance from genesis.
    pub height: u64,
    /// Proposal time, microseconds of simulated time.
    pub timestamp_us: u64,
    /// Merkle root over the body's transaction ids.
    pub tx_root: Hash256,
    /// Root of the authenticated state after executing this block.
    pub state_root: Hash256,
    /// The proposing peer's reward address.
    pub proposer: Address,
    /// Consensus proof.
    pub seal: Seal,
}

impl BlockHeader {
    /// Creates a header with empty roots (filled in by block assembly).
    pub fn new(
        parent: Hash256,
        height: u64,
        timestamp_us: u64,
        proposer: Address,
        seal: Seal,
    ) -> Self {
        BlockHeader {
            parent,
            height,
            timestamp_us,
            tx_root: Hash256::ZERO,
            state_root: Hash256::ZERO,
            proposer,
            seal,
        }
    }

    /// The block hash: SHA-256 of the canonical header encoding.
    pub fn hash(&self) -> Hash256 {
        sha256(&self.encoded())
    }

    /// The amount of expected work this header's seal represents (the PoW
    /// difficulty; 1 otherwise). Summed by heaviest-chain fork choice.
    pub fn work(&self) -> u128 {
        match self.seal {
            Seal::Work { difficulty, .. } => u128::from(difficulty.max(1)),
            _ => 1,
        }
    }

    /// Whether a `Seal::Work` header's hash actually meets its difficulty
    /// target: the first 8 bytes, read as an integer, must fall below
    /// `u64::MAX / difficulty`. Non-PoW seals trivially pass.
    pub fn meets_pow_target(&self) -> bool {
        match self.seal {
            Seal::Work { difficulty, .. } => {
                self.hash().prefix_u64() <= u64::MAX / difficulty.max(1)
            }
            _ => true,
        }
    }
}

/// A full block: header plus transaction body.
#[derive(Debug, Serialize, Deserialize)]
pub struct Block {
    /// The sealed header.
    pub header: BlockHeader,
    /// Ordered transactions.
    pub txs: Vec<Transaction>,
    /// Body transaction ids, computed batch-first on first use and shared by
    /// every consumer of this instance (root verification, inclusion
    /// tracking). Not part of the block's identity: skipped by the codec,
    /// equality, and clones.
    #[serde(skip)]
    ids: OnceLock<Box<[Hash256]>>,
}

impl Clone for Block {
    fn clone(&self) -> Self {
        // The clone starts with a cold cache: clones exist to be modified
        // (tests, experiment tooling), and a carried-over cache would go
        // stale the moment the body changes.
        Block {
            header: self.header.clone(),
            txs: self.txs.clone(),
            ids: OnceLock::new(),
        }
    }
}

impl PartialEq for Block {
    fn eq(&self, other: &Self) -> bool {
        self.header == other.header && self.txs == other.txs
    }
}

impl Eq for Block {}

impl Block {
    /// Assembles a block, computing and committing the transaction Merkle
    /// root into the header.
    pub fn new(mut header: BlockHeader, txs: Vec<Transaction>) -> Self {
        header.tx_root = Self::compute_tx_root(&txs);
        Block {
            header,
            txs,
            ids: OnceLock::new(),
        }
    }

    /// Assembles a block from transactions whose ids the caller has already
    /// computed (the propose path: the mempool hands both over). Commits the
    /// Merkle root over `ids` and seeds the id cache, so assembly never
    /// re-hashes bodies the pool already identified.
    pub fn with_ids(mut header: BlockHeader, txs: Vec<Transaction>, ids: Vec<Hash256>) -> Self {
        debug_assert_eq!(txs.len(), ids.len(), "one id per transaction");
        debug_assert!(
            txs.iter().zip(&ids).all(|(tx, id)| tx.id() == *id),
            "ids must match the bodies"
        );
        header.tx_root = merkle::merkle_root(&ids);
        Block {
            header,
            txs,
            ids: OnceLock::from(ids.into_boxed_slice()),
        }
    }

    /// Reassembles a block from an already-sealed header and its body
    /// without recomputing the transaction root (mining workflows seal a
    /// template header whose `tx_root` is already committed). The caller is
    /// responsible for the header/body pairing; `verify_tx_root` still
    /// checks it.
    pub fn from_parts(header: BlockHeader, txs: Vec<Transaction>) -> Self {
        Block {
            header,
            txs,
            ids: OnceLock::new(),
        }
    }

    /// The block hash (hash of the header).
    pub fn hash(&self) -> Hash256 {
        self.header.hash()
    }

    /// The body's transaction ids, in order — computed with the multi-lane
    /// batch hasher on first call and cached for the life of this instance.
    /// Shared `Arc<Block>` holders (the gossip fabric, the block store) all
    /// reuse one computation.
    pub fn tx_ids(&self) -> &[Hash256] {
        self.ids
            .get_or_init(|| Transaction::batch_ids(&self.txs).into_boxed_slice())
    }

    /// Merkle root over the transaction ids.
    pub fn compute_tx_root(txs: &[Transaction]) -> Hash256 {
        merkle::merkle_root(&Transaction::batch_ids(txs))
    }

    /// Checks that the header's `tx_root` matches the body.
    pub fn verify_tx_root(&self) -> bool {
        self.header.tx_root == merkle::merkle_root(self.tx_ids())
    }

    /// Total fees offered by the body's transactions.
    pub fn offered_fees(&self) -> Amount {
        self.txs.iter().map(Transaction::offered_fee).sum()
    }

    /// Encoded size in bytes (drives bandwidth accounting and the E10
    /// full-download-vs-SPV comparison).
    pub fn encoded_len(&self) -> usize {
        self.encoded().len()
    }
}

impl Encode for Seal {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Seal::None => out.push(0),
            Seal::Work { nonce, difficulty } => {
                out.push(1);
                nonce.encode(out);
                difficulty.encode(out);
            }
            Seal::Stake { slot, proof } => {
                out.push(2);
                slot.encode(out);
                proof.encode(out);
            }
            Seal::ElapsedTime { wait_us } => {
                out.push(3);
                wait_us.encode(out);
            }
            Seal::Authority {
                view,
                sequence,
                votes,
            } => {
                out.push(4);
                view.encode(out);
                sequence.encode(out);
                votes.encode(out);
            }
            Seal::Micro {
                key_block,
                sequence,
            } => {
                out.push(5);
                key_block.encode(out);
                sequence.encode(out);
            }
        }
    }
}

impl Decode for Seal {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Seal::None),
            1 => Ok(Seal::Work {
                nonce: u64::decode(r)?,
                difficulty: u64::decode(r)?,
            }),
            2 => Ok(Seal::Stake {
                slot: u64::decode(r)?,
                proof: Hash256::decode(r)?,
            }),
            3 => Ok(Seal::ElapsedTime {
                wait_us: u64::decode(r)?,
            }),
            4 => Ok(Seal::Authority {
                view: u64::decode(r)?,
                sequence: u64::decode(r)?,
                votes: u32::decode(r)?,
            }),
            5 => Ok(Seal::Micro {
                key_block: Hash256::decode(r)?,
                sequence: u64::decode(r)?,
            }),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.parent.encode(out);
        self.height.encode(out);
        self.timestamp_us.encode(out);
        self.tx_root.encode(out);
        self.state_root.encode(out);
        self.proposer.encode(out);
        self.seal.encode(out);
    }
}

impl Decode for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            parent: Hash256::decode(r)?,
            height: u64::decode(r)?,
            timestamp_us: u64::decode(r)?,
            tx_root: Hash256::decode(r)?,
            state_root: Hash256::decode(r)?,
            proposer: Address::decode(r)?,
            seal: Seal::decode(r)?,
        })
    }
}

impl Encode for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        self.txs.encode(out);
    }
}

impl Decode for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            txs: Vec::decode(r)?,
            ids: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::AccountTx;
    use dcs_crypto::codec::decode_all;

    fn tx(n: u64) -> Transaction {
        Transaction::Account(AccountTx::transfer(
            Address::from_index(n),
            Address::from_index(n + 1),
            n,
            0,
        ))
    }

    fn block(n_txs: u64) -> Block {
        Block::new(
            BlockHeader::new(Hash256::ZERO, 1, 1_000, Address::from_index(0), Seal::None),
            (0..n_txs).map(tx).collect(),
        )
    }

    #[test]
    fn new_commits_tx_root() {
        let b = block(3);
        assert!(b.verify_tx_root());
        assert_ne!(b.header.tx_root, Hash256::ZERO);
    }

    #[test]
    fn empty_block_has_zero_tx_root() {
        let b = block(0);
        assert!(b.verify_tx_root());
        assert_eq!(b.header.tx_root, Hash256::ZERO);
    }

    #[test]
    fn tampering_with_body_breaks_root() {
        let mut b = block(3);
        b.txs.push(tx(99));
        assert!(!b.verify_tx_root());
    }

    #[test]
    fn hash_changes_with_any_header_field() {
        let base = block(1);
        let h = base.hash();
        let mut b = base.clone();
        b.header.height += 1;
        assert_ne!(b.hash(), h);
        let mut b = base.clone();
        b.header.timestamp_us += 1;
        assert_ne!(b.hash(), h);
        let mut b = base.clone();
        b.header.parent = dcs_crypto::sha256(b"other");
        assert_ne!(b.hash(), h);
        let mut b = base;
        b.header.seal = Seal::Work {
            nonce: 1,
            difficulty: 16,
        };
        assert_ne!(b.hash(), h);
    }

    #[test]
    fn seal_work_is_difficulty() {
        let mk = |d| {
            BlockHeader::new(
                Hash256::ZERO,
                0,
                0,
                Address::ZERO,
                Seal::Work {
                    nonce: 0,
                    difficulty: d,
                },
            )
        };
        assert_eq!(mk(1024).work(), 1024);
        assert_eq!(mk(0).work(), 1, "difficulty 0 clamps to 1");
        let plain = BlockHeader::new(Hash256::ZERO, 0, 0, Address::ZERO, Seal::None);
        assert_eq!(plain.work(), 1);
    }

    #[test]
    fn pow_target_check() {
        // Difficulty 1 accepts any hash; a huge difficulty essentially never.
        let easy = BlockHeader::new(
            Hash256::ZERO,
            0,
            0,
            Address::ZERO,
            Seal::Work {
                nonce: 5,
                difficulty: 1,
            },
        );
        assert!(easy.meets_pow_target());
        let hard = BlockHeader::new(
            Hash256::ZERO,
            0,
            0,
            Address::ZERO,
            Seal::Work {
                nonce: 5,
                difficulty: u64::MAX,
            },
        );
        assert!(!hard.meets_pow_target());
        let none = BlockHeader::new(Hash256::ZERO, 0, 0, Address::ZERO, Seal::None);
        assert!(none.meets_pow_target());
    }

    #[test]
    fn codec_round_trips_all_seals() {
        let seals = vec![
            Seal::None,
            Seal::Work {
                nonce: 42,
                difficulty: 1 << 20,
            },
            Seal::Stake {
                slot: 7,
                proof: dcs_crypto::sha256(b"p"),
            },
            Seal::ElapsedTime { wait_us: 123_456 },
            Seal::Authority {
                view: 2,
                sequence: 19,
                votes: 7,
            },
            Seal::Micro {
                key_block: dcs_crypto::sha256(b"k"),
                sequence: 3,
            },
        ];
        for seal in seals {
            let mut b = block(2);
            b.header.seal = seal;
            let decoded = decode_all::<Block>(&b.encoded()).unwrap();
            assert_eq!(decoded, b);
            assert_eq!(decoded.hash(), b.hash());
        }
    }

    #[test]
    fn offered_fees_sum_over_account_txs() {
        let b = block(3);
        assert_eq!(b.offered_fees(), 3 * 21_000);
    }
}
