//! Core ledger data types shared across the platform: transactions in both
//! the UTXO model (blockchain generation 1.0, §3.1 of the paper) and the
//! account model with contract payloads (generation 2.0, §3.2), block headers
//! and bodies with Merkle transaction roots (Fig. 2), execution receipts with
//! event logs, the gas schedule (§2.5), and chain configuration.
//!
//! # Examples
//!
//! ```
//! use dcs_primitives::{AccountTx, Block, BlockHeader, Seal, Transaction, TxPayload};
//! use dcs_crypto::{Address, Hash256};
//!
//! let tx = Transaction::Account(AccountTx::transfer(
//!     Address::from_index(1),
//!     Address::from_index(2),
//!     50,
//!     0,
//! ));
//! let block = Block::new(
//!     BlockHeader::new(Hash256::ZERO, 1, 0, Address::from_index(9), Seal::None),
//!     vec![tx],
//! );
//! assert!(block.verify_tx_root());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod config;
pub mod gas;
pub mod receipt;
pub mod transaction;

pub use block::{Block, BlockHeader, Seal};
pub use config::{ChainConfig, ConsensusKind, ForkChoice};
pub use gas::GasSchedule;
pub use receipt::{LogEntry, Receipt, TxStatus};
pub use transaction::{AccountTx, SealedTx, Transaction, TxAuth, TxIn, TxOut, TxPayload, UtxoTx};

/// Monetary amounts and gas quantities. The unit is the smallest indivisible
/// token ("wei"-like); 64 bits comfortably covers simulated economies.
pub type Amount = u64;
