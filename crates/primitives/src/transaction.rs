//! Transactions in both ledger models the paper's generations require:
//! UTXO exchanges of digital assets (1.0) and account-based transactions
//! carrying contract payloads (2.0/3.0).
//!
//! Every transaction has two digests:
//!
//! * [`Transaction::signing_hash`] — over the transaction *without* witness
//!   data (signatures, public keys); this is what gets signed.
//! * [`Transaction::id`] — over the complete encoding; this is the identifier
//!   committed in the block's Merkle root.

use crate::Amount;
use dcs_crypto::codec::{Decode, DecodeError, Encode, Reader};
use dcs_crypto::{sha256, Address, Hash256, MultiHasher, PublicKey, Signature};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A reference to a previous transaction output, plus the witness
/// authorizing its spend.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxIn {
    /// Id of the transaction that created the output being spent.
    pub prev_tx: Hash256,
    /// Index of the output within that transaction.
    pub index: u32,
    /// Witness proving authority to spend; `None` in unsigned simulations.
    pub auth: Option<TxAuth>,
}

/// A newly created output: `value` tokens spendable by `recipient`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxOut {
    /// Amount carried by this output.
    pub value: Amount,
    /// Address allowed to spend this output.
    pub recipient: Address,
}

/// Witness data: the signer's public key and a signature over the
/// transaction's [`Transaction::signing_hash`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxAuth {
    /// Public key whose address must match the spending authority.
    pub pubkey: PublicKey,
    /// Signature over the signing hash.
    pub signature: Signature,
}

/// A UTXO-model transaction (generation 1.0): consumes inputs, creates
/// outputs; the difference is the fee collected by the miner.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtxoTx {
    /// Outputs being spent.
    pub inputs: Vec<TxIn>,
    /// Outputs being created.
    pub outputs: Vec<TxOut>,
}

impl UtxoTx {
    /// Total value created by the outputs.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }
}

/// The action an account-model transaction performs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxPayload {
    /// Plain value transfer to `AccountTx::to`.
    Transfer,
    /// Deploy contract bytecode; the contract address is derived from the
    /// sender and nonce.
    Deploy(Vec<u8>),
    /// Call the contract at `AccountTx::to` with this input data.
    Call(Vec<u8>),
    /// Anchor opaque data on-chain (the "notary" pattern of Fig. 3).
    Data(Vec<u8>),
}

/// An account-model transaction (generations 2.0/3.0): sender, recipient,
/// value, nonce for replay protection, and a gas budget for execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountTx {
    /// Sender account.
    pub from: Address,
    /// Recipient account or contract; `None` when deploying.
    pub to: Option<Address>,
    /// Value transferred alongside the payload.
    pub value: Amount,
    /// Sender's transaction counter; must equal the account nonce.
    pub nonce: u64,
    /// Maximum gas the sender will pay for.
    pub gas_limit: Amount,
    /// Price per unit of gas, paid to the block proposer (the paper's §2.5
    /// "cost ... is paid to the miner in a form known as gas").
    pub gas_price: Amount,
    /// What the transaction does.
    pub payload: TxPayload,
    /// Witness; `None` in unsigned simulations.
    pub auth: Option<TxAuth>,
}

impl AccountTx {
    /// Convenience constructor for a plain transfer with default gas terms.
    pub fn transfer(from: Address, to: Address, value: Amount, nonce: u64) -> Self {
        AccountTx {
            from,
            to: Some(to),
            value,
            nonce,
            gas_limit: 21_000,
            gas_price: 1,
            payload: TxPayload::Transfer,
            auth: None,
        }
    }

    /// Convenience constructor for a contract deployment.
    pub fn deploy(from: Address, code: Vec<u8>, nonce: u64, gas_limit: Amount) -> Self {
        AccountTx {
            from,
            to: None,
            value: 0,
            nonce,
            gas_limit,
            gas_price: 1,
            payload: TxPayload::Deploy(code),
            auth: None,
        }
    }

    /// Convenience constructor for a contract call.
    pub fn call(
        from: Address,
        contract: Address,
        input: Vec<u8>,
        value: Amount,
        nonce: u64,
        gas_limit: Amount,
    ) -> Self {
        AccountTx {
            from,
            to: Some(contract),
            value,
            nonce,
            gas_limit,
            gas_price: 1,
            payload: TxPayload::Call(input),
            auth: None,
        }
    }

    /// The address a `Deploy` payload creates: `H(sender || nonce)[..20]`.
    pub fn contract_address(&self) -> Address {
        let mut bytes = self.from.as_bytes().to_vec();
        bytes.extend_from_slice(&self.nonce.to_le_bytes());
        Address::from_hash(&sha256(&bytes))
    }
}

/// Any transaction the ledger can carry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transaction {
    /// Block reward + fees minted to the proposer (§2.4's incentive system).
    Coinbase {
        /// Receiving the reward.
        to: Address,
        /// Reward plus collected fees.
        value: Amount,
        /// Block height, making each coinbase unique.
        height: u64,
    },
    /// A generation-1.0 UTXO transaction.
    Utxo(UtxoTx),
    /// A generation-2.0/3.0 account transaction.
    Account(AccountTx),
}

impl Transaction {
    /// The unique identifier committed in the block Merkle root.
    pub fn id(&self) -> Hash256 {
        sha256(&self.encoded())
    }

    /// Digest that witnesses must sign: the transaction with all witness
    /// fields stripped, so the signature does not sign itself.
    pub fn signing_hash(&self) -> Hash256 {
        let stripped = match self {
            Transaction::Coinbase { .. } => self.clone(),
            Transaction::Utxo(tx) => {
                let mut tx = tx.clone();
                for input in &mut tx.inputs {
                    input.auth = None;
                }
                Transaction::Utxo(tx)
            }
            Transaction::Account(tx) => {
                let mut tx = tx.clone();
                tx.auth = None;
                Transaction::Account(tx)
            }
        };
        sha256(&stripped.encoded())
    }

    /// Encoded size in bytes; drives bandwidth accounting in the network
    /// simulator.
    pub fn encoded_len(&self) -> usize {
        self.encoded().len()
    }

    /// Fee offered by this transaction (max gas cost for account txs; for
    /// UTXO txs the fee is input value minus output value, known only with
    /// state access, so this returns the declared gas budget instead).
    pub fn offered_fee(&self) -> Amount {
        match self {
            Transaction::Coinbase { .. } => 0,
            Transaction::Utxo(_) => 0,
            Transaction::Account(tx) => tx.gas_limit.saturating_mul(tx.gas_price),
        }
    }

    /// Ids of many transactions at once, computed with the multi-lane hasher.
    ///
    /// Bit-identical to mapping [`Transaction::id`] but hashes the encodings
    /// 8 digests at a time, which is how every batch consumer (Merkle roots,
    /// block verification, inclusion tracking) should compute ids.
    pub fn batch_ids(txs: &[Transaction]) -> Vec<Hash256> {
        let encoded: Vec<Vec<u8>> = txs
            .iter()
            .map(|tx| {
                let mut buf = Vec::new();
                tx.encode(&mut buf);
                buf
            })
            .collect();
        let refs: Vec<&[u8]> = encoded.iter().map(Vec::as_slice).collect();
        MultiHasher::wide().hash_many(&refs)
    }
}

/// A transaction bundled with its content id, computed exactly once.
///
/// [`Transaction::id`] re-encodes and re-hashes on every call; on the gossip
/// path that cost used to be paid per *delivery* (every peer, every duplicate
/// hop). A `SealedTx` carries the id alongside the shared transaction body,
/// the in-memory analogue of computing the id at decode time: the first
/// owner pays for it, every later hop and table lookup reuses it.
#[derive(Debug, Clone)]
pub struct SealedTx {
    tx: Arc<Transaction>,
    id: Hash256,
}

impl SealedTx {
    /// Seals `tx`, computing its id.
    pub fn new(tx: Arc<Transaction>) -> Self {
        let id = tx.id();
        SealedTx { tx, id }
    }

    /// Seals `tx` with an id the caller already computed (e.g. from a batch
    /// [`Transaction::batch_ids`] pass). Debug builds verify the pairing.
    pub fn from_parts(tx: Arc<Transaction>, id: Hash256) -> Self {
        debug_assert_eq!(id, tx.id(), "sealed id must match the body");
        SealedTx { tx, id }
    }

    /// The cached content id ([`Transaction::id`]).
    pub fn id(&self) -> Hash256 {
        self.id
    }

    /// The shared transaction body.
    pub fn tx(&self) -> &Arc<Transaction> {
        &self.tx
    }

    /// Unwraps into the shared transaction body.
    pub fn into_tx(self) -> Arc<Transaction> {
        self.tx
    }
}

impl std::ops::Deref for SealedTx {
    type Target = Transaction;

    fn deref(&self) -> &Transaction {
        &self.tx
    }
}

impl Encode for TxAuth {
    fn encode(&self, out: &mut Vec<u8>) {
        self.pubkey.encode(out);
        self.signature.encode(out);
    }
}

impl Decode for TxAuth {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxAuth {
            pubkey: PublicKey::decode(r)?,
            signature: Signature::decode(r)?,
        })
    }
}

impl Encode for TxIn {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prev_tx.encode(out);
        self.index.encode(out);
        self.auth.encode(out);
    }
}

impl Decode for TxIn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxIn {
            prev_tx: Hash256::decode(r)?,
            index: u32::decode(r)?,
            auth: Option::decode(r)?,
        })
    }
}

impl Encode for TxOut {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.recipient.encode(out);
    }
}

impl Decode for TxOut {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxOut {
            value: Amount::decode(r)?,
            recipient: Address::decode(r)?,
        })
    }
}

impl Encode for UtxoTx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.inputs.encode(out);
        self.outputs.encode(out);
    }
}

impl Decode for UtxoTx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(UtxoTx {
            inputs: Vec::decode(r)?,
            outputs: Vec::decode(r)?,
        })
    }
}

impl Encode for TxPayload {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TxPayload::Transfer => out.push(0),
            TxPayload::Deploy(code) => {
                out.push(1);
                code.encode(out);
            }
            TxPayload::Call(input) => {
                out.push(2);
                input.encode(out);
            }
            TxPayload::Data(data) => {
                out.push(3);
                data.encode(out);
            }
        }
    }
}

impl Decode for TxPayload {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(TxPayload::Transfer),
            1 => Ok(TxPayload::Deploy(Vec::decode(r)?)),
            2 => Ok(TxPayload::Call(Vec::decode(r)?)),
            3 => Ok(TxPayload::Data(Vec::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for AccountTx {
    fn encode(&self, out: &mut Vec<u8>) {
        self.from.encode(out);
        self.to.encode(out);
        self.value.encode(out);
        self.nonce.encode(out);
        self.gas_limit.encode(out);
        self.gas_price.encode(out);
        self.payload.encode(out);
        self.auth.encode(out);
    }
}

impl Decode for AccountTx {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(AccountTx {
            from: Address::decode(r)?,
            to: Option::decode(r)?,
            value: Amount::decode(r)?,
            nonce: u64::decode(r)?,
            gas_limit: Amount::decode(r)?,
            gas_price: Amount::decode(r)?,
            payload: TxPayload::decode(r)?,
            auth: Option::decode(r)?,
        })
    }
}

impl Encode for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Transaction::Coinbase { to, value, height } => {
                out.push(0);
                to.encode(out);
                value.encode(out);
                height.encode(out);
            }
            Transaction::Utxo(tx) => {
                out.push(1);
                tx.encode(out);
            }
            Transaction::Account(tx) => {
                out.push(2);
                tx.encode(out);
            }
        }
    }
}

impl Decode for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(Transaction::Coinbase {
                to: Address::decode(r)?,
                value: Amount::decode(r)?,
                height: u64::decode(r)?,
            }),
            1 => Ok(Transaction::Utxo(UtxoTx::decode(r)?)),
            2 => Ok(Transaction::Account(AccountTx::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::codec::decode_all;
    use dcs_crypto::KeyPair;

    fn sample_account_tx() -> Transaction {
        Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            100,
            7,
        ))
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let a = sample_account_tx();
        let b = Transaction::Account(AccountTx::transfer(
            Address::from_index(1),
            Address::from_index(2),
            101,
            7,
        ));
        assert_eq!(a.id(), a.id());
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn coinbase_unique_per_height() {
        let c1 = Transaction::Coinbase {
            to: Address::from_index(1),
            value: 50,
            height: 1,
        };
        let c2 = Transaction::Coinbase {
            to: Address::from_index(1),
            value: 50,
            height: 2,
        };
        assert_ne!(c1.id(), c2.id());
    }

    #[test]
    fn codec_round_trips_all_variants() {
        let txs = vec![
            Transaction::Coinbase {
                to: Address::from_index(3),
                value: 50,
                height: 9,
            },
            Transaction::Utxo(UtxoTx {
                inputs: vec![TxIn {
                    prev_tx: sha256(b"prev"),
                    index: 1,
                    auth: None,
                }],
                outputs: vec![TxOut {
                    value: 10,
                    recipient: Address::from_index(4),
                }],
            }),
            sample_account_tx(),
            Transaction::Account(AccountTx::deploy(
                Address::from_index(5),
                vec![1, 2, 3],
                0,
                90_000,
            )),
            Transaction::Account(AccountTx::call(
                Address::from_index(5),
                Address::from_index(6),
                vec![9, 9],
                1,
                1,
                50_000,
            )),
            Transaction::Account(AccountTx {
                payload: TxPayload::Data(b"notarized document hash".to_vec()),
                ..AccountTx::transfer(Address::from_index(7), Address::from_index(8), 0, 0)
            }),
        ];
        for tx in txs {
            let decoded = decode_all::<Transaction>(&tx.encoded()).unwrap();
            assert_eq!(decoded, tx);
        }
    }

    #[test]
    fn signing_hash_excludes_witness() {
        let mut kp = KeyPair::generate([3u8; 32], 2);
        let mut tx = AccountTx::transfer(kp.address(), Address::from_index(2), 5, 0);
        let unsigned = Transaction::Account(tx.clone());
        let h = unsigned.signing_hash();
        let sig = kp.sign(&h).unwrap();
        tx.auth = Some(TxAuth {
            pubkey: kp.public_key(),
            signature: sig,
        });
        let signed = Transaction::Account(tx);
        // Signing hash is identical before and after attaching the witness...
        assert_eq!(signed.signing_hash(), h);
        // ...but the id (Merkle leaf) covers the witness.
        assert_ne!(signed.id(), unsigned.id());
        // And the witness verifies.
        if let Transaction::Account(tx) = &signed {
            let auth = tx.auth.as_ref().unwrap();
            assert!(auth.pubkey.verify(&h, &auth.signature));
            assert_eq!(auth.pubkey.address(), tx.from);
        }
    }

    #[test]
    fn contract_address_depends_on_sender_and_nonce() {
        let d1 = AccountTx::deploy(Address::from_index(1), vec![], 0, 1000);
        let d2 = AccountTx::deploy(Address::from_index(1), vec![], 1, 1000);
        let d3 = AccountTx::deploy(Address::from_index(2), vec![], 0, 1000);
        assert_ne!(d1.contract_address(), d2.contract_address());
        assert_ne!(d1.contract_address(), d3.contract_address());
        // Code does not change the address (CREATE semantics).
        let d4 = AccountTx::deploy(Address::from_index(1), vec![1], 0, 1000);
        assert_eq!(d1.contract_address(), d4.contract_address());
    }

    #[test]
    fn offered_fee() {
        let tx = sample_account_tx();
        assert_eq!(tx.offered_fee(), 21_000);
        let cb = Transaction::Coinbase {
            to: Address::ZERO,
            value: 1,
            height: 0,
        };
        assert_eq!(cb.offered_fee(), 0);
    }

    #[test]
    fn utxo_output_value_sums() {
        let tx = UtxoTx {
            inputs: vec![],
            outputs: vec![
                TxOut {
                    value: 3,
                    recipient: Address::from_index(1),
                },
                TxOut {
                    value: 4,
                    recipient: Address::from_index(2),
                },
            ],
        };
        assert_eq!(tx.output_value(), 7);
    }
}
