//! Execution receipts: the per-transaction outcome record (status, gas
//! consumed, fee paid to the proposer, and emitted event logs). Receipts are
//! what the middleware layer's event-notification service (§5.2) subscribes
//! to.

use crate::Amount;
use dcs_crypto::codec::{Decode, DecodeError, Encode, Reader};
use dcs_crypto::{Address, Hash256};
use serde::{Deserialize, Serialize};

/// Outcome of executing one transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxStatus {
    /// Applied successfully.
    Success,
    /// Rejected or reverted; state changes were rolled back but the fee was
    /// still charged (as in Ethereum).
    Failed(String),
}

impl TxStatus {
    /// True if the transaction succeeded.
    pub fn is_success(&self) -> bool {
        matches!(self, TxStatus::Success)
    }
}

/// An event emitted by a contract during execution (the `LOG` opcode).
/// Topics support the middleware pub/sub matcher; `data` is opaque payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Emitting contract.
    pub contract: Address,
    /// Indexed topics for subscription filtering.
    pub topics: Vec<Hash256>,
    /// Unindexed payload bytes.
    pub data: Vec<u8>,
}

/// The receipt for one executed transaction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt {
    /// Id of the transaction this receipt describes.
    pub tx_id: Hash256,
    /// Success or failure (with reason).
    pub status: TxStatus,
    /// Gas units consumed.
    pub gas_used: Amount,
    /// Fee transferred to the block proposer (`gas_used * gas_price`).
    pub fee_paid: Amount,
    /// Events emitted during execution.
    pub logs: Vec<LogEntry>,
}

impl Receipt {
    /// A success receipt with no gas accounting (used by plain transfers in
    /// tests and by the UTXO path, which has no gas).
    pub fn success(tx_id: Hash256) -> Self {
        Receipt {
            tx_id,
            status: TxStatus::Success,
            gas_used: 0,
            fee_paid: 0,
            logs: Vec::new(),
        }
    }

    /// A failure receipt carrying the rejection reason.
    pub fn failed(tx_id: Hash256, reason: impl Into<String>) -> Self {
        Receipt {
            tx_id,
            status: TxStatus::Failed(reason.into()),
            gas_used: 0,
            fee_paid: 0,
            logs: Vec::new(),
        }
    }
}

impl Encode for TxStatus {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TxStatus::Success => out.push(0),
            TxStatus::Failed(reason) => {
                out.push(1);
                reason.encode(out);
            }
        }
    }
}

impl Decode for TxStatus {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(TxStatus::Success),
            1 => Ok(TxStatus::Failed(String::decode(r)?)),
            t => Err(DecodeError::BadTag(t)),
        }
    }
}

impl Encode for LogEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.contract.encode(out);
        self.topics.encode(out);
        self.data.encode(out);
    }
}

impl Decode for LogEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(LogEntry {
            contract: Address::decode(r)?,
            topics: Vec::decode(r)?,
            data: Vec::decode(r)?,
        })
    }
}

impl Encode for Receipt {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tx_id.encode(out);
        self.status.encode(out);
        self.gas_used.encode(out);
        self.fee_paid.encode(out);
        self.logs.encode(out);
    }
}

impl Decode for Receipt {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Receipt {
            tx_id: Hash256::decode(r)?,
            status: TxStatus::decode(r)?,
            gas_used: Amount::decode(r)?,
            fee_paid: Amount::decode(r)?,
            logs: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_crypto::{codec::decode_all, sha256};

    #[test]
    fn constructors() {
        let id = sha256(b"tx");
        assert!(Receipt::success(id).status.is_success());
        let f = Receipt::failed(id, "insufficient balance");
        assert!(!f.status.is_success());
        assert_eq!(f.status, TxStatus::Failed("insufficient balance".into()));
    }

    #[test]
    fn codec_round_trip() {
        let r = Receipt {
            tx_id: sha256(b"tx"),
            status: TxStatus::Failed("out of gas".into()),
            gas_used: 12_345,
            fee_paid: 12_345,
            logs: vec![LogEntry {
                contract: Address::from_index(1),
                topics: vec![sha256(b"Transfer")],
                data: vec![0, 1, 2],
            }],
        };
        assert_eq!(decode_all::<Receipt>(&r.encoded()).unwrap(), r);
    }
}
