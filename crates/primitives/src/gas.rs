//! The gas schedule (§2.5): per-operation costs charged during contract
//! execution and paid to the block proposer. Constant (read-only) calls are
//! free when executed off-chain — mirroring the paper's Solidity example
//! where `say()` "does not cost gas to execute, since it only reads existing
//! information".

use crate::Amount;
use serde::{Deserialize, Serialize};

/// Per-operation gas costs. The defaults loosely track Ethereum's relative
/// magnitudes: storage writes are ~100× arithmetic, storage reads ~10×.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Flat cost charged to every transaction (intrinsic gas).
    pub tx_base: Amount,
    /// Cost per byte of transaction payload data.
    pub tx_data_byte: Amount,
    /// Stack/arithmetic/control-flow opcodes.
    pub op_base: Amount,
    /// Reading a contract storage slot.
    pub storage_read: Amount,
    /// Writing a contract storage slot.
    pub storage_write: Amount,
    /// Emitting a log entry, plus per-byte data cost.
    pub log_base: Amount,
    /// Per byte of log data.
    pub log_byte: Amount,
    /// Hashing (per invocation).
    pub hash: Amount,
    /// Deploying a contract, per byte of code stored on-chain.
    pub deploy_byte: Amount,
    /// Transferring value out of a contract.
    pub transfer: Amount,
}

impl Default for GasSchedule {
    fn default() -> Self {
        GasSchedule {
            tx_base: 21_000,
            tx_data_byte: 16,
            op_base: 3,
            storage_read: 200,
            storage_write: 5_000,
            log_base: 375,
            log_byte: 8,
            hash: 30,
            deploy_byte: 200,
            transfer: 9_000,
        }
    }
}

impl GasSchedule {
    /// A free schedule for permissioned deployments that meter by policy
    /// rather than payment (Hyperledger-style, §2.4).
    pub fn free() -> Self {
        GasSchedule {
            tx_base: 0,
            tx_data_byte: 0,
            op_base: 0,
            storage_read: 0,
            storage_write: 0,
            log_base: 0,
            log_byte: 0,
            hash: 0,
            deploy_byte: 0,
            transfer: 0,
        }
    }

    /// Intrinsic cost of a transaction with `data_len` bytes of payload.
    pub fn intrinsic(&self, data_len: usize) -> Amount {
        self.tx_base + self.tx_data_byte * data_len as Amount
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_relative_magnitudes() {
        let g = GasSchedule::default();
        assert!(g.storage_write > 10 * g.storage_read);
        assert!(g.storage_read > 10 * g.op_base);
    }

    #[test]
    fn intrinsic_scales_with_data() {
        let g = GasSchedule::default();
        assert_eq!(g.intrinsic(0), 21_000);
        assert_eq!(g.intrinsic(100), 21_000 + 1600);
    }

    #[test]
    fn free_schedule_is_zero() {
        let g = GasSchedule::free();
        assert_eq!(g.intrinsic(1000), 0);
        assert_eq!(g.storage_write, 0);
    }
}
