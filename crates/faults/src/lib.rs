//! Deterministic fault injection (the paper's dependability axis, §2.3/§5.2):
//! a [`FaultSchedule`] scripts node crashes and restarts, link flaps, timed
//! partitions, and message duplication/corruption windows at exact simulated
//! times, and a [`FaultDriver`] replays it against a running
//! [`Runner`].
//!
//! Everything is driven off the simulation clock and the seeded RNG, so a
//! run with the same seed *and* the same schedule is bit-identical — faults
//! are part of the reproducible experiment, not an external perturbation.
//!
//! Crash semantics are fail-stop with durable storage: a crashed node loses
//! its volatile state (mempool, gossip dedup, consensus votes) but keeps its
//! `BlockStore`; on restart the protocol's
//! [`Recoverable::on_restart`] rebuilds the chain from the store and runs the
//! locator-based catch-up sync until it reaches the canonical tip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dcs_consensus::Recoverable;
use dcs_net::{NodeId, Runner};
use dcs_sim::SimTime;

/// One scripted fault (or repair) action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Fail-stop the node: volatile state is lost, the block store survives.
    Crash(NodeId),
    /// Bring a crashed node back up; it rebuilds from its store and syncs.
    Restart(NodeId),
    /// Split the network into groups (one group label per node).
    Partition(Vec<u32>),
    /// Remove any partition.
    Heal,
    /// Sever the bidirectional link between two nodes.
    LinkDown(NodeId, NodeId),
    /// Repair a severed link.
    LinkUp(NodeId, NodeId),
    /// Set the per-message duplication probability (0.0 disables).
    SetDuplication(f64),
    /// Set the per-message corruption probability (0.0 disables).
    SetCorruption(f64),
}

/// A fault action pinned to a simulated instant.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultEvent {
    /// When the action fires.
    pub at: SimTime,
    /// What happens.
    pub action: FaultAction,
}

/// A time-ordered script of fault events.
///
/// Built with the `*_at` methods; events inserted at the same instant fire
/// in insertion order (the sort is stable), so `crash_at(t, a)` followed by
/// `restart_at(t, b)` behaves predictably.
#[derive(Debug, Clone, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (injects nothing).
    pub fn new() -> Self {
        FaultSchedule::default()
    }

    /// Adds an arbitrary event.
    pub fn push(mut self, at: SimTime, action: FaultAction) -> Self {
        self.events.push(FaultEvent { at, action });
        self
    }

    /// Crashes `node` at `at`.
    pub fn crash_at(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, FaultAction::Crash(node))
    }

    /// Restarts `node` at `at`.
    pub fn restart_at(self, at: SimTime, node: NodeId) -> Self {
        self.push(at, FaultAction::Restart(node))
    }

    /// Partitions the network into `groups` at `at`.
    pub fn partition_at(self, at: SimTime, groups: Vec<u32>) -> Self {
        self.push(at, FaultAction::Partition(groups))
    }

    /// Heals any partition at `at`.
    pub fn heal_at(self, at: SimTime) -> Self {
        self.push(at, FaultAction::Heal)
    }

    /// Severs the `a`–`b` link at `at`.
    pub fn link_down_at(self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.push(at, FaultAction::LinkDown(a, b))
    }

    /// Repairs the `a`–`b` link at `at`.
    pub fn link_up_at(self, at: SimTime, a: NodeId, b: NodeId) -> Self {
        self.push(at, FaultAction::LinkUp(a, b))
    }

    /// Sets the duplication probability at `at` (use `0.0` to end a window).
    pub fn set_duplication_at(self, at: SimTime, p: f64) -> Self {
        self.push(at, FaultAction::SetDuplication(p))
    }

    /// Sets the corruption probability at `at` (use `0.0` to end a window).
    pub fn set_corruption_at(self, at: SimTime, p: f64) -> Self {
        self.push(at, FaultAction::SetCorruption(p))
    }

    /// The scripted events in firing order.
    pub fn events(&self) -> Vec<FaultEvent> {
        let mut sorted = self.events.clone();
        sorted.sort_by_key(|e| e.at);
        sorted
    }

    /// Number of scripted events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Checks the schedule against an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node id, a partition vector whose length is
    /// not `n`, or a probability outside `[0, 1]` — schedule construction
    /// bugs, caught before the run starts.
    pub fn validate(&self, n: usize) {
        for ev in &self.events {
            match &ev.action {
                FaultAction::Crash(node) | FaultAction::Restart(node) => {
                    assert!(node.0 < n, "fault targets node {} of {n}", node.0);
                }
                FaultAction::Partition(groups) => {
                    assert!(
                        groups.len() == n,
                        "partition has {} labels for {n} nodes",
                        groups.len()
                    );
                }
                FaultAction::Heal => {}
                FaultAction::LinkDown(a, b) | FaultAction::LinkUp(a, b) => {
                    assert!(a.0 < n && b.0 < n, "link fault out of range");
                    assert!(a != b, "link fault needs two distinct nodes");
                }
                FaultAction::SetDuplication(p) | FaultAction::SetCorruption(p) => {
                    assert!((0.0..=1.0).contains(p), "probability {p} out of range");
                }
            }
        }
    }
}

/// Replays a [`FaultSchedule`] against a [`Runner`], interleaving fault
/// actions with normal event processing at exact simulated times.
#[derive(Debug)]
pub struct FaultDriver {
    events: Vec<FaultEvent>,
    next: usize,
}

impl FaultDriver {
    /// Builds a driver; the schedule is frozen (sorted) at this point.
    pub fn new(schedule: FaultSchedule) -> Self {
        FaultDriver {
            events: schedule.events(),
            next: 0,
        }
    }

    /// Fault events applied so far.
    pub fn applied(&self) -> usize {
        self.next
    }

    /// Runs the simulation to `deadline`, applying every scheduled fault at
    /// its exact instant. Returns the number of sim events processed.
    ///
    /// Crash/restart actions flip network liveness first, then invoke the
    /// protocol's [`Recoverable`] hook in a fresh [`Ctx`](dcs_net::Ctx) so
    /// recovery can send messages and arm timers.
    pub fn run_until<P>(&mut self, runner: &mut Runner<P>, deadline: SimTime) -> u64
    where
        P: Recoverable + Send,
        P::Msg: Send,
    {
        let mut processed = 0;
        while self.next < self.events.len() && self.events[self.next].at <= deadline {
            let ev = self.events[self.next].clone();
            self.next += 1;
            processed += runner.run_until(ev.at);
            match ev.action {
                FaultAction::Crash(node) => {
                    runner.net_mut().crash(node);
                    runner.with_ctx(node, |p, ctx| p.on_crash(ctx));
                }
                FaultAction::Restart(node) => {
                    runner.net_mut().restart(node);
                    runner.with_ctx(node, |p, ctx| p.on_restart(ctx));
                }
                FaultAction::Partition(groups) => runner.net_mut().set_partition(groups),
                FaultAction::Heal => runner.net_mut().heal_partition(),
                FaultAction::LinkDown(a, b) => runner.net_mut().set_link_down(a, b),
                FaultAction::LinkUp(a, b) => runner.net_mut().set_link_up(a, b),
                FaultAction::SetDuplication(p) => runner.net_mut().set_duplication(p),
                FaultAction::SetCorruption(p) => runner.net_mut().set_corruption(p),
            }
        }
        processed + runner.run_until(deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_micros(secs * 1_000_000)
    }

    #[test]
    fn schedule_sorts_stably_by_time() {
        let s = FaultSchedule::new()
            .restart_at(t(30), NodeId(1))
            .crash_at(t(10), NodeId(1))
            .heal_at(t(10));
        let evs = s.events();
        assert_eq!(evs[0].action, FaultAction::Crash(NodeId(1)));
        assert_eq!(evs[1].action, FaultAction::Heal, "same-instant keeps order");
        assert_eq!(evs[2].action, FaultAction::Restart(NodeId(1)));
    }

    #[test]
    fn validate_accepts_a_well_formed_schedule() {
        FaultSchedule::new()
            .crash_at(t(1), NodeId(3))
            .partition_at(t(2), vec![0, 0, 1, 1])
            .link_down_at(t(3), NodeId(0), NodeId(1))
            .set_duplication_at(t(4), 0.5)
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "fault targets node 9")]
    fn validate_rejects_out_of_range_node() {
        FaultSchedule::new().crash_at(t(1), NodeId(9)).validate(4);
    }

    #[test]
    #[should_panic(expected = "partition has 2 labels for 4 nodes")]
    fn validate_rejects_short_partition() {
        FaultSchedule::new()
            .partition_at(t(1), vec![0, 1])
            .validate(4);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn validate_rejects_bad_probability() {
        FaultSchedule::new()
            .set_corruption_at(t(1), 1.5)
            .validate(4);
    }
}
