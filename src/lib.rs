//! Umbrella crate for the **dcs-ledger platform** — a Rust reproduction of
//! *Towards Dependable, Scalable, and Pervasive Distributed Ledgers with
//! Blockchains* (Zhang & Jacobsen, ICDCS 2018).
//!
//! Re-exports every layer of the blockchain stack (Fig. 3 of the paper).
//! See the individual crates for full documentation, `examples/` for
//! runnable walkthroughs, and `crates/bench` for the experiment harness.

#![forbid(unsafe_code)]

pub use dcs_chain as chain;
pub use dcs_consensus as consensus;
pub use dcs_contracts as contracts;
pub use dcs_crypto as crypto;
pub use dcs_faults as faults;
pub use dcs_ledger as ledger;
pub use dcs_middleware as middleware;
pub use dcs_net as net;
pub use dcs_primitives as primitives;
pub use dcs_privacy as privacy;
pub use dcs_scale as scale;
pub use dcs_sim as sim;
pub use dcs_state as state;
pub use dcs_trace as trace;
